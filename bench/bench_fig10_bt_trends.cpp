// Figure 10 — Performance trends for NAS BT code regions.
//
// (a) IPC: regions 1, 2, 4, 5 lose 40-65% from class W to A and then
//     stabilise; regions 3 and 6 keep declining and only stabilise at B.
// (b) The IPC loss mirrors the growth of L2 data cache misses.

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 10", "NAS BT per-region trends across classes");
  bench::print_paper(
      "(a) sharp 40-65% IPC loss W->A for four regions, two regions "
      "decline until class B; (b) L2 misses per instruction rise "
      "accordingly");

  sim::Study study = sim::study_nas_bt();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::vector<std::string> labels;
  for (const auto& f : result.frames) labels.push_back(f.label());

  bench::print_section("(a) IPC per region");
  std::vector<tracking::TrendSeries> ipc_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    ipc_series.push_back({"R" + std::to_string(region.id + 1), ipc});
    double wa = ipc[1] / ipc[0] - 1.0;  // W -> A step
    double ab = ipc[2] / ipc[1] - 1.0;  // A -> B step
    double bc = ipc[3] / ipc[2] - 1.0;  // B -> C step
    std::printf("  Region %d: W %.2f, A %.2f, B %.2f, C %.2f  "
                "(W->A %s, A->B %s, B->C %s)\n",
                region.id + 1, ipc[0], ipc[1], ipc[2], ipc[3],
                format_percent(wa).c_str(), format_percent(ab).c_str(),
                format_percent(bc).c_str());
  }
  tracking::TrendChartOptions chart;
  chart.y_label = "IPC";
  std::printf("\n%s\n",
              tracking::trend_chart(ipc_series, labels, chart).c_str());

  bench::print_section("(b) L2 data cache misses per kilo-instruction");
  std::vector<tracking::TrendSeries> l2_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto l2 = tracking::region_metric_mean(result, region.id,
                                           trace::Metric::L2MissesPerKi);
    l2_series.push_back({"R" + std::to_string(region.id + 1), l2});
    std::printf("  Region %d: W %.2f, A %.2f, B %.2f, C %.2f\n",
                region.id + 1, l2[0], l2[1], l2[2], l2[3]);
  }
  tracking::TrendChartOptions l2_chart;
  l2_chart.y_label = "L2 misses / Ki";
  std::printf("\n%s",
              tracking::trend_chart(l2_series, labels, l2_chart).c_str());
  return 0;
}
