// perf_serve — the tracking service vs the batch pipeline it wraps.
//
// perftrackd's pitch is that putting TrackingSession behind a daemon costs
// protocol overhead, not correctness: a client that appends a study's
// traces and reads regions/trends over the wire must get the very bytes a
// batch `perftrack track` run prints, and concurrent readers must not
// serialise behind each other (reads take the study lock shared and serve
// from the cached result).
//
// Leg A (the correctness verdict): drive the hydroc study through
// TrackingService — open, append every trace inline, read regions and
// trends — and compare byte-for-byte against a TrackingPipeline batch run
// with the same configuration. Append wall time is reported next to the
// batch run for context.
//
// Leg B: read throughput on a warm study, one reader vs a pool of 4.
// Hot reads are render-cache hits (one hash lookup, no study lock), so
// 4 pooled connections must deliver >= 4x one connection's throughput —
// verdict_read_scaling_ge4, waived (and reported so) when the host has
// fewer than 4 cores, where the ratio measures the scheduler instead.
// The raw scaling factor is also exported as an advisory gauge.
//
// Leg C: the stream server end to end — a ping flood through serve_stream
// with a bounded queue. Every request must be answered exactly once, in
// order (the verdict); the sustained request rate bounds the protocol +
// queue overhead per call. The metrics plane must have recorded exactly
// one end-to-end latency sample per ping (a deterministic verdict), and
// the observed p50/p99 are exported as advisory gauges.
//
// Leg D: the same flood with ServiceConfig::metrics=false — the recording
// overhead of the live metrics plane, best-of-N both ways. The bar is
// advisory (< 1% is below shared-runner noise) but the gauge pins the
// number the header comment in serve/metrics.hpp promises.
//
// Leg E (the durability verdict): run the study against a journaled
// service (--state-dir semantics, fsync=always), destroy the service
// mid-life, restart a second one on the same state dir, and compare its
// regions/trends byte-for-byte against the uninterrupted Leg A bytes —
// verdict_recovery_identity. The per-append latency of every fsync mode
// is exported as advisory gauges, the journal's cost sheet.
//
// Leg F (the sharding verdict): a 2-shard ShardFront over in-process
// TrackingService workers, fed the same raw request lines as a single
// daemon. Every response — opens, appends, regions, trends, report, id
// echoes included — must be byte-identical to the monolith's. Then both
// journaled workers are destroyed ("crash") and rebuilt on their own
// state dirs behind a fresh front, and the reads must still match —
// verdict_shard_identity covers both halves.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"
#include "sim/studies.hpp"
#include "trace/trace_io.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

serve::Request request(const std::string& method,
                       const std::string& study = "") {
  serve::Request r;
  r.method = method;
  r.study = study;
  return r;
}

serve::Request append_request(const std::string& study,
                              const trace::Trace& trace) {
  serve::Request r = request("append_experiment", study);
  std::ostringstream text;
  trace::write_trace(text, trace);
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue inline_trace;
  inline_trace.type = obs::JsonValue::Type::String;
  inline_trace.string = text.str();
  r.params.object["trace"] = std::move(inline_trace);
  return r;
}

std::string result_field(const serve::Response& response, const char* key) {
  if (!response.ok) {
    std::fprintf(stderr, "request failed: %s\n", response.message.c_str());
    return {};
  }
  return obs::parse_json(response.result_json).at(key).string;
}

}  // namespace

int main() {
  bench::enable_telemetry();
  bench::print_title("perf_serve",
                     "perftrackd service vs the batch pipeline it wraps");
  bench::print_paper(
      "a daemon front-end may add protocol overhead but must serve the "
      "identical bytes, and shared-lock reads must not serialise");

  sim::Study study = sim::study_hydroc();

  // ---- Leg A: daemon reads vs batch pipeline, byte for byte. -----------
  bench::print_section("daemon vs batch (hydroc study, inline appends)");

  tracking::SessionConfig session_config;
  session_config.clustering = study.clustering;

  Clock::time_point start = Clock::now();
  tracking::TrackingPipeline pipeline;
  pipeline.set_config(session_config);
  for (const auto& t : study.traces) pipeline.add_experiment(t);
  tracking::TrackingResult batch = pipeline.run();
  double batch_ms = ms_since(start);
  const std::string batch_regions = tracking::describe_tracking(batch);
  const std::string batch_trends = tracking::trends_csv(batch);

  serve::ServiceConfig service_config;
  service_config.session = session_config;
  serve::TrackingService service(service_config);

  start = Clock::now();
  bool ok = service.handle(request("open_study", "hydroc")).ok;
  for (const auto& t : study.traces)
    ok = ok && service.handle(append_request("hydroc", *t)).ok;
  serve::Request trends_request = request("trends", "hydroc");
  trends_request.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue metric;
  metric.type = obs::JsonValue::Type::String;
  metric.string = "IPC";
  trends_request.params.object["metric"] = std::move(metric);
  const std::string served_regions =
      result_field(service.handle(request("regions", "hydroc")), "text");
  const std::string served_trends =
      result_field(service.handle(trends_request), "csv");
  double served_ms = ms_since(start);

  bool identical = ok && served_regions == batch_regions &&
                   served_trends == batch_trends;
  std::printf("batch pipeline:        %.1f ms\n", batch_ms);
  std::printf("daemon open+append+read: %.1f ms (%zu inline appends)\n",
              served_ms, study.traces.size());
  std::printf("served bytes identical to batch: %s\n\n",
              identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg B: warm-study read throughput, 1 reader vs a pool of 4. -----
  bench::print_section("warm read throughput (render-cache regions reads)");
  const int kReads = 2000;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned pool = std::min(4u, hw);

  // Warm the cache once so both sides measure the hit path, then take
  // the best of several reps (wall-clock ratios are flaky on shared
  // runners; the best rep is the least-preempted one).
  service.handle(request("regions", "hydroc"));
  double single_rps = 0.0, pooled_rps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    start = Clock::now();
    for (int i = 0; i < kReads; ++i)
      service.handle(request("regions", "hydroc"));
    single_rps = std::max(single_rps, 1000.0 * kReads / ms_since(start));

    start = Clock::now();
    std::vector<std::thread> readers;
    for (unsigned t = 0; t < pool; ++t) {
      readers.emplace_back([&] {
        for (int i = 0; i < kReads; ++i)
          service.handle(request("regions", "hydroc"));
      });
    }
    for (std::thread& reader : readers) reader.join();
    pooled_rps =
        std::max(pooled_rps, 1000.0 * kReads * pool / ms_since(start));
  }
  double scaling = pooled_rps / single_rps;
  // The bars only mean something with real parallelism underneath: a
  // host with < 4 cores cannot express 4x, so the verdict is waived (it
  // measures cores, not the cache).
  bool scaling_ok = pool < 2 || scaling >= 1.2;
  bool scaling_ge4 = hw < 4 || scaling >= 4.0;

  std::printf("1 connection:  %9.0f reads/s\n", single_rps);
  std::printf("%u connections: %9.0f reads/s (%.2fx)\n", pool, pooled_rps,
              scaling);
  std::printf("read scaling >= 4x with 4 connections: %s%s\n\n",
              scaling_ge4 ? "yes" : "NO",
              hw < 4 ? " (waived: fewer than 4 cores)" : "");

  // ---- Leg C: stream server ping flood through the bounded queue. ------
  bench::print_section("stream server (ping flood, bounded queue)");
  const int kPings = 2000;
  std::string input;
  for (int i = 0; i < kPings; ++i)
    input += "{\"id\":" + std::to_string(i) + ",\"method\":\"ping\"}\n";
  serve::ServerOptions options;
  options.threads = pool;
  options.queue_capacity = 64;

  // One flood through a fresh service; answers must come back exactly
  // once, in order. Returns wall time.
  auto flood = [&](serve::TrackingService& target, bool& answered) {
    std::istringstream in(input);
    std::ostringstream out;
    Clock::time_point begin = Clock::now();
    int exit_code = serve::serve_stream(target, in, out, options);
    double ms = ms_since(begin);
    answered = exit_code == 0;
    std::istringstream lines(out.str());
    std::string line;
    int next_id = 0;
    while (std::getline(lines, line)) {
      obs::JsonValue v = obs::parse_json(line);
      answered = answered && v.at("ok").boolean &&
                 v.at("id").number == static_cast<double>(next_id);
      ++next_id;
    }
    answered = answered && next_id == kPings;
    return ms;
  };

  serve::TrackingService ping_service;  // metrics on by default
  bool all_answered = false;
  double flood_ms = flood(ping_service, all_answered);

  // The metrics plane saw every ping end to end: the request_ns histogram
  // holds exactly kPings samples, and its quantiles are the request
  // latency this flood actually delivered.
  obs::HistogramSnapshot ping_latency =
      ping_service.metrics()
          .registry()
          .histogram("perftrackd_request_ns", "method=\"ping\"")
          .snapshot();
  bool metrics_complete =
      ping_latency.count == static_cast<std::uint64_t>(kPings);
  std::printf("%d pings over %u threads: %.1f ms (%.0f req/s)\n",
              kPings, pool, flood_ms, 1000.0 * kPings / flood_ms);
  std::printf("request_ns p50/p99/max: %llu / %llu / %llu ns\n",
              static_cast<unsigned long long>(ping_latency.quantile(0.50)),
              static_cast<unsigned long long>(ping_latency.quantile(0.99)),
              static_cast<unsigned long long>(ping_latency.max));
  std::printf("every request answered once, in order: %s\n",
              all_answered ? "yes" : "NO");
  std::printf("metrics recorded every ping: %s (%llu of %d)\n\n",
              metrics_complete ? "yes" : "NO",
              static_cast<unsigned long long>(ping_latency.count), kPings);

  // ---- Leg D: recording overhead — metrics on vs metrics off. ----------
  bench::print_section("metrics recording overhead (ping flood, best of 5)");
  const int kReps = 5;
  double best_on_ms = flood_ms;
  double best_off_ms = 1e300;
  bool overhead_floods_ok = true;
  for (int rep = 0; rep < kReps; ++rep) {
    bool rep_ok = false;
    serve::TrackingService on_service;
    best_on_ms = std::min(best_on_ms, flood(on_service, rep_ok));
    overhead_floods_ok = overhead_floods_ok && rep_ok;

    serve::ServiceConfig off_config;
    off_config.metrics = false;
    serve::TrackingService off_service(off_config);
    best_off_ms = std::min(best_off_ms, flood(off_service, rep_ok));
    overhead_floods_ok = overhead_floods_ok && rep_ok;
  }
  double overhead_pct = 100.0 * (best_on_ms - best_off_ms) / best_off_ms;
  bool overhead_ok = overhead_floods_ok && overhead_pct < 1.0;
  std::printf("metrics on:  %.1f ms best\n", best_on_ms);
  std::printf("metrics off: %.1f ms best\n", best_off_ms);
  std::printf("recording overhead: %+.2f%% (advisory bar < 1%%)\n\n",
              overhead_pct);

  // ---- Leg E: crash-restart identity + fsync-mode append latency. ------
  bench::print_section("journal durability (restart identity, fsync cost)");
  namespace fs = std::filesystem;
  const fs::path state_root =
      fs::temp_directory_path() / "pt_bench_serve_state";
  fs::remove_all(state_root);

  auto durable_config = [&](serve::FsyncMode mode, const char* leg) {
    serve::ServiceConfig config;
    config.session = session_config;
    config.journal.directory = (state_root / leg).string();
    config.journal.fsync = mode;
    return config;
  };

  // Appends split across two service lifetimes; the first one is dropped
  // without any explicit flush (fsync=always keeps every record durable).
  const std::size_t half = study.traces.size() / 2;
  std::string recovered_regions, recovered_trends;
  {
    serve::TrackingService first(
        durable_config(serve::FsyncMode::Always, "identity"));
    bool durable_ok = first.handle(request("open_study", "hydroc")).ok;
    for (std::size_t i = 0; i < half; ++i)
      durable_ok =
          durable_ok &&
          first.handle(append_request("hydroc", *study.traces[i])).ok;
    if (!durable_ok) std::fprintf(stderr, "journaled appends failed\n");
  }  // "crash": the first service dies here with studies in flight
  {
    serve::TrackingService second(
        durable_config(serve::FsyncMode::Always, "identity"));
    bool durable_ok = true;
    for (std::size_t i = half; i < study.traces.size(); ++i)
      durable_ok =
          durable_ok &&
          second.handle(append_request("hydroc", *study.traces[i])).ok;
    if (!durable_ok) std::fprintf(stderr, "post-restart appends failed\n");
    recovered_regions =
        result_field(second.handle(request("regions", "hydroc")), "text");
    serve::Request recovered_trends_request = request("trends", "hydroc");
    recovered_trends_request.params = trends_request.params;
    recovered_trends =
        result_field(second.handle(recovered_trends_request), "csv");
  }
  const bool recovery_identity = recovered_regions == batch_regions &&
                                 recovered_trends == batch_trends;
  std::printf("restarted daemon identical to uninterrupted batch: %s\n",
              recovery_identity ? "yes" : "NO — DURABILITY BROKEN");

  // Advisory append latency per fsync mode (including journal writes).
  double append_us[3] = {0.0, 0.0, 0.0};
  const serve::FsyncMode kModes[3] = {
      serve::FsyncMode::Always, serve::FsyncMode::Batch,
      serve::FsyncMode::Off};
  for (int m = 0; m < 3; ++m) {
    serve::TrackingService timed(
        durable_config(kModes[m], serve::fsync_mode_name(kModes[m]).data()));
    timed.handle(request("open_study", "hydroc"));
    start = Clock::now();
    for (const auto& t : study.traces)
      timed.handle(append_request("hydroc", *t));
    append_us[m] =
        1000.0 * ms_since(start) / static_cast<double>(study.traces.size());
    std::printf("append latency, fsync=%-6s %8.1f us/append\n",
                std::string(serve::fsync_mode_name(kModes[m])).c_str(),
                append_us[m]);
  }
  std::printf("\n");
  fs::remove_all(state_root);

  // ---- Leg F: 2-shard front vs one daemon, byte for byte, over a crash.
  bench::print_section("shard-by-study front (2 shards vs one daemon)");
  const fs::path shard_root =
      fs::temp_directory_path() / "pt_bench_serve_shards";
  fs::remove_all(shard_root);

  auto worker_config = [&](std::size_t shard) {
    serve::ServiceConfig config;
    config.session = session_config;
    config.journal.directory =
        (shard_root / ("shard-" + std::to_string(shard))).string();
    config.journal.fsync = serve::FsyncMode::Always;
    return config;
  };
  std::unique_ptr<serve::TrackingService> workers[2] = {
      std::make_unique<serve::TrackingService>(worker_config(0)),
      std::make_unique<serve::TrackingService>(worker_config(1))};
  auto make_front = [&] {
    std::vector<serve::ShardFront::Backend> backends;
    for (auto& slot : workers)
      backends.push_back([&slot](const std::string& line) {
        return serve::render_response(slot->handle_line(line));
      });
    return std::make_unique<serve::ShardFront>(std::move(backends));
  };
  std::unique_ptr<serve::ShardFront> front = make_front();
  serve::TrackingService monolith(service_config);  // the reference bytes

  bool shard_identity = true;
  auto both = [&](const std::string& line) {
    const std::string sharded = serve::render_response(
        front->dispatch(serve::parse_request(line), line));
    const std::string mono =
        serve::render_response(monolith.handle_line(line));
    if (sharded != mono) {
      shard_identity = false;
      std::fprintf(stderr, "shard bytes diverge for: %s\n", line.c_str());
    }
  };
  auto raw_append = [](const std::string& name, const trace::Trace& t) {
    std::ostringstream text;
    trace::write_trace(text, t);
    obs::JsonWriter json;
    json.begin_object();
    json.key("method").value("append_experiment");
    json.key("study").value(name);
    json.key("params").begin_object();
    json.key("trace").value(text.str());
    json.end_object();
    json.end_object();
    return json.str();
  };
  auto read_lines = [](const std::string& name) {
    return std::vector<std::string>{
        R"({"id":1,"method":"regions","study":")" + name + "\"}",
        R"({"id":2,"method":"trends","study":")" + name +
            R"(","params":{"metric":"IPC"}})",
        R"({"id":"r-3","method":"report","study":")" + name + "\"}",
        R"({"id":4,"method":"coverage","study":")" + name + "\"}",
    };
  };

  // Two studies so the FNV routing has more than one possible home; the
  // second takes a short prefix of the traces to bound the leg's cost.
  const std::vector<std::string> shard_studies = {"hydroc",
                                                  "hydroc-replay"};
  start = Clock::now();
  for (const std::string& name : shard_studies) {
    both(R"({"method":"open_study","study":")" + name + "\"}");
    const std::size_t count =
        name == "hydroc" ? study.traces.size()
                         : std::min<std::size_t>(3, study.traces.size());
    for (std::size_t i = 0; i < count; ++i)
      both(raw_append(name, *study.traces[i]));
    for (const std::string& line : read_lines(name)) both(line);
  }
  both(R"({"id":9,"method":"regions","study":"never-opened"})");
  double sharded_ms = ms_since(start);

  // "Crash" both workers and rebuild them on their own state dirs behind
  // a fresh front: the journals must hand back the same bytes.
  front.reset();
  for (auto& slot : workers) slot.reset();
  for (std::size_t shard = 0; shard < 2; ++shard)
    workers[shard] =
        std::make_unique<serve::TrackingService>(worker_config(shard));
  front = make_front();
  for (const std::string& name : shard_studies)
    for (const std::string& line : read_lines(name)) both(line);

  std::printf("2-shard front, %zu studies driven twice: %.1f ms first pass\n",
              shard_studies.size(), sharded_ms);
  std::printf("sharded responses byte-identical to one daemon "
              "(incl. crash-restart): %s\n\n",
              shard_identity ? "yes" : "NO — SHARD IDENTITY BROKEN");
  fs::remove_all(shard_root);

  PT_GAUGE("verdict_identical", identical ? 1.0 : 0.0);
  PT_GAUGE("verdict_recovery_identity", recovery_identity ? 1.0 : 0.0);
  PT_GAUGE("advisory_append_fsync_always_us", append_us[0]);
  PT_GAUGE("advisory_append_fsync_batch_us", append_us[1]);
  PT_GAUGE("advisory_append_fsync_off_us", append_us[2]);
  PT_GAUGE("verdict_all_answered", all_answered ? 1.0 : 0.0);
  PT_GAUGE("verdict_metrics_complete", metrics_complete ? 1.0 : 0.0);
  PT_GAUGE("verdict_shard_identity", shard_identity ? 1.0 : 0.0);
  PT_GAUGE("verdict_read_scaling_ge4", scaling_ge4 ? 1.0 : 0.0);
  PT_GAUGE("advisory_read_scaling_ge1_2", scaling_ok ? 1.0 : 0.0);
  PT_GAUGE("advisory_metrics_overhead_lt_1pct", overhead_ok ? 1.0 : 0.0);
  PT_GAUGE("advisory_ping_p50_ns",
           static_cast<double>(ping_latency.quantile(0.50)));
  PT_GAUGE("advisory_ping_p99_ns",
           static_cast<double>(ping_latency.quantile(0.99)));
  PT_GAUGE("metrics_overhead_pct", overhead_pct);
  PT_GAUGE("read_scaling", scaling);
  PT_GAUGE("read_rps_single", single_rps);
  PT_GAUGE("read_rps_pooled", pooled_rps);
  PT_GAUGE("ping_rps", 1000.0 * kPings / flood_ms);
  bench::write_telemetry("BENCH_serve.json", "perf_serve");

  bool pass = identical && all_answered && metrics_complete &&
              recovery_identity && shard_identity && scaling_ge4;
  std::printf("\nperf_serve: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
