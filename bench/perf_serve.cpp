// perf_serve — the tracking service vs the batch pipeline it wraps.
//
// perftrackd's pitch is that putting TrackingSession behind a daemon costs
// protocol overhead, not correctness: a client that appends a study's
// traces and reads regions/trends over the wire must get the very bytes a
// batch `perftrack track` run prints, and concurrent readers must not
// serialise behind each other (reads take the study lock shared and serve
// from the cached result).
//
// Leg A (the correctness verdict): drive the hydroc study through
// TrackingService — open, append every trace inline, read regions and
// trends — and compare byte-for-byte against a TrackingPipeline batch run
// with the same configuration. Append wall time is reported next to the
// batch run for context.
//
// Leg B: read throughput on a warm study, one reader vs a small pool.
// Shared-lock reads should scale; the scaling factor is exported as an
// advisory gauge because wall-clock ratios are flaky on shared runners.
//
// Leg C: the stream server end to end — a ping flood through serve_stream
// with a bounded queue. Every request must be answered exactly once, in
// order (the verdict); the sustained request rate bounds the protocol +
// queue overhead per call.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/studies.hpp"
#include "trace/trace_io.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

serve::Request request(const std::string& method,
                       const std::string& study = "") {
  serve::Request r;
  r.method = method;
  r.study = study;
  return r;
}

serve::Request append_request(const std::string& study,
                              const trace::Trace& trace) {
  serve::Request r = request("append_experiment", study);
  std::ostringstream text;
  trace::write_trace(text, trace);
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue inline_trace;
  inline_trace.type = obs::JsonValue::Type::String;
  inline_trace.string = text.str();
  r.params.object["trace"] = std::move(inline_trace);
  return r;
}

std::string result_field(const serve::Response& response, const char* key) {
  if (!response.ok) {
    std::fprintf(stderr, "request failed: %s\n", response.message.c_str());
    return {};
  }
  return obs::parse_json(response.result_json).at(key).string;
}

}  // namespace

int main() {
  bench::enable_telemetry();
  bench::print_title("perf_serve",
                     "perftrackd service vs the batch pipeline it wraps");
  bench::print_paper(
      "a daemon front-end may add protocol overhead but must serve the "
      "identical bytes, and shared-lock reads must not serialise");

  sim::Study study = sim::study_hydroc();

  // ---- Leg A: daemon reads vs batch pipeline, byte for byte. -----------
  bench::print_section("daemon vs batch (hydroc study, inline appends)");

  tracking::SessionConfig session_config;
  session_config.clustering = study.clustering;

  Clock::time_point start = Clock::now();
  tracking::TrackingPipeline pipeline;
  pipeline.set_config(session_config);
  for (const auto& t : study.traces) pipeline.add_experiment(t);
  tracking::TrackingResult batch = pipeline.run();
  double batch_ms = ms_since(start);
  const std::string batch_regions = tracking::describe_tracking(batch);
  const std::string batch_trends = tracking::trends_csv(batch);

  serve::ServiceConfig service_config;
  service_config.session = session_config;
  serve::TrackingService service(service_config);

  start = Clock::now();
  bool ok = service.handle(request("open_study", "hydroc")).ok;
  for (const auto& t : study.traces)
    ok = ok && service.handle(append_request("hydroc", *t)).ok;
  serve::Request trends_request = request("trends", "hydroc");
  trends_request.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue metric;
  metric.type = obs::JsonValue::Type::String;
  metric.string = "IPC";
  trends_request.params.object["metric"] = std::move(metric);
  const std::string served_regions =
      result_field(service.handle(request("regions", "hydroc")), "text");
  const std::string served_trends =
      result_field(service.handle(trends_request), "csv");
  double served_ms = ms_since(start);

  bool identical = ok && served_regions == batch_regions &&
                   served_trends == batch_trends;
  std::printf("batch pipeline:        %.1f ms\n", batch_ms);
  std::printf("daemon open+append+read: %.1f ms (%zu inline appends)\n",
              served_ms, study.traces.size());
  std::printf("served bytes identical to batch: %s\n\n",
              identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg B: warm-study read throughput, 1 reader vs a pool. ----------
  bench::print_section("warm read throughput (shared-lock regions reads)");
  const int kReads = 200;
  start = Clock::now();
  for (int i = 0; i < kReads; ++i)
    service.handle(request("regions", "hydroc"));
  double single_ms = ms_since(start);
  double single_rps = 1000.0 * kReads / single_ms;

  const unsigned pool =
      std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  start = Clock::now();
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < pool; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReads; ++i)
        service.handle(request("regions", "hydroc"));
    });
  }
  for (std::thread& reader : readers) reader.join();
  double pooled_ms = ms_since(start);
  double pooled_rps = 1000.0 * kReads * pool / pooled_ms;
  double scaling = pooled_rps / single_rps;
  // The bar only means something with real parallelism underneath.
  bool scaling_ok = pool < 2 || scaling >= 1.2;

  std::printf("1 reader:  %7.0f reads/s\n", single_rps);
  std::printf("%u readers: %7.0f reads/s (%.2fx, advisory bar >= 1.2x%s)\n\n",
              pool, pooled_rps, scaling,
              pool < 2 ? ", waived on a single core" : "");

  // ---- Leg C: stream server ping flood through the bounded queue. ------
  bench::print_section("stream server (ping flood, bounded queue)");
  const int kPings = 2000;
  std::string input;
  for (int i = 0; i < kPings; ++i)
    input += "{\"id\":" + std::to_string(i) + ",\"method\":\"ping\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  serve::TrackingService ping_service;
  serve::ServerOptions options;
  options.threads = pool;
  options.queue_capacity = 64;
  start = Clock::now();
  int exit_code = serve::serve_stream(ping_service, in, out, options);
  double flood_ms = ms_since(start);

  bool all_answered = exit_code == 0;
  std::istringstream lines(out.str());
  std::string line;
  int next_id = 0;
  while (std::getline(lines, line)) {
    obs::JsonValue v = obs::parse_json(line);
    all_answered = all_answered && v.at("ok").boolean &&
                   v.at("id").number == static_cast<double>(next_id);
    ++next_id;
  }
  all_answered = all_answered && next_id == kPings;
  std::printf("%d pings over %u threads: %.1f ms (%.0f req/s)\n",
              kPings, pool, flood_ms, 1000.0 * kPings / flood_ms);
  std::printf("every request answered once, in order: %s\n\n",
              all_answered ? "yes" : "NO");

  PT_GAUGE("verdict_identical", identical ? 1.0 : 0.0);
  PT_GAUGE("verdict_all_answered", all_answered ? 1.0 : 0.0);
  PT_GAUGE("advisory_read_scaling_ge1_2", scaling_ok ? 1.0 : 0.0);
  PT_GAUGE("read_scaling", scaling);
  PT_GAUGE("read_rps_single", single_rps);
  PT_GAUGE("read_rps_pooled", pooled_rps);
  PT_GAUGE("ping_rps", 1000.0 * kPings / flood_ms);
  bench::write_telemetry("BENCH_serve.json", "perf_serve");

  bool pass = identical && all_answered;
  std::printf("\nperf_serve: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
