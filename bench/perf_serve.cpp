// perf_serve — the tracking service vs the batch pipeline it wraps.
//
// perftrackd's pitch is that putting TrackingSession behind a daemon costs
// protocol overhead, not correctness: a client that appends a study's
// traces and reads regions/trends over the wire must get the very bytes a
// batch `perftrack track` run prints, and concurrent readers must not
// serialise behind each other (reads take the study lock shared and serve
// from the cached result).
//
// Leg A (the correctness verdict): drive the hydroc study through
// TrackingService — open, append every trace inline, read regions and
// trends — and compare byte-for-byte against a TrackingPipeline batch run
// with the same configuration. Append wall time is reported next to the
// batch run for context.
//
// Leg B: read throughput on a warm study, one reader vs a small pool.
// Shared-lock reads should scale; the scaling factor is exported as an
// advisory gauge because wall-clock ratios are flaky on shared runners.
//
// Leg C: the stream server end to end — a ping flood through serve_stream
// with a bounded queue. Every request must be answered exactly once, in
// order (the verdict); the sustained request rate bounds the protocol +
// queue overhead per call. The metrics plane must have recorded exactly
// one end-to-end latency sample per ping (a deterministic verdict), and
// the observed p50/p99 are exported as advisory gauges.
//
// Leg D: the same flood with ServiceConfig::metrics=false — the recording
// overhead of the live metrics plane, best-of-N both ways. The bar is
// advisory (< 1% is below shared-runner noise) but the gauge pins the
// number the header comment in serve/metrics.hpp promises.
//
// Leg E (the durability verdict): run the study against a journaled
// service (--state-dir semantics, fsync=always), destroy the service
// mid-life, restart a second one on the same state dir, and compare its
// regions/trends byte-for-byte against the uninterrupted Leg A bytes —
// verdict_recovery_identity. The per-append latency of every fsync mode
// is exported as advisory gauges, the journal's cost sheet.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/studies.hpp"
#include "trace/trace_io.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

serve::Request request(const std::string& method,
                       const std::string& study = "") {
  serve::Request r;
  r.method = method;
  r.study = study;
  return r;
}

serve::Request append_request(const std::string& study,
                              const trace::Trace& trace) {
  serve::Request r = request("append_experiment", study);
  std::ostringstream text;
  trace::write_trace(text, trace);
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue inline_trace;
  inline_trace.type = obs::JsonValue::Type::String;
  inline_trace.string = text.str();
  r.params.object["trace"] = std::move(inline_trace);
  return r;
}

std::string result_field(const serve::Response& response, const char* key) {
  if (!response.ok) {
    std::fprintf(stderr, "request failed: %s\n", response.message.c_str());
    return {};
  }
  return obs::parse_json(response.result_json).at(key).string;
}

}  // namespace

int main() {
  bench::enable_telemetry();
  bench::print_title("perf_serve",
                     "perftrackd service vs the batch pipeline it wraps");
  bench::print_paper(
      "a daemon front-end may add protocol overhead but must serve the "
      "identical bytes, and shared-lock reads must not serialise");

  sim::Study study = sim::study_hydroc();

  // ---- Leg A: daemon reads vs batch pipeline, byte for byte. -----------
  bench::print_section("daemon vs batch (hydroc study, inline appends)");

  tracking::SessionConfig session_config;
  session_config.clustering = study.clustering;

  Clock::time_point start = Clock::now();
  tracking::TrackingPipeline pipeline;
  pipeline.set_config(session_config);
  for (const auto& t : study.traces) pipeline.add_experiment(t);
  tracking::TrackingResult batch = pipeline.run();
  double batch_ms = ms_since(start);
  const std::string batch_regions = tracking::describe_tracking(batch);
  const std::string batch_trends = tracking::trends_csv(batch);

  serve::ServiceConfig service_config;
  service_config.session = session_config;
  serve::TrackingService service(service_config);

  start = Clock::now();
  bool ok = service.handle(request("open_study", "hydroc")).ok;
  for (const auto& t : study.traces)
    ok = ok && service.handle(append_request("hydroc", *t)).ok;
  serve::Request trends_request = request("trends", "hydroc");
  trends_request.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue metric;
  metric.type = obs::JsonValue::Type::String;
  metric.string = "IPC";
  trends_request.params.object["metric"] = std::move(metric);
  const std::string served_regions =
      result_field(service.handle(request("regions", "hydroc")), "text");
  const std::string served_trends =
      result_field(service.handle(trends_request), "csv");
  double served_ms = ms_since(start);

  bool identical = ok && served_regions == batch_regions &&
                   served_trends == batch_trends;
  std::printf("batch pipeline:        %.1f ms\n", batch_ms);
  std::printf("daemon open+append+read: %.1f ms (%zu inline appends)\n",
              served_ms, study.traces.size());
  std::printf("served bytes identical to batch: %s\n\n",
              identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg B: warm-study read throughput, 1 reader vs a pool. ----------
  bench::print_section("warm read throughput (shared-lock regions reads)");
  const int kReads = 200;
  start = Clock::now();
  for (int i = 0; i < kReads; ++i)
    service.handle(request("regions", "hydroc"));
  double single_ms = ms_since(start);
  double single_rps = 1000.0 * kReads / single_ms;

  const unsigned pool =
      std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  start = Clock::now();
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < pool; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReads; ++i)
        service.handle(request("regions", "hydroc"));
    });
  }
  for (std::thread& reader : readers) reader.join();
  double pooled_ms = ms_since(start);
  double pooled_rps = 1000.0 * kReads * pool / pooled_ms;
  double scaling = pooled_rps / single_rps;
  // The bar only means something with real parallelism underneath.
  bool scaling_ok = pool < 2 || scaling >= 1.2;

  std::printf("1 reader:  %7.0f reads/s\n", single_rps);
  std::printf("%u readers: %7.0f reads/s (%.2fx, advisory bar >= 1.2x%s)\n\n",
              pool, pooled_rps, scaling,
              pool < 2 ? ", waived on a single core" : "");

  // ---- Leg C: stream server ping flood through the bounded queue. ------
  bench::print_section("stream server (ping flood, bounded queue)");
  const int kPings = 2000;
  std::string input;
  for (int i = 0; i < kPings; ++i)
    input += "{\"id\":" + std::to_string(i) + ",\"method\":\"ping\"}\n";
  serve::ServerOptions options;
  options.threads = pool;
  options.queue_capacity = 64;

  // One flood through a fresh service; answers must come back exactly
  // once, in order. Returns wall time.
  auto flood = [&](serve::TrackingService& target, bool& answered) {
    std::istringstream in(input);
    std::ostringstream out;
    Clock::time_point begin = Clock::now();
    int exit_code = serve::serve_stream(target, in, out, options);
    double ms = ms_since(begin);
    answered = exit_code == 0;
    std::istringstream lines(out.str());
    std::string line;
    int next_id = 0;
    while (std::getline(lines, line)) {
      obs::JsonValue v = obs::parse_json(line);
      answered = answered && v.at("ok").boolean &&
                 v.at("id").number == static_cast<double>(next_id);
      ++next_id;
    }
    answered = answered && next_id == kPings;
    return ms;
  };

  serve::TrackingService ping_service;  // metrics on by default
  bool all_answered = false;
  double flood_ms = flood(ping_service, all_answered);

  // The metrics plane saw every ping end to end: the request_ns histogram
  // holds exactly kPings samples, and its quantiles are the request
  // latency this flood actually delivered.
  obs::HistogramSnapshot ping_latency =
      ping_service.metrics()
          .registry()
          .histogram("perftrackd_request_ns", "method=\"ping\"")
          .snapshot();
  bool metrics_complete =
      ping_latency.count == static_cast<std::uint64_t>(kPings);
  std::printf("%d pings over %u threads: %.1f ms (%.0f req/s)\n",
              kPings, pool, flood_ms, 1000.0 * kPings / flood_ms);
  std::printf("request_ns p50/p99/max: %llu / %llu / %llu ns\n",
              static_cast<unsigned long long>(ping_latency.quantile(0.50)),
              static_cast<unsigned long long>(ping_latency.quantile(0.99)),
              static_cast<unsigned long long>(ping_latency.max));
  std::printf("every request answered once, in order: %s\n",
              all_answered ? "yes" : "NO");
  std::printf("metrics recorded every ping: %s (%llu of %d)\n\n",
              metrics_complete ? "yes" : "NO",
              static_cast<unsigned long long>(ping_latency.count), kPings);

  // ---- Leg D: recording overhead — metrics on vs metrics off. ----------
  bench::print_section("metrics recording overhead (ping flood, best of 5)");
  const int kReps = 5;
  double best_on_ms = flood_ms;
  double best_off_ms = 1e300;
  bool overhead_floods_ok = true;
  for (int rep = 0; rep < kReps; ++rep) {
    bool rep_ok = false;
    serve::TrackingService on_service;
    best_on_ms = std::min(best_on_ms, flood(on_service, rep_ok));
    overhead_floods_ok = overhead_floods_ok && rep_ok;

    serve::ServiceConfig off_config;
    off_config.metrics = false;
    serve::TrackingService off_service(off_config);
    best_off_ms = std::min(best_off_ms, flood(off_service, rep_ok));
    overhead_floods_ok = overhead_floods_ok && rep_ok;
  }
  double overhead_pct = 100.0 * (best_on_ms - best_off_ms) / best_off_ms;
  bool overhead_ok = overhead_floods_ok && overhead_pct < 1.0;
  std::printf("metrics on:  %.1f ms best\n", best_on_ms);
  std::printf("metrics off: %.1f ms best\n", best_off_ms);
  std::printf("recording overhead: %+.2f%% (advisory bar < 1%%)\n\n",
              overhead_pct);

  // ---- Leg E: crash-restart identity + fsync-mode append latency. ------
  bench::print_section("journal durability (restart identity, fsync cost)");
  namespace fs = std::filesystem;
  const fs::path state_root =
      fs::temp_directory_path() / "pt_bench_serve_state";
  fs::remove_all(state_root);

  auto durable_config = [&](serve::FsyncMode mode, const char* leg) {
    serve::ServiceConfig config;
    config.session = session_config;
    config.journal.directory = (state_root / leg).string();
    config.journal.fsync = mode;
    return config;
  };

  // Appends split across two service lifetimes; the first one is dropped
  // without any explicit flush (fsync=always keeps every record durable).
  const std::size_t half = study.traces.size() / 2;
  std::string recovered_regions, recovered_trends;
  {
    serve::TrackingService first(
        durable_config(serve::FsyncMode::Always, "identity"));
    bool durable_ok = first.handle(request("open_study", "hydroc")).ok;
    for (std::size_t i = 0; i < half; ++i)
      durable_ok =
          durable_ok &&
          first.handle(append_request("hydroc", *study.traces[i])).ok;
    if (!durable_ok) std::fprintf(stderr, "journaled appends failed\n");
  }  // "crash": the first service dies here with studies in flight
  {
    serve::TrackingService second(
        durable_config(serve::FsyncMode::Always, "identity"));
    bool durable_ok = true;
    for (std::size_t i = half; i < study.traces.size(); ++i)
      durable_ok =
          durable_ok &&
          second.handle(append_request("hydroc", *study.traces[i])).ok;
    if (!durable_ok) std::fprintf(stderr, "post-restart appends failed\n");
    recovered_regions =
        result_field(second.handle(request("regions", "hydroc")), "text");
    serve::Request recovered_trends_request = request("trends", "hydroc");
    recovered_trends_request.params = trends_request.params;
    recovered_trends =
        result_field(second.handle(recovered_trends_request), "csv");
  }
  const bool recovery_identity = recovered_regions == batch_regions &&
                                 recovered_trends == batch_trends;
  std::printf("restarted daemon identical to uninterrupted batch: %s\n",
              recovery_identity ? "yes" : "NO — DURABILITY BROKEN");

  // Advisory append latency per fsync mode (including journal writes).
  double append_us[3] = {0.0, 0.0, 0.0};
  const serve::FsyncMode kModes[3] = {
      serve::FsyncMode::Always, serve::FsyncMode::Batch,
      serve::FsyncMode::Off};
  for (int m = 0; m < 3; ++m) {
    serve::TrackingService timed(
        durable_config(kModes[m], serve::fsync_mode_name(kModes[m]).data()));
    timed.handle(request("open_study", "hydroc"));
    start = Clock::now();
    for (const auto& t : study.traces)
      timed.handle(append_request("hydroc", *t));
    append_us[m] =
        1000.0 * ms_since(start) / static_cast<double>(study.traces.size());
    std::printf("append latency, fsync=%-6s %8.1f us/append\n",
                std::string(serve::fsync_mode_name(kModes[m])).c_str(),
                append_us[m]);
  }
  std::printf("\n");
  fs::remove_all(state_root);

  PT_GAUGE("verdict_identical", identical ? 1.0 : 0.0);
  PT_GAUGE("verdict_recovery_identity", recovery_identity ? 1.0 : 0.0);
  PT_GAUGE("advisory_append_fsync_always_us", append_us[0]);
  PT_GAUGE("advisory_append_fsync_batch_us", append_us[1]);
  PT_GAUGE("advisory_append_fsync_off_us", append_us[2]);
  PT_GAUGE("verdict_all_answered", all_answered ? 1.0 : 0.0);
  PT_GAUGE("verdict_metrics_complete", metrics_complete ? 1.0 : 0.0);
  PT_GAUGE("advisory_read_scaling_ge1_2", scaling_ok ? 1.0 : 0.0);
  PT_GAUGE("advisory_metrics_overhead_lt_1pct", overhead_ok ? 1.0 : 0.0);
  PT_GAUGE("advisory_ping_p50_ns",
           static_cast<double>(ping_latency.quantile(0.50)));
  PT_GAUGE("advisory_ping_p99_ns",
           static_cast<double>(ping_latency.quantile(0.99)));
  PT_GAUGE("metrics_overhead_pct", overhead_pct);
  PT_GAUGE("read_scaling", scaling);
  PT_GAUGE("read_rps_single", single_rps);
  PT_GAUGE("read_rps_pooled", pooled_rps);
  PT_GAUGE("ping_rps", 1000.0 * kPings / flood_ms);
  bench::write_telemetry("BENCH_serve.json", "perf_serve");

  bool pass =
      identical && all_answered && metrics_complete && recovery_identity;
  std::printf("\nperf_serve: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
