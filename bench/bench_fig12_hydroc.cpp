// Figure 12 — Performance trends for HydroC code regions.
//
// Block size doubled from 4 to 1024 elements per side.
// (a) Instructions decline 1-3% per doubling up to block 32 (control
//     overhead of many small working sets), constant beyond.
// (b) IPC declines ~5% (region 1) and ~10% (region 2) in total, with the
//     sharp dip when the block grows from 64 to 128 — 64x64 x 8 bytes is
//     exactly the 32 KB L1.
// (c) L1 misses jump ~40% at the same 64 -> 128 step.

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 12", "HydroC trends vs block size");
  bench::print_paper(
      "instructions -1..-3% per doubling up to 32 then flat; IPC -5%/-10% "
      "total with a sharp dip at 64->128; L1 misses +40% at that step");

  sim::Study study = sim::study_hydroc(9);  // blocks 4..1024 as in §4.4
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::vector<std::string> labels;
  for (const auto& f : result.frames)
    labels.push_back(f.source().attribute_or("block_side", f.label()));

  bench::print_section("(a) instructions per burst, relative to block 4");
  std::vector<tracking::TrendSeries> instr_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto instr = tracking::relative_to_first(tracking::region_metric_mean(
        result, region.id, trace::Metric::Instructions));
    instr_series.push_back({"R" + std::to_string(region.id + 1), instr});
    std::printf("  Region %d:", region.id + 1);
    for (std::size_t f = 1; f < instr.size(); ++f)
      std::printf(" %s", format_percent(instr[f] / instr[f - 1] - 1.0).c_str());
    std::printf("  (per-doubling steps)\n");
  }
  tracking::TrendChartOptions chart;
  chart.y_label = "instructions relative to block 4";
  std::printf("\n%s\n",
              tracking::trend_chart(instr_series, labels, chart).c_str());

  bench::print_section("(b) IPC per region");
  std::vector<tracking::TrendSeries> ipc_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    ipc_series.push_back({"R" + std::to_string(region.id + 1), ipc});
    double dip = 0.0;
    std::size_t dip_at = 0;
    for (std::size_t f = 1; f < ipc.size(); ++f) {
      double step = ipc[f] / ipc[f - 1] - 1.0;
      if (step < dip) {
        dip = step;
        dip_at = f;
      }
    }
    std::printf("  Region %d: total %s, sharpest dip %s at block %s->%s\n",
                region.id + 1,
                format_percent(ipc.back() / ipc.front() - 1.0).c_str(),
                format_percent(dip).c_str(), labels[dip_at - 1].c_str(),
                labels[dip_at].c_str());
  }
  tracking::TrendChartOptions ipc_chart;
  ipc_chart.y_label = "IPC";
  std::printf("\n%s\n",
              tracking::trend_chart(ipc_series, labels, ipc_chart).c_str());

  bench::print_section("(c) L1 misses per kilo-instruction");
  std::vector<tracking::TrendSeries> l1_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto l1 = tracking::region_metric_mean(result, region.id,
                                           trace::Metric::L1MissesPerKi);
    l1_series.push_back({"R" + std::to_string(region.id + 1), l1});
    // Find the 64 -> 128 step (labels hold the block side).
    for (std::size_t f = 1; f < l1.size(); ++f)
      if (labels[f] == "128")
        std::printf("  Region %d: L1 misses/Ki %s at 64 -> 128 "
                    "(paper: ~+40%%)\n",
                    region.id + 1,
                    format_percent(l1[f] / l1[f - 1] - 1.0).c_str());
  }
  tracking::TrendChartOptions l1_chart;
  l1_chart.y_label = "L1 misses / Ki";
  std::printf("\n%s",
              tracking::trend_chart(l1_series, labels, l1_chart).c_str());
  return 0;
}
