// Figure 6 — Sequence of images for WRF with tracked regions renamed.
//
// After tracking, objects are renumbered so equivalent regions keep the
// same identifier (and colour, in the paper) along the whole sequence.

#include <cstdio>

#include "bench_util.hpp"
#include "sim/studies.hpp"
#include "tracking/report.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 6", "WRF frames with tracked regions renamed");
  bench::print_paper(
      "128- and 256-task frames with consistent region numbering; 12 "
      "tracked regions, the split pair shares one number");

  sim::Study study = sim::study_wrf();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::printf("%s", tracking::tracked_scatters(result).c_str());
  std::printf("%s", tracking::describe_tracking(result).c_str());
  return 0;
}
