// Figure 1 — Structure of WRF computing bursts.
//
// (a) 128-task frame: twelve clusters in the Instructions x IPC space;
//     vertical stretch = instruction imbalance, horizontal = IPC variation.
// (b) 256-task frame on its own scales: everything moved down the
//     instruction axis (half the work per task) and the cluster count grew.
// (c) 256-task frame with the performance scales normalised (instructions
//     weighted by the task count): relative distances to the 128-task case
//     are almost constant again.

#include <cstdio>

#include "bench_util.hpp"
#include "cluster/scatter.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/scale.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 1", "structure of WRF computing bursts");
  bench::print_paper(
      "12 clusters at 128 tasks; doubling to 256 tasks halves per-task "
      "instructions (all clusters move down the Y axis) while the "
      "structure is preserved once scales are normalised");

  sim::Study study = sim::study_wrf();
  auto frames = study.frames();
  const cluster::Frame& f128 = frames[0];
  const cluster::Frame& f256 = frames[1];

  cluster::ScatterOptions options;
  options.x_axis = 1;  // IPC
  options.y_axis = 0;  // Instructions
  options.log_y = true;

  bench::print_section("(a) WRF-128, own scales");
  std::printf("%s\n", cluster::ascii_scatter(f128, options).c_str());
  bench::print_section("(b) WRF-256, own scales");
  std::printf("%s\n", cluster::ascii_scatter(f256, options).c_str());

  // Per-task instruction means confirm the inverse-proportion shift.
  double mean128 = 0.0, mean256 = 0.0;
  for (std::size_t row = 0; row < f128.projection().size(); ++row)
    mean128 += f128.projection().points[row][0];
  mean128 /= static_cast<double>(f128.projection().size());
  for (std::size_t row = 0; row < f256.projection().size(); ++row)
    mean256 += f256.projection().points[row][0];
  mean256 /= static_cast<double>(f256.projection().size());
  std::printf("mean instructions per burst: 128 tasks %s, 256 tasks %s "
              "(ratio %.2f; paper: inverse proportion, ~0.5)\n\n",
              format_si(mean128).c_str(), format_si(mean256).c_str(),
              mean256 / mean128);

  bench::print_section("(c) WRF-256, scales normalised across experiments");
  tracking::ScaleNormalization scale =
      tracking::ScaleNormalization::fit(frames, {true, false});

  // Compare cluster centroids of matching behaviours in the normalised
  // space: distances between the two frames should be small.
  geom::PointSet norm128 = scale.apply(f128);
  geom::PointSet norm256 = scale.apply(f256);
  RunningStats nearest_shift;
  for (const auto& object : f256.objects()) {
    // Normalised centroid of the 256-task object.
    std::vector<double> c(2, 0.0);
    for (std::uint32_t row : object.rows) {
      auto p = norm256[row];
      c[0] += p[0];
      c[1] += p[1];
    }
    c[0] /= static_cast<double>(object.size());
    c[1] /= static_cast<double>(object.size());
    // Distance to the nearest 128-task object centroid.
    double best = 1e300;
    for (const auto& other : f128.objects()) {
      std::vector<double> d(2, 0.0);
      for (std::uint32_t row : other.rows) {
        auto p = norm128[row];
        d[0] += p[0];
        d[1] += p[1];
      }
      d[0] /= static_cast<double>(other.size());
      d[1] /= static_cast<double>(other.size());
      double dist = geom::distance(c, d);
      best = std::min(best, dist);
    }
    nearest_shift.add(best);
  }
  std::printf(
      "object displacement in the normalised space (unit square): mean %.3f,"
      " max %.3f\n(paper: relative distances kept almost constant)\n",
      nearest_shift.mean(), nearest_shift.max());
  return 0;
}
