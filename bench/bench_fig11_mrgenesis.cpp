// Figure 11 — Performance trends for MR-Genesis code regions.
//
// 12 tasks on MinoTauro, tasks-per-node swept 1..12.
// (a) IPC: <1.5% decline per step up to ~66% node occupancy, sharper
//     drops beyond (one step costs ~8.5%), ~17.5% total at full occupancy.
// (b) All metrics of region 1, each relative to its maximum over the
//     sweep: L2 misses grow inversely to IPC, TLB misses rise as the node
//     fills.

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 11",
                     "MR-Genesis IPC vs node occupancy, metric correlation");
  bench::print_paper(
      "slight <1.5%/step IPC decline to 8 tasks/node, sharp ~8.5% single "
      "step beyond, ~17.5% total; L2 and TLB misses grow inversely");

  sim::Study study = sim::study_mrgenesis();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::vector<std::string> labels;
  for (const auto& f : result.frames) labels.push_back(f.label());

  bench::print_section("(a) IPC per region vs tasks per node");
  std::vector<tracking::TrendSeries> ipc_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    ipc_series.push_back({"R" + std::to_string(region.id + 1), ipc});
    std::printf("  Region %d:", region.id + 1);
    for (std::size_t f = 0; f < ipc.size(); ++f) std::printf(" %.3f", ipc[f]);
    std::printf("\n            steps:");
    double worst_step = 0.0;
    for (std::size_t f = 1; f < ipc.size(); ++f) {
      double step = ipc[f] / ipc[f - 1] - 1.0;
      worst_step = std::min(worst_step, step);
      std::printf(" %s", format_percent(step, 1).c_str());
    }
    std::printf("\n            total %s, worst single step %s\n",
                format_percent(ipc.back() / ipc.front() - 1.0).c_str(),
                format_percent(worst_step).c_str());
  }
  tracking::TrendChartOptions chart;
  chart.y_label = "IPC";
  std::printf("\n%s\n",
              tracking::trend_chart(ipc_series, labels, chart).c_str());

  bench::print_section(
      "(b) region 1 metrics, % of each metric's maximum over the sweep");
  const auto& region = result.regions.front();
  auto ipc = tracking::relative_to_max(tracking::region_metric_mean(
      result, region.id, trace::Metric::Ipc));
  auto l2 = tracking::relative_to_max(tracking::region_metric_mean(
      result, region.id, trace::Metric::L2MissesPerKi));
  auto tlb = tracking::relative_to_max(tracking::region_metric_mean(
      result, region.id, trace::Metric::TlbMissesPerKi));
  auto instr = tracking::relative_to_max(tracking::region_metric_mean(
      result, region.id, trace::Metric::Instructions));
  std::vector<tracking::TrendSeries> correlation{
      {"IPC", ipc}, {"L2/Ki", l2}, {"TLB/Ki", tlb}, {"Instr", instr}};
  tracking::TrendChartOptions rel_chart;
  rel_chart.y_label = "fraction of metric maximum";
  std::printf("%s",
              tracking::trend_chart(correlation, labels, rel_chart).c_str());
  std::printf(
      "(paper: instructions flat, L2/TLB misses rise as IPC falls)\n");
  return 0;
}
