// perf_displacement — the displacement evaluator's nearest-neighbour
// engines: kd-tree vs CSR grid vs grid + threads.
//
// After grid DBSCAN removed clustering from the critical path, the
// cross-frame NN classification dominated end-to-end tracking. This
// harness times the evaluator over every adjacent pair of the ten Table 2
// case studies (the perf_session workload) with each engine and thread
// count, and — the part CI gates on — proves the engines interchangeable:
// every correlation matrix must match cell for cell, bitwise, and the
// full track_frames output (links, relations, regions, renaming) must be
// byte-identical for kd vs grid at 1 and N threads.
//
// Gauges exported to BENCH_perf_opt.json:
//   verdict_displacement_identity      1 iff every equivalence check held
//   advisory_displacement_speedup      kd ms / grid ms (serial, tracked)
//   advisory_displacement_speedup_ge10 the >= 10x bar (warn-only in CI)
//   displacement_{kdtree,grid,grid_mt}_ms raw sweep times

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/studies.hpp"
#include "tracking/evaluator_displacement.hpp"
#include "tracking/report.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct StudyFrames {
  std::string name;
  std::vector<cluster::Frame> frames;
  tracking::ScaleNormalization scale;
};

struct SweepOutcome {
  double ms = 0.0;
  std::vector<tracking::DisplacementResult> results;
};

/// Classify every adjacent pair of every study with the given engine;
/// clouds are prebuilt (the tracker caches them too), so the timing
/// isolates the query sweep itself.
SweepOutcome sweep(const std::vector<StudyFrames>& studies,
                   tracking::DisplacementIndex index, ThreadPool* pool) {
  SweepOutcome out;
  for (const StudyFrames& study : studies) {
    std::vector<std::unique_ptr<tracking::FrameCloud>> clouds;
    clouds.reserve(study.frames.size());
    for (const cluster::Frame& f : study.frames)
      clouds.push_back(
          std::make_unique<tracking::FrameCloud>(f, study.scale, index));
    const Clock::time_point start = Clock::now();
    for (std::size_t p = 0; p + 1 < study.frames.size(); ++p)
      out.results.push_back(tracking::evaluate_displacement(
          study.frames[p], *clouds[p], study.frames[p + 1], *clouds[p + 1],
          0.05, pool));
    out.ms += ms_since(start);
  }
  return out;
}

bool same_results(const std::vector<tracking::DisplacementResult>& a,
                  const std::vector<tracking::DisplacementResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i].a_to_b == b[i].a_to_b) || !(a[i].b_to_a == b[i].b_to_a))
      return false;
  return true;
}

/// Everything the tracked output exposes, for bitwise comparison.
struct ResultDigest {
  std::string description;
  std::string trends;
  std::vector<std::vector<std::int32_t>> renaming;

  explicit ResultDigest(const tracking::TrackingResult& result)
      : description(tracking::describe_tracking(result)),
        trends(tracking::trends_csv(result)),
        renaming(result.renaming) {}

  bool operator==(const ResultDigest&) const = default;
};

}  // namespace

int main() {
  bench::enable_telemetry();
  bench::print_title("perf_opt",
                     "displacement NN engine: kd-tree vs grid vs "
                     "grid + threads");
  bench::print_paper(
      "not in the paper — engineering comparison of the displacement "
      "evaluator's nearest-neighbour engines over the ten case studies "
      "(byte-identical classifications required)");

  std::vector<StudyFrames> studies;
  for (const sim::Study& study : sim::all_studies()) {
    StudyFrames s;
    s.name = study.name;
    s.frames = study.frames();
    s.scale = tracking::ScaleNormalization::fit(
        s.frames,
        tracking::tracking_log_scale(tracking::TrackingParams{}, s.frames[0]));
    studies.push_back(std::move(s));
  }

  // ---- Leg A: the classification sweep, per engine. --------------------
  bench::print_section("evaluator sweep over all adjacent pairs");
  ThreadPool pool(4);
  SweepOutcome kd, grid, grid_mt;
  {
    PT_SPAN("displacement_kdtree_total");
    kd = sweep(studies, tracking::DisplacementIndex::kKdTree, nullptr);
  }
  {
    PT_SPAN("displacement_grid_total");
    grid = sweep(studies, tracking::DisplacementIndex::kGrid, nullptr);
  }
  {
    PT_SPAN("displacement_grid_mt_total");
    grid_mt = sweep(studies, tracking::DisplacementIndex::kGrid, &pool);
  }

  const bool sweeps_identical = same_results(kd.results, grid.results) &&
                                same_results(kd.results, grid_mt.results);
  const double speedup = kd.ms / grid.ms;

  std::printf("pairs classified  : %zu\n", kd.results.size());
  std::printf("kd-tree engine    : %10.1f ms\n", kd.ms);
  std::printf("grid engine       : %10.1f ms\n", grid.ms);
  std::printf("grid + 4 threads  : %10.1f ms\n", grid_mt.ms);
  std::printf("serial speedup    : %10.1fx (bar: >= 10x)\n", speedup);
  std::printf("matrices identical: %s\n\n",
              sweeps_identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg B: full tracking identity, kd vs grid, 1 vs N threads. ------
  bench::print_section(
      "track_frames identity (links, relations, regions, renaming)");
  Table table({"Study", "Frames", "kd ms", "grid ms", "grid 4t ms",
               "Identical"});
  bool tracking_identical = true;
  double kd_track_ms = 0.0, grid_track_ms = 0.0, grid_mt_track_ms = 0.0;
  for (const StudyFrames& study : studies) {
    tracking::TrackingParams params;
    params.threads = 1;
    params.displacement_index = tracking::DisplacementIndex::kKdTree;
    Clock::time_point start = Clock::now();
    ResultDigest kd_digest(tracking::track_frames(study.frames, params));
    const double kd_ms = ms_since(start);

    params.displacement_index = tracking::DisplacementIndex::kGrid;
    start = Clock::now();
    ResultDigest grid_digest(tracking::track_frames(study.frames, params));
    const double grid_ms = ms_since(start);

    params.threads = 4;
    start = Clock::now();
    ResultDigest grid_mt_digest(tracking::track_frames(study.frames, params));
    const double grid_mt_ms = ms_since(start);

    const bool same =
        kd_digest == grid_digest && kd_digest == grid_mt_digest;
    tracking_identical = tracking_identical && same;
    kd_track_ms += kd_ms;
    grid_track_ms += grid_ms;
    grid_mt_track_ms += grid_mt_ms;
    table.begin_row();
    table.cell(study.name);
    table.cell(study.frames.size());
    table.cell(kd_ms, 1);
    table.cell(grid_ms, 1);
    table.cell(grid_mt_ms, 1);
    table.cell(std::string(same ? "yes" : "NO"));
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("tracking aggregate: kd %.0f ms, grid %.0f ms (%.1fx), "
              "grid 4t %.0f ms\n",
              kd_track_ms, grid_track_ms, kd_track_ms / grid_track_ms,
              grid_mt_track_ms);
  std::printf("tracking byte-identical across engines and threads: %s\n\n",
              tracking_identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  const bool identity = sweeps_identical && tracking_identical;
  PT_GAUGE("verdict_displacement_identity", identity ? 1.0 : 0.0);
  PT_GAUGE("advisory_displacement_speedup", speedup);
  PT_GAUGE("advisory_displacement_speedup_ge10", speedup >= 10.0 ? 1.0 : 0.0);
  PT_GAUGE("displacement_kdtree_ms", kd.ms);
  PT_GAUGE("displacement_grid_ms", grid.ms);
  PT_GAUGE("displacement_grid_mt_ms", grid_mt.ms);
  PT_GAUGE("tracking_kdtree_ms", kd_track_ms);
  PT_GAUGE("tracking_grid_ms", grid_track_ms);
  bench::write_telemetry("BENCH_perf_opt.json", "perf_opt");

  const bool ok = identity && speedup >= 10.0;
  std::printf("\nperf_displacement: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
