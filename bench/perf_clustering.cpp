// Microbenchmark — DBSCAN and frame building at study-sized point counts,
// plus the kd-tree-vs-grid engine comparison behind docs/PERFORMANCE.md.
//
// Run with no arguments to get the engine comparison over the ten case
// studies (written to BENCH_perf_opt.json) followed by the google-benchmark
// microbenchmarks; benchmark flags (--benchmark_filter=...) pass through.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/frame.hpp"
#include "obs/telemetry.hpp"
#include "sim/apps/apps.hpp"
#include "sim/studies.hpp"

using namespace perftrack;

namespace {

std::shared_ptr<const trace::Trace> wrf_trace(std::uint32_t tasks) {
  static std::map<std::uint32_t, std::shared_ptr<const trace::Trace>> cache;
  auto it = cache.find(tasks);
  if (it != cache.end()) return it->second;
  sim::AppModel app = sim::make_wrf();
  sim::Scenario s;
  s.label = "WRF-" + std::to_string(tasks);
  s.num_tasks = tasks;
  s.platform = sim::marenostrum();
  auto trace = app.simulate_shared(s);
  cache[tasks] = trace;
  return trace;
}

geom::PointSet wrf_points(std::uint32_t tasks,
                          const cluster::ClusteringParams& params) {
  auto trace = wrf_trace(tasks);
  cluster::Projection proj = cluster::project(*trace, params.projection);
  cluster::Transform transform =
      cluster::Transform::fit(proj.points, params.log_scale);
  return transform.apply(proj.points);
}

void BM_DbscanKdTree(benchmark::State& state) {
  cluster::ClusteringParams params = sim::default_clustering();
  params.dbscan.index = cluster::DbscanIndex::kKdTree;
  geom::PointSet normalized =
      wrf_points(static_cast<std::uint32_t>(state.range(0)), params);
  for (auto _ : state) {
    auto result = cluster::dbscan(normalized, params.dbscan);
    benchmark::DoNotOptimize(result.cluster_count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(normalized.size()));
}
BENCHMARK(BM_DbscanKdTree)
    ->Arg(32)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_DbscanGrid(benchmark::State& state) {
  cluster::ClusteringParams params = sim::default_clustering();
  params.dbscan.index = cluster::DbscanIndex::kGrid;
  geom::PointSet normalized =
      wrf_points(static_cast<std::uint32_t>(state.range(0)), params);
  for (auto _ : state) {
    auto result = cluster::dbscan(normalized, params.dbscan);
    benchmark::DoNotOptimize(result.cluster_count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(normalized.size()));
}
BENCHMARK(BM_DbscanGrid)
    ->Arg(32)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BuildFrame(benchmark::State& state) {
  auto trace = wrf_trace(static_cast<std::uint32_t>(state.range(0)));
  cluster::ClusteringParams params = sim::default_clustering();
  for (auto _ : state) {
    cluster::Frame frame = cluster::build_frame(trace, params);
    benchmark::DoNotOptimize(frame.object_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace->burst_count()));
}
BENCHMARK(BM_BuildFrame)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulateWrf(benchmark::State& state) {
  sim::AppModel app = sim::make_wrf();
  sim::Scenario s;
  s.num_tasks = static_cast<std::uint32_t>(state.range(0));
  s.platform = sim::marenostrum();
  for (auto _ : state) {
    trace::Trace trace = app.simulate(s);
    benchmark::DoNotOptimize(trace.burst_count());
  }
}
BENCHMARK(BM_SimulateWrf)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

/// One dbscan pass over every frame of every study with the given engine;
/// returns the wall time in milliseconds. The labels of both engines are
/// compared as a safety net — a mismatch poisons the comparison.
double cluster_all_studies(cluster::DbscanIndex index,
                           std::vector<cluster::DbscanResult>* results) {
  cluster::ClusteringParams params = sim::default_clustering();
  params.dbscan.index = index;
  const auto start = std::chrono::steady_clock::now();
  for (const sim::Study& study : sim::all_studies()) {
    for (const auto& trace : study.traces) {
      cluster::Projection proj =
          cluster::project(*trace, params.projection);
      cluster::Transform transform =
          cluster::Transform::fit(proj.points, params.log_scale);
      geom::PointSet normalized = transform.apply(proj.points);
      results->push_back(cluster::dbscan(normalized, params.dbscan));
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Engine comparison over the full study corpus, recorded as the
/// BENCH_perf_opt.json trajectory point (spans + the speedup gauges).
void run_engine_comparison() {
  bench::enable_telemetry();
  bench::print_title("perf_opt",
                     "DBSCAN spatial index: kd-tree vs uniform grid");
  bench::print_paper(
      "not in the paper — engineering comparison of the two dbscan "
      "engines over the ten case studies (identical labels required)");

  std::vector<cluster::DbscanResult> kd, grid;
  double kd_ms, grid_ms;
  {
    PT_SPAN("dbscan_kdtree_total");
    kd_ms = cluster_all_studies(cluster::DbscanIndex::kKdTree, &kd);
  }
  {
    PT_SPAN("dbscan_grid_total");
    grid_ms = cluster_all_studies(cluster::DbscanIndex::kGrid, &grid);
  }

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < kd.size(); ++i)
    if (kd[i].labels != grid[i].labels) ++mismatches;

  std::printf("frames clustered : %zu\n", kd.size());
  std::printf("kd-tree engine   : %10.1f ms\n", kd_ms);
  std::printf("grid engine      : %10.1f ms\n", grid_ms);
  std::printf("speedup          : %10.1fx\n", kd_ms / grid_ms);
  std::printf("label mismatches : %zu (must be 0)\n\n", mismatches);

  PT_GAUGE("dbscan_kdtree_ms", kd_ms);
  PT_GAUGE("dbscan_grid_ms", grid_ms);
  PT_GAUGE("dbscan_grid_speedup", kd_ms / grid_ms);
  PT_COUNTER("dbscan_label_mismatches", static_cast<double>(mismatches));
  bench::write_telemetry("BENCH_perf_opt.json", "perf_opt");
}

}  // namespace

int main(int argc, char** argv) {
  run_engine_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
