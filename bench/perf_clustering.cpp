// Microbenchmark — DBSCAN and frame building at study-sized point counts.

#include <benchmark/benchmark.h>

#include "cluster/frame.hpp"
#include "sim/apps/apps.hpp"
#include "sim/studies.hpp"

using namespace perftrack;

namespace {

std::shared_ptr<const trace::Trace> wrf_trace(std::uint32_t tasks) {
  static std::map<std::uint32_t, std::shared_ptr<const trace::Trace>> cache;
  auto it = cache.find(tasks);
  if (it != cache.end()) return it->second;
  sim::AppModel app = sim::make_wrf();
  sim::Scenario s;
  s.label = "WRF-" + std::to_string(tasks);
  s.num_tasks = tasks;
  s.platform = sim::marenostrum();
  auto trace = app.simulate_shared(s);
  cache[tasks] = trace;
  return trace;
}

void BM_Dbscan(benchmark::State& state) {
  auto trace = wrf_trace(static_cast<std::uint32_t>(state.range(0)));
  cluster::ClusteringParams params = sim::default_clustering();
  cluster::Projection proj = cluster::project(*trace, params.projection);
  cluster::Transform transform =
      cluster::Transform::fit(proj.points, params.log_scale);
  geom::PointSet normalized = transform.apply(proj.points);
  for (auto _ : state) {
    auto result = cluster::dbscan(normalized, params.dbscan);
    benchmark::DoNotOptimize(result.cluster_count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(normalized.size()));
}
BENCHMARK(BM_Dbscan)->Arg(32)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BuildFrame(benchmark::State& state) {
  auto trace = wrf_trace(static_cast<std::uint32_t>(state.range(0)));
  cluster::ClusteringParams params = sim::default_clustering();
  for (auto _ : state) {
    cluster::Frame frame = cluster::build_frame(trace, params);
    benchmark::DoNotOptimize(frame.object_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace->burst_count()));
}
BENCHMARK(BM_BuildFrame)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulateWrf(benchmark::State& state) {
  sim::AppModel app = sim::make_wrf();
  sim::Scenario s;
  s.num_tasks = static_cast<std::uint32_t>(state.range(0));
  s.platform = sim::marenostrum();
  for (auto _ : state) {
    trace::Trace trace = app.simulate(s);
    benchmark::DoNotOptimize(trace.burst_count());
  }
}
BENCHMARK(BM_SimulateWrf)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
