// perf_session — incremental sessions vs batch re-runs.
//
// The paper's tool is used append-only: run a new experiment, add it to the
// sequence, re-examine the tracked regions. Without sessions every append
// pays a full batch run — re-cluster every trace, re-track every adjacent
// pair. A TrackingSession memoises per-experiment frames and adjacent-pair
// relations (backed by the on-disk frame cache), so an append costs one
// clustering — O(1), and a cache hit if the trace was seen before — plus
// only the pair trackings the fitted scale actually invalidated.
//
// Leg A (the acceptance bar): for each Table 2 study, an analyst with a
// warm session appends one more experiment — a re-measurement of a
// mid-sequence configuration, the common "confirm that result" step, which
// leaves the fitted scale untouched — and retracks. That is timed against
// the pre-session workflow: a cold batch run over all N+1 traces. The
// session must produce a bit-identical result at >= 5x aggregate speedup.
//
// Leg B: the full append-by-append replay of every study, cold vs session.
// Here each append may extend the min-max scale and legitimately force
// pairs to re-track (the "Scale inv" column), so the win is smaller; the
// leg exists to show the equivalence holds at every sequence length and to
// report how often real study sequences invalidate the scale.
//
// Leg C: the on-disk cache across processes — a fresh session over a warm
// cache directory must cluster nothing and still match bit-for-bit.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "align/msa.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "store/frame_store.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/session.hpp"

using namespace perftrack;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ResultDigest {
  std::string description;
  std::string trends;

  explicit ResultDigest(const tracking::TrackingResult& result)
      : description(tracking::describe_tracking(result)),
        trends(tracking::trends_csv(result)) {}
  ResultDigest() = default;

  bool operator==(const ResultDigest&) const = default;
};

}  // namespace

int main() {
  bench::enable_telemetry();
  bench::print_title("perf_session",
                     "incremental sessions vs batch re-runs (Table 2 "
                     "scenario, append-only workflow)");
  bench::print_paper(
      "appending experiment N+1 should cost one clustering and (scale "
      "permitting) one pair tracking, not a full re-run");

  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::temp_directory_path() / "pt_perf_session_cache";
  fs::remove_all(cache_dir);

  // ---- Leg A: one append to a warm session vs a cold batch run. --------
  // Both paths run on one worker: the batch pipeline hides its O(N) extra
  // clusterings and pair trackings behind parallel_for, so with more cores
  // than pairs its wall time collapses to the same single-pair critical
  // path the append pays. One worker makes the column measure the work a
  // session actually avoids; both paths scale with the same pool.
  bench::print_section(
      "warm append re-track vs cold batch (single worker, >= 5x bar)");
  Table append_table({"Study", "Frames", "Cold batch ms", "Warm append ms",
                      "Speedup", "Clustered", "Cache hits", "Pairs new"});
  double append_cold_total = 0.0;
  double append_warm_total = 0.0;
  // The >= 5x bar is judged on the longest tab02 sequence (the 20-frame
  // gromacs evolution study): append-one can reduce wall time at most
  // N-fold on an N-pair study, so a 4-trace study arithmetically caps at
  // ~4x no matter how good the session is. The aggregate over all studies
  // is reported alongside.
  double evolution_speedup = 0.0;
  bool identical = true;

  for (const sim::Study& study : sim::all_studies()) {
    const auto& traces = study.traces;
    const std::size_t n = traces.size();
    // The appended experiment re-measures a mid-sequence configuration —
    // its values sit inside the fitted min-max ranges, so the scale (and
    // with it every memoised pair) survives the append.
    const auto& appended = traces[n / 2];

    tracking::SessionConfig config;
    config.clustering = study.clustering;
    config.tracking.threads = 1;
    config.cache.directory = cache_dir.string();

    // Warm prep (not timed): the session state the analyst already has.
    tracking::TrackingSession session(config);
    for (const auto& t : traces) session.append_experiment(t);
    session.retrack();
    tracking::SessionStats before = session.stats();

    // Cold: the pre-session workflow for the same question — a full batch
    // run over all N+1 traces, no cache.
    tracking::SessionConfig cold_config;
    cold_config.clustering = study.clustering;
    cold_config.tracking.threads = 1;
    Clock::time_point start = Clock::now();
    tracking::TrackingPipeline pipeline;
    pipeline.set_config(cold_config);
    for (const auto& t : traces) pipeline.add_experiment(t);
    pipeline.add_experiment(appended);
    tracking::TrackingResult cold_result = pipeline.run();
    double cold_ms = ms_since(start);
    ResultDigest cold(cold_result);

    // Warm: append one experiment, retrack. Report rendering is outside
    // both timed regions — it costs the same either way.
    start = Clock::now();
    session.append_experiment(appended);
    tracking::TrackingResult warm_result = session.retrack();
    double warm_ms = ms_since(start);
    ResultDigest warm(warm_result);

    identical = identical && cold == warm;
    tracking::SessionStats after = session.stats();
    std::size_t clustered = after.frames_clustered - before.frames_clustered;
    std::size_t hits = after.cache.hits - before.cache.hits;
    std::size_t pairs_new = after.pairs_tracked - before.pairs_tracked;
    // O(1) clustering work per append (0 here: the re-measured trace is
    // already in the cache), and exactly one fresh pair.
    identical = identical && clustered + hits <= 1 && pairs_new <= 1;

    append_cold_total += cold_ms;
    append_warm_total += warm_ms;
    if (n >= 20) evolution_speedup = cold_ms / warm_ms;
    append_table.begin_row();
    append_table.cell(study.name);
    append_table.cell(n + 1);
    append_table.cell(cold_ms, 1);
    append_table.cell(warm_ms, 1);
    append_table.cell(cold_ms / warm_ms, 1);
    append_table.cell(clustered);
    append_table.cell(hits);
    append_table.cell(pairs_new);
  }
  std::printf("%s\n", append_table.to_text().c_str());

  std::printf("aggregate: cold %.0f ms, warm append %.0f ms, speedup %.1fx\n",
              append_cold_total, append_warm_total,
              append_cold_total / append_warm_total);
  std::printf("evolution (20-frame) speedup: %.1fx (bar: >= 5x)\n",
              evolution_speedup);
  std::printf("append results bit-identical to cold batch: %s\n\n",
              identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg B: full append-by-append replay, cold vs session. -----------
  bench::print_section("append-by-append replay (scale drift included)");
  Table replay_table({"Study", "Frames", "Cold replay ms", "Session ms",
                      "Speedup", "Pairs new", "Pairs memo", "Scale inv"});
  double replay_cold_total = 0.0;
  double replay_session_total = 0.0;

  for (const sim::Study& study : sim::all_studies()) {
    const auto& traces = study.traces;
    const std::size_t n = traces.size();
    tracking::SessionConfig config;
    config.clustering = study.clustering;

    ResultDigest cold_final;
    Clock::time_point start = Clock::now();
    for (std::size_t k = 2; k <= n; ++k) {
      tracking::TrackingPipeline pipeline;
      pipeline.set_config(config);
      for (std::size_t i = 0; i < k; ++i)
        pipeline.add_experiment(traces[i]);
      tracking::TrackingResult result = pipeline.run();
      if (k == n) cold_final = ResultDigest(result);
    }
    double cold_ms = ms_since(start);

    ResultDigest session_final;
    start = Clock::now();
    tracking::TrackingSession session(config);
    session.append_experiment(traces[0]);
    for (std::size_t k = 2; k <= n; ++k) {
      session.append_experiment(traces[k - 1]);
      tracking::TrackingResult result = session.retrack();
      if (k == n) session_final = ResultDigest(result);
    }
    double session_ms = ms_since(start);

    identical = identical && cold_final == session_final;
    const tracking::SessionStats& stats = session.stats();
    identical = identical && stats.frames_clustered == n;

    replay_cold_total += cold_ms;
    replay_session_total += session_ms;
    replay_table.begin_row();
    replay_table.cell(study.name);
    replay_table.cell(n);
    replay_table.cell(cold_ms, 1);
    replay_table.cell(session_ms, 1);
    replay_table.cell(cold_ms / session_ms, 1);
    replay_table.cell(stats.pairs_tracked);
    replay_table.cell(stats.pairs_memoized);
    replay_table.cell(stats.scale_invalidations);
  }
  std::printf("%s\n", replay_table.to_text().c_str());
  std::printf("replay aggregate: cold %.0f ms, session %.0f ms, speedup "
              "%.1fx (informational — every append re-fits the scale)\n",
              replay_cold_total, replay_session_total,
              replay_cold_total / replay_session_total);
  std::printf("replay results bit-identical: %s\n\n",
              identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg C: the on-disk cache across processes. ----------------------
  bench::print_section("on-disk frame cache (gromacs 20-frame study)");
  sim::Study evolution = sim::study_gromacs_evolution();
  tracking::SessionConfig cached_config;
  cached_config.clustering = evolution.clustering;
  cached_config.cache.directory = cache_dir.string();

  Clock::time_point start = Clock::now();
  tracking::TrackingSession cold_session(cached_config);
  for (const auto& t : evolution.traces) cold_session.append_experiment(t);
  ResultDigest cache_cold(cold_session.retrack());
  double cache_cold_ms = ms_since(start);

  start = Clock::now();
  tracking::TrackingSession warm_session(cached_config);
  for (const auto& t : evolution.traces) warm_session.append_experiment(t);
  ResultDigest cache_warm(warm_session.retrack());
  double cache_warm_ms = ms_since(start);

  const tracking::SessionStats& warm_stats = warm_session.stats();
  bool cache_ok = cache_cold == cache_warm &&
                  warm_stats.frames_clustered == 0 &&
                  warm_stats.frames_from_cache == evolution.traces.size();
  std::printf("cold run (warms cache):   %.1f ms, %llu hits, %llu stores\n",
              cache_cold_ms,
              static_cast<unsigned long long>(cold_session.stats().cache.hits),
              static_cast<unsigned long long>(
                  cold_session.stats().cache.stores));
  std::printf("warm run (fresh session): %.1f ms, %llu cache hits, "
              "%llu clustered\n",
              cache_warm_ms,
              static_cast<unsigned long long>(warm_stats.cache.hits),
              static_cast<unsigned long long>(warm_stats.frames_clustered));
  std::printf("warm output identical: %s\n\n", cache_ok ? "yes" : "NO");
  fs::remove_all(cache_dir);

  // ---- Leg D: the alignment stage at production sequence lengths. ------
  // The per-frame MSA is the fixed cost every retrack pays before any
  // pair work. The simulator's ladders are short; production traces run
  // thousands of iterations, so the stage is timed on a 64-task,
  // ~1500-symbol SPMD workload: full DP vs the banded engine, which must
  // return the identical alignment (see bench/perf_alignment for the full
  // engine matrix).
  bench::print_section("alignment stage: full DP vs banded NW (>= 3x bar)");
  double align_full_ms = 0.0;
  double align_banded_ms = 0.0;
  bool align_identical = true;
  {
    Rng rng(23);
    std::vector<std::vector<align::Symbol>> tasks;
    for (std::size_t t = 0; t < 64; ++t) {
      std::vector<align::Symbol> seq;
      for (std::size_t it = 0; it < 128; ++it)
        for (std::size_t p = 0; p < 12; ++p)
          if (!rng.chance(0.02)) seq.push_back(static_cast<align::Symbol>(p));
      tasks.push_back(std::move(seq));
    }
    start = Clock::now();
    align::MultipleAlignment full =
        align::star_align(tasks, {}, align::AlignmentEngine::kFull);
    align_full_ms = ms_since(start);
    start = Clock::now();
    align::MultipleAlignment banded =
        align::star_align(tasks, {}, align::AlignmentEngine::kBanded);
    align_banded_ms = ms_since(start);
    align_identical =
        full.rows() == banded.rows() && full.consensus() == banded.consensus();
  }
  const double alignment_speedup = align_full_ms / align_banded_ms;
  std::printf("full DP : %8.1f ms\n", align_full_ms);
  std::printf("banded  : %8.1f ms (%.1fx, bar: >= 3x)\n", align_banded_ms,
              alignment_speedup);
  std::printf("alignments identical: %s\n\n",
              align_identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // Run report with the frame_cache_* counters (the same schema perftrack
  // --profile emits). The gauges let CI separate the equivalence gates
  // (verdict_*, must hold anywhere) from the timing bar (advisory_*,
  // flaky on shared runners): .github/scripts/check_bench.py hard-fails
  // on the former and only warns on the latter.
  PT_GAUGE("verdict_identical", identical ? 1.0 : 0.0);
  PT_GAUGE("verdict_cache_ok", cache_ok ? 1.0 : 0.0);
  PT_GAUGE("verdict_alignment_identity", align_identical ? 1.0 : 0.0);
  PT_GAUGE("advisory_evolution_speedup_ge5",
           evolution_speedup >= 5.0 ? 1.0 : 0.0);
  PT_GAUGE("evolution_speedup", evolution_speedup);
  PT_GAUGE("advisory_alignment_speedup", alignment_speedup);
  PT_GAUGE("advisory_alignment_speedup_ge3",
           alignment_speedup >= 3.0 ? 1.0 : 0.0);
  bench::write_telemetry("BENCH_session.json", "perf_session");

  bool ok = identical && cache_ok && align_identical &&
            evolution_speedup >= 5.0;
  std::printf("\nperf_session: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
