// Figure 4 — Correlations from the SPMD evaluator for WRF.
//
// (a) At 128 tasks every process executes the same cluster at the same
//     time: the timeline is a clean sequence of vertical stripes.
// (b) At 256 tasks some processes execute different clusters
//     simultaneously (the imbalance split): two cluster ids share columns,
//     which is exactly the evidence the evaluator turns into a merge.

#include <cstdio>

#include "bench_util.hpp"
#include "sim/studies.hpp"
#include "tracking/evaluator_spmd.hpp"
#include "tracking/frame_alignment.hpp"

using namespace perftrack;

namespace {

// Render the first `columns` alignment columns for `rows` sample tasks:
// every printed glyph is the cluster a task executes in that position.
void print_timeline(const tracking::FrameAlignment& alignment,
                    std::size_t rows, std::size_t columns) {
  const auto& msa = alignment.alignment();
  const std::string glyphs = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::size_t step = std::max<std::size_t>(1, msa.sequence_count() / rows);
  for (std::size_t s = 0; s < msa.sequence_count(); s += step) {
    std::printf("  task %4zu |", s);
    for (std::size_t c = 0; c < std::min(columns, msa.column_count()); ++c) {
      align::Symbol sym = msa.row(s)[c];
      std::printf("%c", sym == align::kGap
                            ? ' '
                            : glyphs[static_cast<std::size_t>(sym) %
                                     glyphs.size()]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::print_title("Figure 4", "SPMD simultaneity timelines for WRF");
  bench::print_paper(
      "at 128 tasks all processes execute the same phase simultaneously; "
      "at 256 tasks the split region shows two clusters sharing columns");

  sim::Study study = sim::study_wrf();
  auto frames = study.frames();

  for (std::size_t f = 0; f < frames.size(); ++f) {
    tracking::FrameAlignment alignment(frames[f]);
    bench::print_section(frames[f].label() +
                         " (one glyph per cluster, beginning of run)");
    print_timeline(alignment, 16, 48);

    tracking::CorrelationMatrix spmd =
        tracking::evaluate_spmd(frames[f], alignment, 0.05);
    int simultaneous = 0;
    for (std::size_t i = 0; i < spmd.rows(); ++i)
      for (std::size_t j = i + 1; j < spmd.cols(); ++j)
        if (spmd.at(i, j) >= 0.5) {
          std::printf(
              "  clusters %zu and %zu execute simultaneously in %.0f%% of "
              "their columns\n",
              i + 1, j + 1, spmd.at(i, j) * 100.0);
          ++simultaneous;
        }
    if (simultaneous == 0)
      std::printf("  no simultaneous cluster pairs (clean SPMD stripes)\n");
    std::printf("\n");
  }
  std::printf("(paper: the 256-task case exposes the same code region as "
              "two simultaneous clusters)\n");
  return 0;
}
