// Robustness — the headline reproduction is not a lucky draw.
//
// Two sweeps over the Table 2 pipeline:
//   1. seed sweep: every study re-simulated with shifted seeds (a fresh
//      synthetic "measurement run") — tracked counts and coverage must
//      hold across runs;
//   2. noise sweep: WRF with the per-burst measurement noise scaled up to
//      8x — how much variability can the four heuristics absorb before
//      clusters smear together and tracking degrades?

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Robustness", "seed and noise sensitivity of Table 2");
  bench::print_paper(
      "the algorithm discriminates ~90% of the objects on average; a "
      "credible reproduction must hold across measurement runs");

  bench::print_section("seed sweep: tracked regions per study and run");
  {
    Table table({"Study", "run 1", "run 2", "run 3", "coverage 1", "2", "3"});
    const std::uint64_t offsets[] = {0, 77777, 1234567};
    std::vector<std::vector<std::size_t>> tracked;
    std::vector<std::vector<double>> coverage;
    std::vector<std::string> names;
    for (std::size_t r = 0; r < 3; ++r) {
      sim::StudyOptions options;
      options.seed_offset = offsets[r];
      std::size_t row = 0;
      for (const sim::Study& study : sim::all_studies(options)) {
        if (r == 0) {
          names.push_back(study.name);
          tracked.emplace_back();
          coverage.emplace_back();
        }
        tracking::TrackingResult result =
            tracking::track_frames(study.frames(), {});
        tracked[row].push_back(result.complete_count);
        coverage[row].push_back(result.coverage);
        ++row;
      }
    }
    for (std::size_t row = 0; row < names.size(); ++row) {
      table.begin_row();
      table.cell(names[row]);
      for (std::size_t r = 0; r < 3; ++r) table.cell(tracked[row][r]);
      for (std::size_t r = 0; r < 3; ++r)
        table.cell(coverage[row][r] * 100.0, 0);
    }
    std::printf("%s\n", table.to_text().c_str());
  }

  bench::print_section("noise sweep: WRF with scaled measurement noise");
  {
    Table table({"noise scale", "objects (128)", "objects (256)", "tracked",
                 "coverage %"});
    for (double scale : {1.0, 2.0, 4.0, 8.0}) {
      sim::StudyOptions options;
      options.noise_scale = scale;
      sim::Study study = sim::study_wrf(options);
      auto frames = study.frames();
      tracking::TrackingResult result = tracking::track_frames(frames, {});
      table.begin_row();
      table.cell(scale, 1);
      table.cell(result.frames[0].object_count());
      table.cell(result.frames[1].object_count());
      table.cell(result.complete_count);
      table.cell(result.coverage * 100.0, 0);
    }
    std::printf("%s\n", table.to_text().c_str());
    std::printf(
        "(tracking holds while clusters remain separable; at high noise "
        "neighbouring clusters merge in the clustering stage itself, "
        "which is a property of the object-recognition step, not of the "
        "tracking heuristics)\n");
  }
  return 0;
}
