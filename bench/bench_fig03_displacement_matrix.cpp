// Figure 3 — Correlations from the displacements evaluator between
// WRF-128 (rows) and WRF-256 (columns).
//
// The paper's matrix is near-diagonal with 100% cells for stable regions
// and one row (region 4) distributing ~34%/65% over two columns — the
// imbalance split. Cells under the 5% outlier threshold are dropped.

#include <cstdio>

#include "bench_util.hpp"
#include "sim/studies.hpp"
#include "tracking/evaluator_displacement.hpp"
#include "tracking/scale.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 3",
                     "displacement-evaluator correlation matrix for WRF");
  bench::print_paper(
      "mostly univocal 100% rows; region 4 distributes 34%/65% over the "
      "two halves of its split; occurrences below 5% neglected");

  sim::Study study = sim::study_wrf();
  auto frames = study.frames();
  tracking::ScaleNormalization scale =
      tracking::ScaleNormalization::fit(frames, {true, false});

  tracking::DisplacementResult displacement =
      tracking::evaluate_displacement(frames[0], frames[1], scale, 0.05);

  bench::print_section("A (WRF-128) -> B (WRF-256)");
  std::printf("%s\n", displacement.a_to_b.to_text("A", "B").c_str());
  bench::print_section("B (WRF-256) -> A (WRF-128), reciprocal search");
  std::printf("%s\n", displacement.b_to_a.to_text("B", "A").c_str());

  // Report the split row explicitly.
  for (std::size_t i = 0; i < displacement.a_to_b.rows(); ++i) {
    int nonzero = 0;
    for (std::size_t j = 0; j < displacement.a_to_b.cols(); ++j)
      if (displacement.a_to_b.at(i, j) > 0.0) ++nonzero;
    if (nonzero > 1) {
      std::printf("row A%zu distributes over %d columns:", i + 1, nonzero);
      for (std::size_t j = 0; j < displacement.a_to_b.cols(); ++j)
        if (displacement.a_to_b.at(i, j) > 0.0)
          std::printf(" B%zu=%.0f%%", j + 1,
                      displacement.a_to_b.at(i, j) * 100.0);
      std::printf("  (paper: region 4 -> 34%% / 65%%)\n");
    }
  }
  return 0;
}
