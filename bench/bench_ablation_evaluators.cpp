// Ablation — contribution of each tracking heuristic (DESIGN.md §5).
//
// The paper combines four evaluators because no single one suffices: the
// displacement evaluator mis-assigns long movers, SPMD alone cannot link
// frames, the call stack cannot discriminate regions sharing code, and the
// sequence needs pivots from the others. This bench re-runs representative
// studies with evaluators disabled and reports tracked regions/coverage.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

namespace {

struct Variant {
  const char* name;
  bool displacement, spmd, callstack, sequence;
};

}  // namespace

int main() {
  bench::print_title("Ablation", "evaluator contributions to tracking");
  bench::print_paper(
      "the full combination discriminates ~90% of the objects on average; "
      "each heuristic covers failures of the others (§3)");

  const Variant variants[] = {
      {"full combination", true, true, true, true},
      {"displacement only", true, false, false, false},
      {"no SPMD merge", true, false, true, true},
      {"no callstack prune", true, true, false, true},
      {"no sequence refine", true, true, true, false},
  };

  const struct {
    const char* name;
    sim::Study study;
  } studies[] = {
      {"WRF", sim::study_wrf()},
      {"CGPOP", sim::study_cgpop()},
      {"NAS BT", sim::study_nas_bt()},
      {"QuantumESPRESSO", sim::study_espresso()},
  };

  Table table({"Study", "Variant", "Tracked", "Coverage %", "Wide relations"});
  for (const auto& entry : studies) {
    auto frames = entry.study.frames();
    for (const Variant& variant : variants) {
      tracking::TrackingParams params;
      params.use_displacement = variant.displacement;
      params.use_spmd = variant.spmd;
      params.use_callstack = variant.callstack;
      params.use_sequence = variant.sequence;
      tracking::TrackingResult result =
          tracking::track_frames(frames, params);
      std::size_t wide = 0;
      for (const auto& pair : result.pairs)
        for (const auto& rel : pair.relations)
          if (!rel.univocal()) ++wide;
      table.begin_row();
      table.cell(entry.name);
      table.cell(variant.name);
      table.cell(result.complete_count);
      table.cell(result.coverage * 100.0, 0);
      table.cell(wide);
    }
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}
