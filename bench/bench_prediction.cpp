// Extension — predictive models from tracked trends (paper §6 future work).
//
// Fit each tracked region's per-frame metric series against the scenario
// parameter and predict a held-out experiment:
//   * NAS BT: fit classes W, A, B -> predict class C, compare with the
//     actual class-C run.
//   * Strong scaling: fit Gromacs at 32/64 tasks -> predict 128 tasks.

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/prediction.hpp"
#include "tracking/tracker.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

namespace {

void report(const char* title, const tracking::TrackingResult& result,
            std::span<const double> x, double x_future,
            trace::Metric metric,
            const tracking::TrackingResult& with_heldout) {
  bench::print_section(title);
  auto forecasts =
      tracking::forecast_regions(result, x, metric, x_future);
  for (const auto& forecast : forecasts) {
    // The "with_heldout" tracking includes the held-out frame last; its
    // region numbering matches because the frames are a superset.
    auto actual_series = tracking::region_metric_mean(
        with_heldout, forecast.region_id, metric);
    double actual = actual_series.back();
    double error = actual != 0.0
                       ? (forecast.predicted - actual) / actual
                       : 0.0;
    std::printf("  Region %d: %s\n", forecast.region_id + 1,
                forecast.model.describe().c_str());
    std::printf("            predicted %-10s actual %-10s error %s\n",
                format_si(forecast.predicted, 3).c_str(),
                format_si(actual, 3).c_str(),
                format_percent(error).c_str());
  }
}

}  // namespace

int main() {
  bench::print_title("Extension",
                     "performance prediction beyond the sample space");
  bench::print_paper(
      "§6 future work: use tracked trends as a model to predict the "
      "outcome of future experiments");

  {
    // NAS BT: fit on W, A, B (scales 1, 4, 16), predict C (scale 64).
    sim::Study study = sim::study_nas_bt();
    auto all_frames = study.frames();
    std::vector<cluster::Frame> fit_frames(all_frames.begin(),
                                           all_frames.end() - 1);
    tracking::TrackingResult fitted =
        tracking::track_frames(std::move(fit_frames), {});
    tracking::TrackingResult full =
        tracking::track_frames(all_frames, {});
    std::vector<double> scales{1.0, 4.0, 16.0};
    report("NAS BT: instructions per burst, classes W/A/B -> C", fitted,
           scales, 64.0, trace::Metric::Instructions, full);
    report("NAS BT: L2 misses per Ki, classes W/A/B -> C", fitted, scales,
           64.0, trace::Metric::L2MissesPerKi, full);
  }

  {
    // Gromacs strong scaling: fit 32 and 64 tasks, predict 128.
    sim::Study study = sim::study_gromacs_scaling();
    auto all_frames = study.frames();
    std::vector<cluster::Frame> fit_frames(all_frames.begin(),
                                           all_frames.end() - 1);
    tracking::TrackingResult fitted =
        tracking::track_frames(std::move(fit_frames), {});
    tracking::TrackingResult full = tracking::track_frames(all_frames, {});
    std::vector<double> tasks{32.0, 64.0};
    report("Gromacs: instructions per burst, 32/64 -> 128 tasks", fitted,
           tasks, 128.0, trace::Metric::Instructions, full);
  }

  std::printf(
      "\n(power-law fits recover the scaling laws; extrapolation error "
      "stays in single digits except where a capacity cliff lies beyond "
      "the sample space — exactly the caveat a predictive tool must "
      "surface)\n");
  return 0;
}
