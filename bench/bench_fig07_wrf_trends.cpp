// Figure 7 — Performance trends for WRF code regions.
//
// (a) IPC evolution from 128 to 256 tasks for the regions with variations
//     above 3%: two regions decline ~20%, three improve ~5%.
// (b) Total instructions per region: constant under perfect strong scaling,
//     with a ~5% increase for region 1 (code replication).

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 7", "performance trends for WRF code regions");
  bench::print_paper(
      "(a) IPC: regions 11 and 12 decline ~20%, regions 4, 6, 7 improve "
      "~5% (only variations above 3% shown); (b) total instructions stay "
      "constant except ~+5% replication in region 1");

  sim::Study study = sim::study_wrf();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::vector<std::string> labels;
  for (const auto& f : result.frames) labels.push_back(f.label());

  bench::print_section("(a) IPC evolution, regions with variation > 3%");
  std::vector<tracking::TrendSeries> ipc_series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto series =
        tracking::region_metric_mean(result, region.id, trace::Metric::Ipc);
    if (tracking::max_relative_variation(series) <= 0.03) continue;
    ipc_series.push_back({"R" + std::to_string(region.id + 1), series});
    std::printf("  Region %-2d IPC %.3f -> %.3f  (%s)\n", region.id + 1,
                series.front(), series.back(),
                format_percent(series.back() / series.front() - 1.0).c_str());
  }
  tracking::TrendChartOptions chart;
  chart.y_label = "IPC";
  std::printf("\n%s\n",
              tracking::trend_chart(ipc_series, labels, chart).c_str());

  bench::print_section("(b) total instructions per region (top regions)");
  int shown = 0;
  for (const auto& region : result.regions) {
    if (!region.complete || shown >= 6) continue;
    auto totals = tracking::region_counter_total(
        result, region.id, trace::Counter::Instructions);
    std::printf("  Region %-2d total instructions %s -> %s  (%s)\n",
                region.id + 1, format_si(totals.front()).c_str(),
                format_si(totals.back()).c_str(),
                format_percent(totals.back() / totals.front() - 1.0).c_str());
    ++shown;
  }
  std::printf("\n(paper: flat lines; region 1 trends up ~5%%)\n");
  return 0;
}
