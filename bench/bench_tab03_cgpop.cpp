// Table 3 — CGPOP performance results.
//
// Per tracked region and experiment: average IPC, average instructions per
// burst, and total elapsed region time per task. The paper's headline: the
// vendor compilers cut ~30-36% of the instructions at a proportionally
// lower IPC, so region durations change by well under 1%; MinoTauro is
// ~2.5x faster than MareNostrum on both regions.

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Table 3", "CGPOP per-region performance");
  bench::print_paper(
      "Region 1: IPC 0.25/0.16/0.42/0.30, instructions 6.8M/4.3M/5M/3.5M, "
      "duration 12.09s/12.11s/4.82s/4.68s across MN-gfortran/MN-xlf/"
      "MT-gfortran/MT-ifort; Region 2 analogous; duration varies < 0.1%");

  sim::Study study = sim::study_cgpop();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::vector<std::string> headers{"", ""};
  for (const auto& f : result.frames) headers.push_back(f.label());
  Table table(headers);

  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    auto instr = tracking::region_metric_mean(result, region.id,
                                              trace::Metric::Instructions);
    auto duration = tracking::region_duration_total(result, region.id);

    std::string name = "Region " + std::to_string(region.id + 1);
    table.begin_row();
    table.cell(name);
    table.cell("IPC");
    for (double v : ipc) table.cell(v, 2);
    table.begin_row();
    table.cell("");
    table.cell("Instructions");
    for (double v : instr) table.cell(format_si(v));
    table.begin_row();
    table.cell("");
    table.cell("Duration/task");
    for (std::size_t f = 0; f < duration.size(); ++f)
      table.cell(format_double(duration[f] /
                                   result.frames[f].num_tasks(), 2) + "s");
  }
  std::printf("%s\n", table.to_text().c_str());

  bench::print_section("compiler impact (vendor vs generic, same platform)");
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    auto instr = tracking::region_metric_mean(result, region.id,
                                              trace::Metric::Instructions);
    auto duration = tracking::region_duration_total(result, region.id);
    auto delta = [](double a, double b) {
      return format_percent(b / a - 1.0);
    };
    std::printf(
        "  Region %d MareNostrum xlf vs gfortran: instructions %s, IPC %s, "
        "duration %s\n",
        region.id + 1, delta(instr[0], instr[1]).c_str(),
        delta(ipc[0], ipc[1]).c_str(),
        delta(duration[0], duration[1]).c_str());
    std::printf(
        "  Region %d MinoTauro ifort vs gfortran:  instructions %s, IPC %s, "
        "duration %s\n",
        region.id + 1, delta(instr[2], instr[3]).c_str(),
        delta(ipc[2], ipc[3]).c_str(),
        delta(duration[2], duration[3]).c_str());
  }
  std::printf(
      "\n(paper: -36%%/-30%% instructions, -36%%/-28%% IPC, duration "
      "within +/-0.03%%)\n");
  return 0;
}
