// Figure 5 — Correlations from the execution-sequence evaluator.
//
// The two experiments' consensus execution sequences are aligned with the
// already-established correspondences as pivots; positions aligned between
// the pivots reveal the remaining correspondences (paper: "if region 1 in
// the first experiment becomes region 2 in the second, we can infer from
// the sequences that regions 2 and 3 correspond to 3 and 4").

#include <cstdio>

#include "bench_util.hpp"
#include "sim/studies.hpp"
#include "tracking/combiner.hpp"
#include "tracking/evaluator_sequence.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 5", "execution-sequence pivot alignment (WRF)");
  bench::print_paper(
      "pivot-anchored alignment of the two experiments' execution "
      "sequences resolves the correspondences between the pivots");

  sim::Study study = sim::study_wrf();
  auto frames = study.frames();
  tracking::FrameAlignment align_a(frames[0]);
  tracking::FrameAlignment align_b(frames[1]);
  tracking::ScaleNormalization scale =
      tracking::ScaleNormalization::fit(frames, {true, false});

  // Use only the displacement+callstack relations as pivots, then show what
  // the sequence alignment adds on top.
  tracking::TrackingParams params;
  params.use_sequence = false;
  tracking::PairTracking partial = tracking::track_pair(
      frames[0], align_a, frames[1], align_b, scale, params);

  bench::print_section("consensus execution sequences (one iteration)");
  auto print_seq = [&](const char* name,
                       const std::vector<align::Symbol>& seq,
                       std::size_t count) {
    std::printf("  %s:", name);
    for (std::size_t i = 0; i < std::min(count, seq.size()); ++i)
      std::printf(" %d", seq[i] + 1);
    std::printf(" ...\n");
  };
  std::size_t phases = frames[0].object_count();
  print_seq("WRF-128", align_a.consensus(), phases);
  print_seq("WRF-256", align_b.consensus(), phases + 1);

  bench::print_section("pivots (univocal relations before refinement)");
  tracking::RelationSet pivots;
  for (const tracking::Relation& rel : partial.relations)
    if (rel.univocal()) {
      pivots.relations.push_back(rel);
      std::printf("  %s\n", rel.describe().c_str());
    }

  bench::print_section("sequence-evaluator correlations");
  tracking::CorrelationMatrix seq = tracking::evaluate_sequence(
      frames[0], align_a, frames[1], align_b, pivots, 0.05);
  std::printf("%s\n", seq.to_text("A", "B").c_str());

  // Count correspondences the sequence evidence supports beyond pivots.
  int inferred = 0;
  for (std::size_t i = 0; i < seq.rows(); ++i)
    for (std::size_t j = 0; j < seq.cols(); ++j)
      if (seq.at(i, j) >= 0.5 &&
          !pivots.related(static_cast<tracking::ObjectId>(i),
                          static_cast<tracking::ObjectId>(j)))
        ++inferred;
  std::printf("correspondences inferred beyond the pivots: %d\n", inferred);
  return 0;
}
