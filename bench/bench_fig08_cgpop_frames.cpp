// Figure 8 — Sequence of input images for CGPOP.
//
// Four experiments: {MareNostrum, MinoTauro} x {generic, vendor compiler}.
// Two main instruction trends in all frames, divided into IPC sub-regions;
// the vendor compilers shift everything to fewer instructions AND lower
// IPC; MinoTauro splits the halo region into two behaviours.

#include <cstdio>

#include "bench_util.hpp"
#include "cluster/scatter.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 8", "CGPOP input frames");
  bench::print_paper(
      "xlf reduces instructions 36%/33% vs gfortran at proportionally "
      "lower IPC; MinoTauro executes fewer instructions at higher IPC; "
      "the halo region splits into two behaviours on MinoTauro");

  sim::Study study = sim::study_cgpop();
  auto frames = study.frames();

  cluster::ScatterOptions options;
  options.x_axis = 1;
  options.y_axis = 0;
  options.log_y = true;
  options.height = 14;

  for (const auto& frame : frames) {
    std::printf("%s\n", cluster::ascii_scatter(frame, options).c_str());
    for (const auto& object : frame.objects()) {
      std::printf("  cluster %d: %5zu bursts, instructions %s, IPC %.3f\n",
                  object.id + 1, object.size(),
                  format_si(object.centroid[0]).c_str(), object.centroid[1]);
    }
    std::printf("\n");
  }
  return 0;
}
