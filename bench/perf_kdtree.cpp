// Microbenchmark — kd-tree build and query vs brute force.
//
// The kd-tree backs DBSCAN's neighbourhood expansion and the displacement
// evaluator's nearest-neighbour cross-classification; this quantifies the
// win over linear scans at the point counts the studies produce.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "geom/kdtree.hpp"

using namespace perftrack;

namespace {

geom::PointSet random_points(std::size_t n, std::size_t dims,
                             std::uint64_t seed) {
  Rng rng(seed);
  geom::PointSet points(dims);
  points.reserve(n);
  std::vector<double> coords(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& c : coords) c = rng.uniform(0.0, 1.0);
    points.add(coords);
  }
  return points;
}

void BM_KdTreeBuild(benchmark::State& state) {
  auto points = random_points(static_cast<std::size_t>(state.range(0)), 2, 7);
  for (auto _ : state) {
    geom::KdTree tree(points);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(60000);

void BM_KdTreeNearest(benchmark::State& state) {
  auto points = random_points(static_cast<std::size_t>(state.range(0)), 2, 7);
  auto queries = random_points(1000, 2, 13);
  geom::KdTree tree(points);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.nearest(queries[q % queries.size()]));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(10000)->Arg(60000);

void BM_BruteForceNearest(benchmark::State& state) {
  auto points = random_points(static_cast<std::size_t>(state.range(0)), 2, 7);
  auto queries = random_points(1000, 2, 13);
  std::size_t q = 0;
  for (auto _ : state) {
    auto query = queries[q % queries.size()];
    std::size_t best = 0;
    double best_sq = 1e300;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double d2 = geom::squared_distance(query, points[i]);
      if (d2 < best_sq) {
        best_sq = d2;
        best = i;
      }
    }
    benchmark::DoNotOptimize(best);
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForceNearest)->Arg(1000)->Arg(10000)->Arg(60000);

void BM_KdTreeRadius(benchmark::State& state) {
  auto points = random_points(static_cast<std::size_t>(state.range(0)), 2, 7);
  geom::KdTree tree(points);
  std::vector<std::size_t> out;
  std::size_t q = 0;
  for (auto _ : state) {
    tree.radius_query(points[q % points.size()], 0.025, out);
    benchmark::DoNotOptimize(out.size());
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeRadius)->Arg(10000)->Arg(60000);

}  // namespace

BENCHMARK_MAIN();
