// Figure 9 — Sequence of output images from the tracking algorithm for
// NAS BT (classes W, A, B, C), tracked regions renamed.
//
// Instructions grow two orders of magnitude from W to C; the six main
// regions stay identifiable in every frame.

#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "sim/studies.hpp"
#include "tracking/report.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Figure 9", "NAS BT tracked frames, classes W..C");
  bench::print_paper(
      "six regions in every class; the instruction range grows two orders "
      "of magnitude from the bottom of class W to the top of class C");

  sim::Study study = sim::study_nas_bt();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});

  std::printf("%s", tracking::tracked_scatters(result, 64, 14).c_str());

  // Dynamic range check.
  double lo = 1e300, hi = 0.0;
  for (const auto& frame : result.frames) {
    for (std::size_t row = 0; row < frame.projection().size(); ++row) {
      if (frame.labels()[row] == cluster::kNoise) continue;
      double v = frame.projection().points[row][0];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  std::printf(
      "instruction range over the sequence: %s .. %s (%.0fx; paper: two "
      "orders of magnitude)\n",
      format_si(lo).c_str(), format_si(hi).c_str(), hi / lo);
  std::printf("tracked regions: %zu, coverage %.0f%%\n",
              result.complete_count, result.coverage * 100.0);
  return 0;
}
