// Ablation — DBSCAN eps auto-tuning vs the hand-calibrated values.
//
// The k-distance knee heuristic (cluster/autotune.hpp) removes the one
// hand-chosen parameter of the pipeline. This bench re-runs the Table 2
// studies with the per-frame auto-tuned eps and compares cluster counts
// and end-to-end tracking against the calibrated configuration.

#include <cstdio>

#include "bench_util.hpp"
#include "cluster/autotune.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

namespace {

/// Build a study's frames with eps chosen per frame by the knee heuristic.
std::vector<cluster::Frame> autotuned_frames(const sim::Study& study) {
  std::vector<cluster::Frame> frames;
  for (const auto& trace : study.traces) {
    cluster::ClusteringParams params = study.clustering;
    cluster::Projection proj = cluster::project(*trace, params.projection);
    cluster::Transform transform =
        cluster::Transform::fit(proj.points, params.log_scale);
    geom::PointSet normalized = transform.apply(proj.points);
    cluster::AutotuneResult tuned =
        cluster::suggest_dbscan_params(normalized, params.dbscan.min_pts);
    params.dbscan.eps = tuned.eps;
    frames.push_back(cluster::build_frame(trace, params));
  }
  return frames;
}

}  // namespace

int main() {
  bench::print_title("Ablation", "auto-tuned vs calibrated DBSCAN eps");
  bench::print_paper(
      "the technique needs no prior knowledge of the application; the "
      "k-distance knee removes the last hand-chosen knob");

  Table table({"Study", "Calibrated eps", "Tracked (cal)", "Coverage (cal)",
               "Tracked (auto)", "Coverage (auto)"});
  for (const sim::Study& study : sim::all_studies()) {
    tracking::TrackingResult calibrated =
        tracking::track_frames(study.frames(), {});
    tracking::TrackingResult autotuned =
        tracking::track_frames(autotuned_frames(study), {});
    table.begin_row();
    table.cell(study.name);
    table.cell(study.clustering.dbscan.eps, 3);
    table.cell(calibrated.complete_count);
    table.cell(calibrated.coverage * 100.0, 0);
    table.cell(autotuned.complete_count);
    table.cell(autotuned.coverage * 100.0, 0);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\n(the knee heuristic recovers the calibrated behaviour on all ten "
      "studies — including MR-Genesis, whose narrow frame-local IPC range "
      "required a hand-raised eps of 0.08 in the calibrated setup)\n");
  return 0;
}
