// Microbenchmark — sequence alignment (pairwise NW and centre-star MSA)
// at the sequence lengths and task counts the SPMD evaluator sees.

#include <benchmark/benchmark.h>

#include "align/msa.hpp"
#include "common/rng.hpp"

using namespace perftrack;

namespace {

std::vector<align::Symbol> spmd_like_sequence(std::size_t phases,
                                              std::size_t iterations,
                                              Rng& rng) {
  // SPMD sequences are near-identical phase ladders with occasional drops.
  std::vector<align::Symbol> seq;
  seq.reserve(phases * iterations);
  for (std::size_t it = 0; it < iterations; ++it)
    for (std::size_t p = 0; p < phases; ++p)
      if (!rng.chance(0.02)) seq.push_back(static_cast<align::Symbol>(p));
  return seq;
}

void BM_NeedlemanWunsch(benchmark::State& state) {
  Rng rng(11);
  auto a = spmd_like_sequence(12, static_cast<std::size_t>(state.range(0)),
                              rng);
  auto b = spmd_like_sequence(12, static_cast<std::size_t>(state.range(0)),
                              rng);
  for (auto _ : state) {
    auto result = align::needleman_wunsch(a, b);
    benchmark::DoNotOptimize(result.score);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() * b.size()));
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(6)->Arg(12)->Arg(24);

void BM_StarAlign(benchmark::State& state) {
  Rng rng(13);
  std::vector<std::vector<align::Symbol>> seqs;
  for (std::int64_t t = 0; t < state.range(0); ++t)
    seqs.push_back(spmd_like_sequence(12, 12, rng));
  for (auto _ : state) {
    auto msa = align::star_align(seqs);
    benchmark::DoNotOptimize(msa.column_count());
  }
}
BENCHMARK(BM_StarAlign)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
