// perf_alignment — the alignment engine: full DP vs banded NW vs
// parallel star-align, identity-gated.
//
// After the displacement evaluator moved to the grid engine, the per-frame
// multiple sequence alignment became the next fixed cost of every track
// and retrack. This harness proves the rebuilt engine interchangeable on
// the ten Table 2 case studies — the banded Needleman–Wunsch must return
// the same alignment (traceback and tie-breaking included) as the full
// dynamic program, the pooled star-align must be byte-identical to the
// serial one, and the whole track_frames output must not move — and then
// times the engines at the sequence lengths real traces produce (the
// simulator's ladders are short; production traces run thousands of
// iterations, so a scaled leg reports the regime the band targets).
//
// Gauges exported to BENCH_alignment.json:
//   verdict_alignment_identity      1 iff every equivalence check held
//   advisory_alignment_speedup      full ms / banded ms (long sequences)
//   advisory_alignment_speedup_ge3  the >= 3x bar (warn-only in CI)
//   alignment_{full,banded,parallel}_ms raw star-align sweep times
//   alignment_study_speedup         full/banded on the bare study ladders

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "align/msa.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/studies.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/session.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool same_msa(const align::MultipleAlignment& x,
              const align::MultipleAlignment& y) {
  return x.rows() == y.rows() && x.consensus() == y.consensus();
}

/// Star-align every frame of every workload with one engine/pool choice.
struct SweepOutcome {
  double ms = 0.0;
  std::vector<align::MultipleAlignment> msas;
};

SweepOutcome sweep(
    const std::vector<std::vector<std::vector<align::Symbol>>>& workloads,
    align::AlignmentEngine engine, ThreadPool* pool) {
  SweepOutcome out;
  out.msas.reserve(workloads.size());
  const Clock::time_point start = Clock::now();
  for (const auto& sequences : workloads)
    out.msas.push_back(align::star_align(sequences, {}, engine, pool));
  out.ms = ms_since(start);
  return out;
}

/// Everything the tracked output exposes, for bitwise comparison.
struct ResultDigest {
  std::string description;
  std::string trends;
  std::vector<std::vector<std::int32_t>> renaming;

  explicit ResultDigest(const tracking::TrackingResult& result)
      : description(tracking::describe_tracking(result)),
        trends(tracking::trends_csv(result)),
        renaming(result.renaming) {}

  bool operator==(const ResultDigest&) const = default;
};

/// Production-length SPMD ladder: `phases` distinct symbols repeated for
/// `iterations`, with rare per-task drops — the shape real traces feed the
/// evaluator, at lengths where the O(n·m) full DP dominates a retrack.
std::vector<align::Symbol> spmd_like_sequence(std::size_t phases,
                                              std::size_t iterations,
                                              Rng& rng) {
  std::vector<align::Symbol> seq;
  seq.reserve(phases * iterations);
  for (std::size_t it = 0; it < iterations; ++it)
    for (std::size_t p = 0; p < phases; ++p)
      if (!rng.chance(0.02)) seq.push_back(static_cast<align::Symbol>(p));
  return seq;
}

}  // namespace

int main() {
  bench::enable_telemetry();
  bench::print_title("perf_alignment",
                     "alignment engine: full DP vs banded NW vs parallel "
                     "star-align (identity-gated)");
  bench::print_paper(
      "not in the paper — engineering comparison of the pairwise DP "
      "engines and the pooled star alignment over the ten case studies "
      "(byte-identical alignments required)");

  // ---- Leg A: star-align equivalence over every study frame. -----------
  bench::print_section("star_align over every frame of the ten studies");
  std::vector<std::vector<std::vector<align::Symbol>>> study_frames;
  std::size_t frame_count = 0;
  for (const sim::Study& study : sim::all_studies())
    for (const cluster::Frame& frame : study.frames()) {
      study_frames.push_back(frame.task_sequences());
      ++frame_count;
    }

  ThreadPool pool(4);
  SweepOutcome study_full, study_banded, study_parallel;
  {
    PT_SPAN("alignment_study_full");
    study_full = sweep(study_frames, align::AlignmentEngine::kFull, nullptr);
  }
  {
    PT_SPAN("alignment_study_banded");
    study_banded =
        sweep(study_frames, align::AlignmentEngine::kBanded, nullptr);
  }
  {
    PT_SPAN("alignment_study_parallel");
    study_parallel =
        sweep(study_frames, align::AlignmentEngine::kBanded, &pool);
  }

  bool study_identical = true;
  for (std::size_t f = 0; f < study_frames.size(); ++f)
    study_identical = study_identical &&
                      same_msa(study_full.msas[f], study_banded.msas[f]) &&
                      same_msa(study_full.msas[f], study_parallel.msas[f]);
  const double study_speedup = study_full.ms / study_banded.ms;

  std::printf("frames aligned     : %zu\n", frame_count);
  std::printf("full DP            : %10.1f ms\n", study_full.ms);
  std::printf("banded             : %10.1f ms (%.1fx)\n", study_banded.ms,
              study_speedup);
  std::printf("banded + 4 threads : %10.1f ms\n", study_parallel.ms);
  std::printf("alignments identical: %s\n\n",
              study_identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg B: full tracking identity across engines and threads. -------
  // Covers the evaluator_sequence path too: its pivot-scored DP runs under
  // the same engine knob inside every track_pair.
  bench::print_section(
      "track_frames identity (full vs banded, 1 vs 4 threads)");
  Table table({"Study", "Frames", "Full ms", "Banded ms", "Banded 4t ms",
               "Identical"});
  bool tracking_identical = true;
  double full_track_ms = 0.0, banded_track_ms = 0.0, banded_mt_track_ms = 0.0;
  for (const sim::Study& study : sim::all_studies()) {
    std::vector<cluster::Frame> frames = study.frames();
    tracking::TrackingParams params;
    params.threads = 1;
    params.alignment_engine = align::AlignmentEngine::kFull;
    Clock::time_point start = Clock::now();
    ResultDigest full_digest(tracking::track_frames(frames, params));
    const double full_ms = ms_since(start);

    params.alignment_engine = align::AlignmentEngine::kBanded;
    start = Clock::now();
    ResultDigest banded_digest(tracking::track_frames(frames, params));
    const double banded_ms = ms_since(start);

    params.threads = 4;
    start = Clock::now();
    ResultDigest banded_mt_digest(tracking::track_frames(frames, params));
    const double banded_mt_ms = ms_since(start);

    const bool same =
        full_digest == banded_digest && full_digest == banded_mt_digest;
    tracking_identical = tracking_identical && same;
    full_track_ms += full_ms;
    banded_track_ms += banded_ms;
    banded_mt_track_ms += banded_mt_ms;
    table.begin_row();
    table.cell(study.name);
    table.cell(study.frames().size());
    table.cell(full_ms, 1);
    table.cell(banded_ms, 1);
    table.cell(banded_mt_ms, 1);
    table.cell(std::string(same ? "yes" : "NO"));
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("tracking aggregate: full %.0f ms, banded %.0f ms, "
              "banded 4t %.0f ms\n",
              full_track_ms, banded_track_ms, banded_mt_track_ms);
  std::printf("tracking byte-identical across engines and threads: %s\n\n",
              tracking_identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg C: production-length sequences (where the band pays off). ---
  bench::print_section("long SPMD ladders (64 tasks, ~1500 symbols)");
  std::vector<std::vector<std::vector<align::Symbol>>> long_workloads;
  {
    Rng rng(17);
    for (std::size_t w = 0; w < 4; ++w) {
      std::vector<std::vector<align::Symbol>> tasks;
      for (std::size_t t = 0; t < 64; ++t)
        tasks.push_back(spmd_like_sequence(12, 128, rng));
      long_workloads.push_back(std::move(tasks));
    }
  }
  SweepOutcome long_full, long_banded, long_parallel;
  {
    PT_SPAN("alignment_long_full");
    long_full = sweep(long_workloads, align::AlignmentEngine::kFull, nullptr);
  }
  {
    PT_SPAN("alignment_long_banded");
    long_banded =
        sweep(long_workloads, align::AlignmentEngine::kBanded, nullptr);
  }
  {
    PT_SPAN("alignment_long_parallel");
    long_parallel =
        sweep(long_workloads, align::AlignmentEngine::kBanded, &pool);
  }
  bool long_identical = true;
  for (std::size_t w = 0; w < long_workloads.size(); ++w)
    long_identical = long_identical &&
                     same_msa(long_full.msas[w], long_banded.msas[w]) &&
                     same_msa(long_full.msas[w], long_parallel.msas[w]);
  const double long_speedup = long_full.ms / long_banded.ms;

  std::printf("full DP            : %10.1f ms\n", long_full.ms);
  std::printf("banded             : %10.1f ms (%.1fx, bar: >= 3x)\n",
              long_banded.ms, long_speedup);
  std::printf("banded + 4 threads : %10.1f ms\n", long_parallel.ms);
  std::printf("alignments identical: %s\n\n",
              long_identical ? "yes" : "NO — EQUIVALENCE BROKEN");

  // ---- Leg D: the session's star-align memo. ---------------------------
  // Re-appending a mid-sequence configuration (perf_session's Leg A
  // scenario) must hit the memo instead of re-running the MSA.
  bench::print_section("session star-align memo (re-appended experiment)");
  bool memo_ok = true;
  std::uint64_t memo_hits = 0;
  {
    sim::Study evolution = sim::study_gromacs_evolution();
    tracking::SessionConfig config;
    config.clustering = evolution.clustering;
    tracking::TrackingSession session(config);
    for (const auto& t : evolution.traces) session.append_experiment(t);
    session.retrack();
    const std::uint64_t computed_before = session.stats().alignments_computed;

    session.append_experiment(evolution.traces[evolution.traces.size() / 2]);
    ResultDigest warm(session.retrack());
    memo_hits = session.stats().alignments_memoized;
    memo_ok = memo_hits >= 1 &&
              session.stats().alignments_computed == computed_before;

    tracking::TrackingPipeline pipeline;
    tracking::SessionConfig cold_config;
    cold_config.clustering = evolution.clustering;
    pipeline.set_config(cold_config);
    for (const auto& t : evolution.traces) pipeline.add_experiment(t);
    pipeline.add_experiment(evolution.traces[evolution.traces.size() / 2]);
    ResultDigest cold(pipeline.run());
    memo_ok = memo_ok && cold == warm;
  }
  std::printf("memoized profiles  : %llu\n",
              static_cast<unsigned long long>(memo_hits));
  std::printf("memo hit, no recompute, identical output: %s\n\n",
              memo_ok ? "yes" : "NO — EQUIVALENCE BROKEN");

  const bool identity =
      study_identical && tracking_identical && long_identical && memo_ok;
  PT_GAUGE("verdict_alignment_identity", identity ? 1.0 : 0.0);
  PT_GAUGE("advisory_alignment_speedup", long_speedup);
  PT_GAUGE("advisory_alignment_speedup_ge3", long_speedup >= 3.0 ? 1.0 : 0.0);
  PT_GAUGE("alignment_full_ms", long_full.ms);
  PT_GAUGE("alignment_banded_ms", long_banded.ms);
  PT_GAUGE("alignment_parallel_ms", long_parallel.ms);
  PT_GAUGE("alignment_study_speedup", study_speedup);
  bench::write_telemetry("BENCH_alignment.json", "perf_alignment");

  // Identity is the gate; the timing bar is advisory (shared CI runners).
  std::printf("\nperf_alignment: %s\n", identity ? "PASS" : "FAIL");
  return identity ? 0 : 1;
}
