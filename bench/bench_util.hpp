#pragma once
// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints a header stating what the paper reports, runs the pipeline on the
// simulated study, and prints the measured counterpart so the two can be
// compared side by side (shape, not absolute numbers — the substrate is a
// simulator, not the authors' testbed).

#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::bench {

inline void print_title(const std::string& id, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void print_paper(const std::string& expectation) {
  std::printf("paper: %s\n\n", expectation.c_str());
}

inline void print_section(const std::string& name) {
  std::printf("--- %s ---\n", name.c_str());
}

/// Turn pipeline telemetry on for this bench (call before the workload).
inline void enable_telemetry() { obs::set_enabled(true); }

/// Write everything recorded so far as a "perftrack-run-report" JSON file,
/// labelled with the bench id — the same schema perftrack --profile emits,
/// so per-bench trajectories (BENCH_*.json) stay machine-comparable.
inline void write_telemetry(const std::string& path, const std::string& id) {
  obs::RunReport report = obs::collect();
  report.label = id;
  obs::save_report_json(path, report);
  std::printf("telemetry written to %s\n", path.c_str());
}

}  // namespace perftrack::bench
