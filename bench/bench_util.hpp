#pragma once
// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints a header stating what the paper reports, runs the pipeline on the
// simulated study, and prints the measured counterpart so the two can be
// compared side by side (shape, not absolute numbers — the substrate is a
// simulator, not the authors' testbed).

#include <cstdio>
#include <string>

namespace perftrack::bench {

inline void print_title(const std::string& id, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void print_paper(const std::string& expectation) {
  std::printf("paper: %s\n\n", expectation.c_str());
}

inline void print_section(const std::string& name) {
  std::printf("--- %s ---\n", name.c_str());
}

}  // namespace perftrack::bench
