// Microbenchmark — end-to-end tracking cost per study size.
//
// BM_TrackPairWrf runs with telemetry disabled (the default) and
// BM_TrackPairWrfTelemetry with recording on; comparing the two pins the
// span overhead in both modes. Disabled instrumentation must be
// unmeasurable (<1%).

#include <benchmark/benchmark.h>

#include "obs/telemetry.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

namespace {

void BM_TrackPairWrf(benchmark::State& state) {
  static auto frames = sim::study_wrf().frames();  // 128 + 256 tasks
  for (auto _ : state) {
    auto result = tracking::track_frames(frames, {});
    benchmark::DoNotOptimize(result.complete_count);
  }
  std::int64_t bursts = 0;
  for (const auto& f : frames)
    bursts += static_cast<std::int64_t>(f.projection().size());
  state.SetItemsProcessed(state.iterations() * bursts);
}
BENCHMARK(BM_TrackPairWrf)->Unit(benchmark::kMillisecond);

void BM_TrackPairWrfTelemetry(benchmark::State& state) {
  static auto frames = sim::study_wrf().frames();
  obs::set_enabled(true);
  for (auto _ : state) {
    // Reset per iteration so event buffers don't grow without bound.
    obs::reset();
    auto result = tracking::track_frames(frames, {});
    benchmark::DoNotOptimize(result.complete_count);
  }
  obs::set_enabled(false);
  obs::reset();
}
BENCHMARK(BM_TrackPairWrfTelemetry)->Unit(benchmark::kMillisecond);

void BM_TrackSequenceHydroc(benchmark::State& state) {
  static auto frames = sim::study_hydroc(9).frames();
  for (auto _ : state) {
    auto result = tracking::track_frames(frames, {});
    benchmark::DoNotOptimize(result.complete_count);
  }
}
BENCHMARK(BM_TrackSequenceHydroc)->Unit(benchmark::kMillisecond);

void BM_TrackSequenceMrGenesis(benchmark::State& state) {
  static auto frames = sim::study_mrgenesis().frames();
  for (auto _ : state) {
    auto result = tracking::track_frames(frames, {});
    benchmark::DoNotOptimize(result.complete_count);
  }
}
BENCHMARK(BM_TrackSequenceMrGenesis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
