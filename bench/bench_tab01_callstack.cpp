// Table 1 — Correlations from the call-stack evaluator for WRF.
//
// Regions sharing a source-code reference are related; several regions can
// share one reference (one region with two behaviours, or two code points
// behaving identically), so the evaluator prunes rather than decides.

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "tracking/evaluator_callstack.hpp"

using namespace perftrack;

int main() {
  bench::print_title("Table 1", "call-stack correlations for WRF");
  bench::print_paper(
      "references into module_comm_dm.f90 link 128-task regions to "
      "256-task regions; some references are shared by several regions");

  sim::Study study = sim::study_wrf();
  auto frames = study.frames();
  const cluster::Frame& fa = frames[0];
  const cluster::Frame& fb = frames[1];

  // Group regions of both frames by source reference, like the paper's
  // three-column table.
  std::map<std::string, std::pair<std::set<int>, std::set<int>>> by_ref;
  auto collect = [&](const cluster::Frame& frame, bool left) {
    for (const auto& object : frame.objects()) {
      for (const auto& [cs, weight] : object.callstack_weight) {
        if (weight < 0.05) continue;
        const auto& loc = frame.source().callstacks().resolve(cs);
        std::string key = std::to_string(loc.line) + " (" + loc.file + ")";
        if (left)
          by_ref[key].first.insert(object.id + 1);
        else
          by_ref[key].second.insert(object.id + 1);
      }
    }
  };
  collect(fa, true);
  collect(fb, false);

  Table table({"128 tasks", "Callstack reference", "256 tasks"});
  for (const auto& [ref, sides] : by_ref) {
    auto join_ids = [](const std::set<int>& ids) {
      std::string out;
      for (int id : ids) {
        if (!out.empty()) out += " ";
        out += "Region " + std::to_string(id);
      }
      return out;
    };
    table.add_row({join_ids(sides.first), ref, join_ids(sides.second)});
  }
  std::printf("%s\n", table.to_text().c_str());

  bench::print_section("call-stack correlation matrix (A rows, B columns)");
  tracking::CorrelationMatrix m =
      tracking::evaluate_callstack(fa, fb, 0.05);
  std::printf("%s", m.to_text("A", "B").c_str());

  // How much of the combinatorial space does the pruning remove?
  std::size_t total = m.rows() * m.cols(), kept = 0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m.at(i, j) > 0.0) ++kept;
  std::printf(
      "\ncandidate pairs kept: %zu of %zu (%.0f%% of the search space "
      "pruned; paper: \"effectively reduces the combinatorial explosion\")\n",
      kept, total, 100.0 * (1.0 - static_cast<double>(kept) /
                                      static_cast<double>(total)));
  return 0;
}
