// Ablation — the scale-normalisation step (paper §2, Fig. 1c).
//
// Without weighting per-process totals by the task count, the 256-task WRF
// frame sits half an instruction decade below the 128-task frame and the
// nearest-neighbour cross-classification degenerates: every 256-task object
// looks "below" its 128-task counterpart and rows stop being decisive.

#include <cstdio>

#include "bench_util.hpp"
#include "sim/studies.hpp"
#include "tracking/evaluator_displacement.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

namespace {

/// Fraction of rows whose dominant column holds >= 90% of the row's mass —
/// how decisively the cross-classification assigns each object.
double decisiveness(const tracking::CorrelationMatrix& m) {
  if (m.rows() == 0) return 0.0;
  std::size_t decisive = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double best = 0.0, sum = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      best = std::max(best, m.at(i, j));
      sum += m.at(i, j);
    }
    if (sum > 0.0 && best / sum >= 0.9) ++decisive;
  }
  return static_cast<double>(decisive) / static_cast<double>(m.rows());
}

/// Mean matched-assignment agreement between A->B and B->A (reciprocity).
double reciprocity(const tracking::DisplacementResult& d) {
  if (d.a_to_b.rows() == 0) return 0.0;
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < d.a_to_b.rows(); ++i) {
    std::ptrdiff_t j = d.a_to_b.row_argmax(i);
    if (j < 0) continue;
    ++total;
    if (d.b_to_a.row_argmax(static_cast<std::size_t>(j)) ==
        static_cast<std::ptrdiff_t>(i))
      ++agree;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace

int main() {
  bench::print_title("Ablation", "cross-experiment scale normalisation");
  bench::print_paper(
      "weighting instruction-like metrics by the task count keeps relative "
      "distances almost constant between WRF-128 and WRF-256 (Fig. 1c); "
      "without it the frames are not comparable");

  sim::Study study = sim::study_wrf();
  auto frames = study.frames();

  for (bool weighting : {true, false}) {
    tracking::ScaleNormalization scale = tracking::ScaleNormalization::fit(
        frames, {true, false}, weighting);
    tracking::DisplacementResult displacement =
        tracking::evaluate_displacement(frames[0], frames[1], scale, 0.05);
    std::printf("task weighting %-3s: decisive rows %3.0f%%, reciprocal "
                "agreement %3.0f%%\n",
                weighting ? "ON" : "OFF",
                decisiveness(displacement.a_to_b) * 100.0,
                reciprocity(displacement) * 100.0);
  }

  tracking::TrackingResult tracked = tracking::track_frames(frames, {});
  std::printf(
      "\nend-to-end tracking (weighting on): %zu regions, coverage %.0f%%\n",
      tracked.complete_count, tracked.coverage * 100.0);
  return 0;
}
