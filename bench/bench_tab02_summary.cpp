// Table 2 — Summary of experiments.
//
// Ten case studies; for each, the number of input images, the tracked
// regions the algorithm discriminates, and the coverage (tracked regions
// over the maximum number of identifiable objects — the smallest per-frame
// object count, since a pairwise relation count can never exceed
// min(n, m)). The paper reports an average coverage of ~90%.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"

using namespace perftrack;

int main(int argc, char** argv) {
  bench::enable_telemetry();
  bench::print_title("Table 2", "summary of the ten tracking case studies");
  bench::print_paper(
      "images/regions/coverage: Gadget 2/8/88, QuantumE 2/6/66, "
      "WRF 2/12/100, Gromacs 3/5/100, CGPOP 4/2/66, NAS BT 4/6/100, "
      "HydroC 12/2/100, MR-Genesis 12/2/100, NAS FT 15/2/100, "
      "Gromacs 20/4/80; average ~90%");

  // --threshold-sweep additionally ablates the 5% outlier threshold on the
  // WRF study (a design choice called out in DESIGN.md).
  bool threshold_sweep =
      argc > 1 && std::string(argv[1]) == "--threshold-sweep";

  Table table({"Application", "Input images", "Tracked regions",
               "Coverage %", "Paper regions", "Paper coverage %"});
  struct PaperRow {
    int regions;
    int coverage;
  };
  const PaperRow paper[] = {{8, 88},  {6, 66},  {12, 100}, {5, 100},
                            {2, 66},  {6, 100}, {2, 100},  {2, 100},
                            {2, 100}, {4, 80}};

  double coverage_sum = 0.0;
  std::size_t row = 0;
  for (const sim::Study& study : sim::all_studies()) {
    tracking::TrackingResult result =
        tracking::track_frames(study.frames(), {});
    table.begin_row();
    table.cell(study.name);
    table.cell(study.traces.size());
    table.cell(result.complete_count);
    table.cell(result.coverage * 100.0, 0);
    table.cell(static_cast<long long>(paper[row].regions));
    table.cell(static_cast<long long>(paper[row].coverage));
    coverage_sum += result.coverage;
    ++row;
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("average coverage: %.0f%% (paper: ~90%%)\n",
              coverage_sum / static_cast<double>(row) * 100.0);

  if (threshold_sweep) {
    bench::print_section(
        "ablation: outlier threshold sweep on WRF (default 5%)");
    sim::Study wrf = sim::study_wrf();
    auto frames = wrf.frames();
    for (double threshold : {0.0, 0.01, 0.05, 0.10, 0.25}) {
      tracking::TrackingParams params;
      params.outlier_threshold = threshold;
      tracking::TrackingResult result =
          tracking::track_frames(frames, params);
      std::printf("  threshold %4.0f%%: tracked %zu, coverage %.0f%%\n",
                  threshold * 100.0, result.complete_count,
                  result.coverage * 100.0);
    }
  }

  // Telemetry trajectory point for this table's workload (per-stage timing
  // + pipeline counters across all ten studies).
  bench::write_telemetry("BENCH_tab02.json", "tab02_summary");
  return 0;
}
