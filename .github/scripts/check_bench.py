#!/usr/bin/env python3
"""Gate CI on perftrack bench run reports.

The perf_* benches check two different kinds of property, and CI must
treat them differently:

  * correctness verdicts — bit-identity of incremental vs batch results,
    cache-warmed runs reproducing cold runs, every request answered.
    These hold on any machine, so a violation fails the build.
  * timing bars — e.g. the >= 5x evolution-study speedup perf_session
    asserts locally. Shared CI runners make wall-clock ratios flaky, so
    a miss is only a workflow warning; the numbers still land in the
    uploaded BENCH_*.json artifacts for trend-watching.

Benches export both as gauges in their run report (the
"perftrack-run-report" schema `perftrack --profile` writes), using a
naming convention this script enforces:

  verdict_*    correctness verdict; anything but 1.0 fails CI
  advisory_*   environment-sensitive number. 0.0/1.0 is a pass/fail
               bar (a miss warns); any other value is a tracked
               quantity (latency quantiles, overhead percentages)
               printed for trend-watching, never a warning
  (others)     informational numbers, printed for the log

Usage: check_bench.py [--require NAME ...] BENCH_session.json [...]
Each --require NAME asserts that the named verdict_* gauge is present (in
at least one report) and holds — so a bench silently dropping a verdict
cannot turn the gate green.
Exit codes: 0 all verdicts hold, 1 verdict violation, 2 unusable report
(missing file, wrong schema, no verdict gauges, or a required verdict
missing from every report).
"""

import json
import sys


def fail(message: str) -> None:
    print(f"::error::{message}")


def warn(message: str) -> None:
    print(f"::warning::{message}")


def check_report(path: str, seen_verdicts: set) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read bench report {path}: {error}")
        return 2

    if report.get("schema") != "perftrack-run-report":
        fail(f"{path} is not a perftrack-run-report "
             f"(schema={report.get('schema')!r})")
        return 2

    gauges = report.get("gauges", {})
    verdicts = {k: v for k, v in gauges.items() if k.startswith("verdict_")}
    seen_verdicts.update(verdicts)
    if not verdicts:
        fail(f"{path} exports no verdict_* gauges; "
             "was the bench rebuilt without them?")
        return 2

    label = report.get("label", path)
    status = 0
    for name, value in sorted(gauges.items()):
        if name.startswith("verdict_"):
            if value == 1.0:
                print(f"{label}: {name} holds")
            else:
                fail(f"{label}: correctness verdict {name} FAILED "
                     f"(value {value:g}) — see the bench log")
                status = 1
        elif name.startswith("advisory_"):
            if value == 1.0:
                print(f"{label}: {name} met")
            elif value == 0.0:
                warn(f"{label}: advisory bar {name} not met "
                     f"(advisory on shared runners)")
            else:
                print(f"{label}: {name} = {value:g} (advisory)")
        else:
            print(f"{label}: {name} = {value:g}")
    return status


def main() -> int:
    required = []
    paths = []
    args = sys.argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--require":
            if not args:
                fail("--require needs a verdict name")
                return 2
            required.append(args.pop(0))
        else:
            paths.append(arg)
    if not paths:
        fail("usage: check_bench.py [--require NAME ...] BENCH_report.json ...")
        return 2

    seen_verdicts: set = set()
    status = max(check_report(path, seen_verdicts) for path in paths)
    for name in required:
        if name not in seen_verdicts:
            fail(f"required verdict {name} missing from every report — "
                 "was the bench rebuilt without it?")
            status = max(status, 2)
    return status


if __name__ == "__main__":
    sys.exit(main())
