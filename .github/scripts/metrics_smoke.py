#!/usr/bin/env python3
"""CI smoke test for perftrackd's /metrics scrape endpoint.

Starts a real daemon (AF_UNIX protocol socket + loopback-TCP metrics
endpoint on an ephemeral port), drives a few requests over the protocol
so the histograms have samples, scrapes /metrics, and validates the
payload the way `promtool check metrics` would: every line must match
the exposition-format 0.0.4 grammar, every sampled family needs a
# TYPE, histogram `le` buckets must be cumulative and end at +Inf with
_count, and the families the serving layer promises must be present.

The scraped text is written to a snapshot file (default
metrics_snapshot.txt) which CI uploads as an artifact, so a regression
in the exposition output is diffable across runs.

Usage: metrics_smoke.py PERFTRACKD_BINARY [SNAPSHOT_PATH]
Exit codes: 0 ok, 1 validation failure, 2 daemon/transport failure.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request

REQUIRED_FAMILIES = [
    "perftrackd_requests_total",
    "perftrackd_errors_total",
    "perftrackd_request_ns",
    "perftrackd_handler_ns",
    "perftrackd_phase_ns",
    "perftrackd_queue_depth",
    "perftrackd_queue_capacity",
    "perftrackd_studies",
    "perftrackd_resident_sessions",
    "perftrackd_uptime_seconds",
]

# Exposition format 0.0.4 line grammar (promtool-style check).
COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                     # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""          # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"     # more labels
    r" (-?[0-9.e+]+|\+Inf|-Inf|NaN)$"                # value
)


def fail(message):
    print(f"::error::metrics smoke: {message}")
    sys.exit(1)


def ndjson_call(sock_path, request):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.connect(sock_path)
        s.sendall((json.dumps(request) + "\n").encode())
        data = b""
        while not data.endswith(b"\n"):
            chunk = s.recv(4096)
            if not chunk:
                break
            data += chunk
    response = json.loads(data)
    if not response.get("ok"):
        fail(f"protocol request {request['method']} failed: {response}")
    return response


def validate_exposition(text):
    typed = {}     # family -> declared type
    sampled = {}   # family -> sample lines
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"line {lineno}: blank line in exposition output")
        if line.startswith("#"):
            if not COMMENT_RE.match(line):
                fail(f"line {lineno}: malformed comment: {line!r}")
            parts = line.split(None, 3)
            if parts[1] == "TYPE":
                if parts[2] in typed:
                    fail(f"line {lineno}: duplicate TYPE for {parts[2]}")
                typed[parts[2]] = parts[3]
            continue
        if not SAMPLE_RE.match(line):
            fail(f"line {lineno}: malformed sample: {line!r}")
        name = re.split(r"[{ ]", line, 1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        family = family if family in typed else name
        sampled.setdefault(family, []).append(line)

    for family, samples in sampled.items():
        if family not in typed:
            fail(f"family {family} has samples but no # TYPE")
        if typed[family] == "histogram":
            buckets = [s for s in samples if s.startswith(family + "_bucket")]
            series = {}
            for b in buckets:
                labels = re.search(r"\{(.*)\}", b).group(1)
                le = re.search(r'le="([^"]*)"', labels).group(1)
                key = re.sub(r'(^|,)le="[^"]*"', "", labels)
                series.setdefault(key, []).append(
                    (le, float(b.rsplit(" ", 1)[1])))
            for key, pairs in series.items():
                if pairs[-1][0] != "+Inf":
                    fail(f"{family}{{{key}}}: buckets do not end at +Inf")
                counts = [n for _, n in pairs]
                if counts != sorted(counts):
                    fail(f"{family}{{{key}}}: bucket counts not cumulative")

    for family in REQUIRED_FAMILIES:
        if family not in sampled:
            fail(f"required family {family} missing from /metrics")

    ping = [s for s in sampled["perftrackd_requests_total"]
            if 'method="ping"' in s]
    if not ping or float(ping[0].rsplit(" ", 1)[1]) < 1:
        fail("ping requests were served but not counted")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    binary = sys.argv[1]
    snapshot_path = sys.argv[2] if len(sys.argv) > 2 else "metrics_snapshot.txt"

    workdir = tempfile.mkdtemp(prefix="ptmetrics-")
    sock_path = os.path.join(workdir, "pt.sock")
    daemon = subprocess.Popen(
        [binary, "--socket", sock_path, "--metrics-port", "0"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    try:
        # The daemon prints the resolved ephemeral port to stderr.
        port = None
        deadline = time.time() + 10
        while time.time() < deadline and port is None:
            line = daemon.stderr.readline()
            if not line and daemon.poll() is not None:
                print(f"::error::daemon exited early: {daemon.returncode}")
                return 2
            match = re.search(r"metrics port (\d+)", line or "")
            if match:
                port = int(match.group(1))
        if port is None:
            print("::error::daemon never reported its metrics port")
            return 2
        while time.time() < deadline and not os.path.exists(sock_path):
            time.sleep(0.05)

        # Traffic first, so counters and histograms have real samples.
        ndjson_call(sock_path, {"id": 1, "method": "ping"})
        ndjson_call(sock_path, {"id": 2, "method": "open_study",
                                "study": "smoke"})
        ndjson_call(sock_path, {"id": 3, "method": "stats"})
        ndjson_call(sock_path, {"id": 4, "method": "health"})

        base = f"http://127.0.0.1:{port}"
        text = urllib.request.urlopen(base + "/metrics", timeout=10).read()
        text = text.decode()
        with open(snapshot_path, "w", encoding="utf-8") as out:
            out.write(text)
        validate_exposition(text)

        js = json.loads(
            urllib.request.urlopen(base + "/metrics.json", timeout=10).read())
        for section in ("counters", "gauges", "histograms"):
            if section not in js:
                fail(f"/metrics.json missing {section!r}")
        health = json.loads(
            urllib.request.urlopen(base + "/health", timeout=10).read())
        if health.get("ok") is not True or health.get("draining") is not False:
            fail(f"/health unexpected: {health}")

        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=10)
        if rc != 0:
            print(f"::error::daemon exited {rc} after SIGTERM")
            return 2
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    lines = len(text.splitlines())
    print(f"metrics smoke: OK ({lines} exposition lines, "
          f"snapshot at {snapshot_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
