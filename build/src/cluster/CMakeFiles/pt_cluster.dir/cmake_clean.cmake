file(REMOVE_RECURSE
  "CMakeFiles/pt_cluster.dir/autotune.cpp.o"
  "CMakeFiles/pt_cluster.dir/autotune.cpp.o.d"
  "CMakeFiles/pt_cluster.dir/dbscan.cpp.o"
  "CMakeFiles/pt_cluster.dir/dbscan.cpp.o.d"
  "CMakeFiles/pt_cluster.dir/frame.cpp.o"
  "CMakeFiles/pt_cluster.dir/frame.cpp.o.d"
  "CMakeFiles/pt_cluster.dir/normalize.cpp.o"
  "CMakeFiles/pt_cluster.dir/normalize.cpp.o.d"
  "CMakeFiles/pt_cluster.dir/projection.cpp.o"
  "CMakeFiles/pt_cluster.dir/projection.cpp.o.d"
  "CMakeFiles/pt_cluster.dir/scatter.cpp.o"
  "CMakeFiles/pt_cluster.dir/scatter.cpp.o.d"
  "libpt_cluster.a"
  "libpt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
