
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/autotune.cpp" "src/cluster/CMakeFiles/pt_cluster.dir/autotune.cpp.o" "gcc" "src/cluster/CMakeFiles/pt_cluster.dir/autotune.cpp.o.d"
  "/root/repo/src/cluster/dbscan.cpp" "src/cluster/CMakeFiles/pt_cluster.dir/dbscan.cpp.o" "gcc" "src/cluster/CMakeFiles/pt_cluster.dir/dbscan.cpp.o.d"
  "/root/repo/src/cluster/frame.cpp" "src/cluster/CMakeFiles/pt_cluster.dir/frame.cpp.o" "gcc" "src/cluster/CMakeFiles/pt_cluster.dir/frame.cpp.o.d"
  "/root/repo/src/cluster/normalize.cpp" "src/cluster/CMakeFiles/pt_cluster.dir/normalize.cpp.o" "gcc" "src/cluster/CMakeFiles/pt_cluster.dir/normalize.cpp.o.d"
  "/root/repo/src/cluster/projection.cpp" "src/cluster/CMakeFiles/pt_cluster.dir/projection.cpp.o" "gcc" "src/cluster/CMakeFiles/pt_cluster.dir/projection.cpp.o.d"
  "/root/repo/src/cluster/scatter.cpp" "src/cluster/CMakeFiles/pt_cluster.dir/scatter.cpp.o" "gcc" "src/cluster/CMakeFiles/pt_cluster.dir/scatter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pt_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
