# Empty compiler generated dependencies file for pt_cluster.
# This may be replaced when dependencies are built.
