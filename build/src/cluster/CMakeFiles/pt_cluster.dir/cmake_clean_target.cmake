file(REMOVE_RECURSE
  "libpt_cluster.a"
)
