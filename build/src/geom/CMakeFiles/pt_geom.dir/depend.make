# Empty dependencies file for pt_geom.
# This may be replaced when dependencies are built.
