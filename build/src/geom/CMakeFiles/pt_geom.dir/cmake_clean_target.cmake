file(REMOVE_RECURSE
  "libpt_geom.a"
)
