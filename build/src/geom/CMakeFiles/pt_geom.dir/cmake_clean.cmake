file(REMOVE_RECURSE
  "CMakeFiles/pt_geom.dir/kdtree.cpp.o"
  "CMakeFiles/pt_geom.dir/kdtree.cpp.o.d"
  "CMakeFiles/pt_geom.dir/pointset.cpp.o"
  "CMakeFiles/pt_geom.dir/pointset.cpp.o.d"
  "libpt_geom.a"
  "libpt_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
