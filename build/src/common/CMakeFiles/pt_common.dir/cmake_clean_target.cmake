file(REMOVE_RECURSE
  "libpt_common.a"
)
