file(REMOVE_RECURSE
  "CMakeFiles/pt_common.dir/log.cpp.o"
  "CMakeFiles/pt_common.dir/log.cpp.o.d"
  "CMakeFiles/pt_common.dir/stats.cpp.o"
  "CMakeFiles/pt_common.dir/stats.cpp.o.d"
  "CMakeFiles/pt_common.dir/strings.cpp.o"
  "CMakeFiles/pt_common.dir/strings.cpp.o.d"
  "CMakeFiles/pt_common.dir/table.cpp.o"
  "CMakeFiles/pt_common.dir/table.cpp.o.d"
  "libpt_common.a"
  "libpt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
