# Empty compiler generated dependencies file for pt_common.
# This may be replaced when dependencies are built.
