file(REMOVE_RECURSE
  "libpt_align.a"
)
