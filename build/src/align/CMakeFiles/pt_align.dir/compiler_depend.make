# Empty compiler generated dependencies file for pt_align.
# This may be replaced when dependencies are built.
