file(REMOVE_RECURSE
  "CMakeFiles/pt_align.dir/msa.cpp.o"
  "CMakeFiles/pt_align.dir/msa.cpp.o.d"
  "CMakeFiles/pt_align.dir/nw.cpp.o"
  "CMakeFiles/pt_align.dir/nw.cpp.o.d"
  "libpt_align.a"
  "libpt_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
