
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/msa.cpp" "src/align/CMakeFiles/pt_align.dir/msa.cpp.o" "gcc" "src/align/CMakeFiles/pt_align.dir/msa.cpp.o.d"
  "/root/repo/src/align/nw.cpp" "src/align/CMakeFiles/pt_align.dir/nw.cpp.o" "gcc" "src/align/CMakeFiles/pt_align.dir/nw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
