file(REMOVE_RECURSE
  "libpt_paraver.a"
)
