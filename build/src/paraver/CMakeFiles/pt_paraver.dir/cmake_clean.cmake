file(REMOVE_RECURSE
  "CMakeFiles/pt_paraver.dir/pcf.cpp.o"
  "CMakeFiles/pt_paraver.dir/pcf.cpp.o.d"
  "CMakeFiles/pt_paraver.dir/prv.cpp.o"
  "CMakeFiles/pt_paraver.dir/prv.cpp.o.d"
  "libpt_paraver.a"
  "libpt_paraver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_paraver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
