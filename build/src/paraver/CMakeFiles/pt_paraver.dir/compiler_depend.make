# Empty compiler generated dependencies file for pt_paraver.
# This may be replaced when dependencies are built.
