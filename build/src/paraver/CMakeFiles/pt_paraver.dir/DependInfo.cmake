
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paraver/pcf.cpp" "src/paraver/CMakeFiles/pt_paraver.dir/pcf.cpp.o" "gcc" "src/paraver/CMakeFiles/pt_paraver.dir/pcf.cpp.o.d"
  "/root/repo/src/paraver/prv.cpp" "src/paraver/CMakeFiles/pt_paraver.dir/prv.cpp.o" "gcc" "src/paraver/CMakeFiles/pt_paraver.dir/prv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pt_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
