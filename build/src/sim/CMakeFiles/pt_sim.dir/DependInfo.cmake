
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/app.cpp" "src/sim/CMakeFiles/pt_sim.dir/app.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/app.cpp.o.d"
  "/root/repo/src/sim/apps/cgpop.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/cgpop.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/cgpop.cpp.o.d"
  "/root/repo/src/sim/apps/espresso.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/espresso.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/espresso.cpp.o.d"
  "/root/repo/src/sim/apps/gadget.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/gadget.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/gadget.cpp.o.d"
  "/root/repo/src/sim/apps/gromacs.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/gromacs.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/gromacs.cpp.o.d"
  "/root/repo/src/sim/apps/hydroc.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/hydroc.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/hydroc.cpp.o.d"
  "/root/repo/src/sim/apps/mrgenesis.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/mrgenesis.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/mrgenesis.cpp.o.d"
  "/root/repo/src/sim/apps/nas.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/nas.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/nas.cpp.o.d"
  "/root/repo/src/sim/apps/wrf.cpp" "src/sim/CMakeFiles/pt_sim.dir/apps/wrf.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/apps/wrf.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/pt_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/compiler.cpp" "src/sim/CMakeFiles/pt_sim.dir/compiler.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/compiler.cpp.o.d"
  "/root/repo/src/sim/phase.cpp" "src/sim/CMakeFiles/pt_sim.dir/phase.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/phase.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/pt_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/studies.cpp" "src/sim/CMakeFiles/pt_sim.dir/studies.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/studies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pt_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
