# Empty compiler generated dependencies file for pt_sim.
# This may be replaced when dependencies are built.
