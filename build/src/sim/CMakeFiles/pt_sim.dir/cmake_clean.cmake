file(REMOVE_RECURSE
  "CMakeFiles/pt_sim.dir/app.cpp.o"
  "CMakeFiles/pt_sim.dir/app.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/cgpop.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/cgpop.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/espresso.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/espresso.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/gadget.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/gadget.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/gromacs.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/gromacs.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/hydroc.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/hydroc.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/mrgenesis.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/mrgenesis.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/nas.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/nas.cpp.o.d"
  "CMakeFiles/pt_sim.dir/apps/wrf.cpp.o"
  "CMakeFiles/pt_sim.dir/apps/wrf.cpp.o.d"
  "CMakeFiles/pt_sim.dir/cache.cpp.o"
  "CMakeFiles/pt_sim.dir/cache.cpp.o.d"
  "CMakeFiles/pt_sim.dir/compiler.cpp.o"
  "CMakeFiles/pt_sim.dir/compiler.cpp.o.d"
  "CMakeFiles/pt_sim.dir/phase.cpp.o"
  "CMakeFiles/pt_sim.dir/phase.cpp.o.d"
  "CMakeFiles/pt_sim.dir/platform.cpp.o"
  "CMakeFiles/pt_sim.dir/platform.cpp.o.d"
  "CMakeFiles/pt_sim.dir/studies.cpp.o"
  "CMakeFiles/pt_sim.dir/studies.cpp.o.d"
  "libpt_sim.a"
  "libpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
