file(REMOVE_RECURSE
  "libpt_sim.a"
)
