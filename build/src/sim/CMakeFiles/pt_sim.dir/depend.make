# Empty dependencies file for pt_sim.
# This may be replaced when dependencies are built.
