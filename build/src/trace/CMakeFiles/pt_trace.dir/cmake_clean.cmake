file(REMOVE_RECURSE
  "CMakeFiles/pt_trace.dir/callstack.cpp.o"
  "CMakeFiles/pt_trace.dir/callstack.cpp.o.d"
  "CMakeFiles/pt_trace.dir/counters.cpp.o"
  "CMakeFiles/pt_trace.dir/counters.cpp.o.d"
  "CMakeFiles/pt_trace.dir/metrics.cpp.o"
  "CMakeFiles/pt_trace.dir/metrics.cpp.o.d"
  "CMakeFiles/pt_trace.dir/slice.cpp.o"
  "CMakeFiles/pt_trace.dir/slice.cpp.o.d"
  "CMakeFiles/pt_trace.dir/trace.cpp.o"
  "CMakeFiles/pt_trace.dir/trace.cpp.o.d"
  "CMakeFiles/pt_trace.dir/trace_io.cpp.o"
  "CMakeFiles/pt_trace.dir/trace_io.cpp.o.d"
  "libpt_trace.a"
  "libpt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
