file(REMOVE_RECURSE
  "libpt_trace.a"
)
