# Empty compiler generated dependencies file for pt_trace.
# This may be replaced when dependencies are built.
