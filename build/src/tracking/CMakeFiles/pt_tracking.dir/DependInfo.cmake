
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracking/combiner.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/combiner.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/combiner.cpp.o.d"
  "/root/repo/src/tracking/correlation.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/correlation.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/correlation.cpp.o.d"
  "/root/repo/src/tracking/evaluator_callstack.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_callstack.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_callstack.cpp.o.d"
  "/root/repo/src/tracking/evaluator_displacement.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_displacement.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_displacement.cpp.o.d"
  "/root/repo/src/tracking/evaluator_sequence.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_sequence.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_sequence.cpp.o.d"
  "/root/repo/src/tracking/evaluator_spmd.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_spmd.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/evaluator_spmd.cpp.o.d"
  "/root/repo/src/tracking/frame_alignment.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/frame_alignment.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/frame_alignment.cpp.o.d"
  "/root/repo/src/tracking/gnuplot.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/gnuplot.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/gnuplot.cpp.o.d"
  "/root/repo/src/tracking/html_report.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/html_report.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/html_report.cpp.o.d"
  "/root/repo/src/tracking/pipeline.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/pipeline.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/pipeline.cpp.o.d"
  "/root/repo/src/tracking/prediction.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/prediction.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/prediction.cpp.o.d"
  "/root/repo/src/tracking/relation.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/relation.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/relation.cpp.o.d"
  "/root/repo/src/tracking/report.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/report.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/report.cpp.o.d"
  "/root/repo/src/tracking/scale.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/scale.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/scale.cpp.o.d"
  "/root/repo/src/tracking/tracker.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/tracker.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/tracker.cpp.o.d"
  "/root/repo/src/tracking/trends.cpp" "src/tracking/CMakeFiles/pt_tracking.dir/trends.cpp.o" "gcc" "src/tracking/CMakeFiles/pt_tracking.dir/trends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pt_align.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pt_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
