file(REMOVE_RECURSE
  "libpt_tracking.a"
)
