# Empty compiler generated dependencies file for pt_tracking.
# This may be replaced when dependencies are built.
