# Empty compiler generated dependencies file for bench_fig08_cgpop_frames.
# This may be replaced when dependencies are built.
