# Empty dependencies file for bench_fig09_bt_frames.
# This may be replaced when dependencies are built.
