file(REMOVE_RECURSE
  "../bench/bench_fig09_bt_frames"
  "../bench/bench_fig09_bt_frames.pdb"
  "CMakeFiles/bench_fig09_bt_frames.dir/bench_fig09_bt_frames.cpp.o"
  "CMakeFiles/bench_fig09_bt_frames.dir/bench_fig09_bt_frames.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_bt_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
