file(REMOVE_RECURSE
  "../bench/bench_ablation_evaluators"
  "../bench/bench_ablation_evaluators.pdb"
  "CMakeFiles/bench_ablation_evaluators.dir/bench_ablation_evaluators.cpp.o"
  "CMakeFiles/bench_ablation_evaluators.dir/bench_ablation_evaluators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_evaluators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
