# Empty dependencies file for bench_ablation_evaluators.
# This may be replaced when dependencies are built.
