# Empty dependencies file for bench_fig03_displacement_matrix.
# This may be replaced when dependencies are built.
