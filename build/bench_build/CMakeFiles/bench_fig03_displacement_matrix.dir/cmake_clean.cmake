file(REMOVE_RECURSE
  "../bench/bench_fig03_displacement_matrix"
  "../bench/bench_fig03_displacement_matrix.pdb"
  "CMakeFiles/bench_fig03_displacement_matrix.dir/bench_fig03_displacement_matrix.cpp.o"
  "CMakeFiles/bench_fig03_displacement_matrix.dir/bench_fig03_displacement_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_displacement_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
