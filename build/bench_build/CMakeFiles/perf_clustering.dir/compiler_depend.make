# Empty compiler generated dependencies file for perf_clustering.
# This may be replaced when dependencies are built.
