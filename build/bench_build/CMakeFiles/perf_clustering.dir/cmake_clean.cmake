file(REMOVE_RECURSE
  "../bench/perf_clustering"
  "../bench/perf_clustering.pdb"
  "CMakeFiles/perf_clustering.dir/perf_clustering.cpp.o"
  "CMakeFiles/perf_clustering.dir/perf_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
