file(REMOVE_RECURSE
  "../bench/bench_ablation_normalization"
  "../bench/bench_ablation_normalization.pdb"
  "CMakeFiles/bench_ablation_normalization.dir/bench_ablation_normalization.cpp.o"
  "CMakeFiles/bench_ablation_normalization.dir/bench_ablation_normalization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
