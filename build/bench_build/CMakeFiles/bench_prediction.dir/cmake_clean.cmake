file(REMOVE_RECURSE
  "../bench/bench_prediction"
  "../bench/bench_prediction.pdb"
  "CMakeFiles/bench_prediction.dir/bench_prediction.cpp.o"
  "CMakeFiles/bench_prediction.dir/bench_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
