# Empty dependencies file for bench_prediction.
# This may be replaced when dependencies are built.
