# Empty dependencies file for bench_fig05_sequence_alignment.
# This may be replaced when dependencies are built.
