file(REMOVE_RECURSE
  "../bench/bench_fig05_sequence_alignment"
  "../bench/bench_fig05_sequence_alignment.pdb"
  "CMakeFiles/bench_fig05_sequence_alignment.dir/bench_fig05_sequence_alignment.cpp.o"
  "CMakeFiles/bench_fig05_sequence_alignment.dir/bench_fig05_sequence_alignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_sequence_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
