# Empty dependencies file for bench_ablation_autotune.
# This may be replaced when dependencies are built.
