file(REMOVE_RECURSE
  "../bench/bench_ablation_autotune"
  "../bench/bench_ablation_autotune.pdb"
  "CMakeFiles/bench_ablation_autotune.dir/bench_ablation_autotune.cpp.o"
  "CMakeFiles/bench_ablation_autotune.dir/bench_ablation_autotune.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
