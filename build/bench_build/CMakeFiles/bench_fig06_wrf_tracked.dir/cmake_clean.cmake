file(REMOVE_RECURSE
  "../bench/bench_fig06_wrf_tracked"
  "../bench/bench_fig06_wrf_tracked.pdb"
  "CMakeFiles/bench_fig06_wrf_tracked.dir/bench_fig06_wrf_tracked.cpp.o"
  "CMakeFiles/bench_fig06_wrf_tracked.dir/bench_fig06_wrf_tracked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_wrf_tracked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
