# Empty dependencies file for bench_fig06_wrf_tracked.
# This may be replaced when dependencies are built.
