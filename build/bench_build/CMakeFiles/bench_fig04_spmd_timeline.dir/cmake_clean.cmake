file(REMOVE_RECURSE
  "../bench/bench_fig04_spmd_timeline"
  "../bench/bench_fig04_spmd_timeline.pdb"
  "CMakeFiles/bench_fig04_spmd_timeline.dir/bench_fig04_spmd_timeline.cpp.o"
  "CMakeFiles/bench_fig04_spmd_timeline.dir/bench_fig04_spmd_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_spmd_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
