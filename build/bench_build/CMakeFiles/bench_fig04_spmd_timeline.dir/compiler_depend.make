# Empty compiler generated dependencies file for bench_fig04_spmd_timeline.
# This may be replaced when dependencies are built.
