file(REMOVE_RECURSE
  "../bench/bench_tab02_summary"
  "../bench/bench_tab02_summary.pdb"
  "CMakeFiles/bench_tab02_summary.dir/bench_tab02_summary.cpp.o"
  "CMakeFiles/bench_tab02_summary.dir/bench_tab02_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
