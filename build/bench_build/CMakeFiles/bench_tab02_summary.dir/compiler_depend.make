# Empty compiler generated dependencies file for bench_tab02_summary.
# This may be replaced when dependencies are built.
