# Empty compiler generated dependencies file for bench_tab03_cgpop.
# This may be replaced when dependencies are built.
