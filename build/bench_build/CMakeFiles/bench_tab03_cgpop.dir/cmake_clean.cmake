file(REMOVE_RECURSE
  "../bench/bench_tab03_cgpop"
  "../bench/bench_tab03_cgpop.pdb"
  "CMakeFiles/bench_tab03_cgpop.dir/bench_tab03_cgpop.cpp.o"
  "CMakeFiles/bench_tab03_cgpop.dir/bench_tab03_cgpop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_cgpop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
