file(REMOVE_RECURSE
  "../bench/perf_kdtree"
  "../bench/perf_kdtree.pdb"
  "CMakeFiles/perf_kdtree.dir/perf_kdtree.cpp.o"
  "CMakeFiles/perf_kdtree.dir/perf_kdtree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_kdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
