# Empty compiler generated dependencies file for perf_kdtree.
# This may be replaced when dependencies are built.
