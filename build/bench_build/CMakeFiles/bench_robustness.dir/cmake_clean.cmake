file(REMOVE_RECURSE
  "../bench/bench_robustness"
  "../bench/bench_robustness.pdb"
  "CMakeFiles/bench_robustness.dir/bench_robustness.cpp.o"
  "CMakeFiles/bench_robustness.dir/bench_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
