file(REMOVE_RECURSE
  "../bench/bench_tab01_callstack"
  "../bench/bench_tab01_callstack.pdb"
  "CMakeFiles/bench_tab01_callstack.dir/bench_tab01_callstack.cpp.o"
  "CMakeFiles/bench_tab01_callstack.dir/bench_tab01_callstack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_callstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
