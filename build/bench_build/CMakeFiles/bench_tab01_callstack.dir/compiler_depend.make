# Empty compiler generated dependencies file for bench_tab01_callstack.
# This may be replaced when dependencies are built.
