# Empty compiler generated dependencies file for bench_fig01_wrf_structure.
# This may be replaced when dependencies are built.
