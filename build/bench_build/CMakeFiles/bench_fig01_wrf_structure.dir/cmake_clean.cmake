file(REMOVE_RECURSE
  "../bench/bench_fig01_wrf_structure"
  "../bench/bench_fig01_wrf_structure.pdb"
  "CMakeFiles/bench_fig01_wrf_structure.dir/bench_fig01_wrf_structure.cpp.o"
  "CMakeFiles/bench_fig01_wrf_structure.dir/bench_fig01_wrf_structure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_wrf_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
