file(REMOVE_RECURSE
  "../bench/bench_fig12_hydroc"
  "../bench/bench_fig12_hydroc.pdb"
  "CMakeFiles/bench_fig12_hydroc.dir/bench_fig12_hydroc.cpp.o"
  "CMakeFiles/bench_fig12_hydroc.dir/bench_fig12_hydroc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hydroc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
