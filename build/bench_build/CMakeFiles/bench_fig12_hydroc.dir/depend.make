# Empty dependencies file for bench_fig12_hydroc.
# This may be replaced when dependencies are built.
