file(REMOVE_RECURSE
  "../bench/bench_fig10_bt_trends"
  "../bench/bench_fig10_bt_trends.pdb"
  "CMakeFiles/bench_fig10_bt_trends.dir/bench_fig10_bt_trends.cpp.o"
  "CMakeFiles/bench_fig10_bt_trends.dir/bench_fig10_bt_trends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bt_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
