# Empty compiler generated dependencies file for bench_fig10_bt_trends.
# This may be replaced when dependencies are built.
