file(REMOVE_RECURSE
  "../bench/bench_fig11_mrgenesis"
  "../bench/bench_fig11_mrgenesis.pdb"
  "CMakeFiles/bench_fig11_mrgenesis.dir/bench_fig11_mrgenesis.cpp.o"
  "CMakeFiles/bench_fig11_mrgenesis.dir/bench_fig11_mrgenesis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mrgenesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
