# Empty compiler generated dependencies file for bench_fig11_mrgenesis.
# This may be replaced when dependencies are built.
