file(REMOVE_RECURSE
  "../bench/bench_fig07_wrf_trends"
  "../bench/bench_fig07_wrf_trends.pdb"
  "CMakeFiles/bench_fig07_wrf_trends.dir/bench_fig07_wrf_trends.cpp.o"
  "CMakeFiles/bench_fig07_wrf_trends.dir/bench_fig07_wrf_trends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_wrf_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
