# Empty compiler generated dependencies file for bench_fig07_wrf_trends.
# This may be replaced when dependencies are built.
