file(REMOVE_RECURSE
  "../bench/perf_alignment"
  "../bench/perf_alignment.pdb"
  "CMakeFiles/perf_alignment.dir/perf_alignment.cpp.o"
  "CMakeFiles/perf_alignment.dir/perf_alignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
