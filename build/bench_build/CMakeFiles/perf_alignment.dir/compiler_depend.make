# Empty compiler generated dependencies file for perf_alignment.
# This may be replaced when dependencies are built.
