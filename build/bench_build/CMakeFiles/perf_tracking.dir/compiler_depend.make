# Empty compiler generated dependencies file for perf_tracking.
# This may be replaced when dependencies are built.
