file(REMOVE_RECURSE
  "../bench/perf_tracking"
  "../bench/perf_tracking.pdb"
  "CMakeFiles/perf_tracking.dir/perf_tracking.cpp.o"
  "CMakeFiles/perf_tracking.dir/perf_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
