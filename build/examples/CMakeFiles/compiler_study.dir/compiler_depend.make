# Empty compiler generated dependencies file for compiler_study.
# This may be replaced when dependencies are built.
