file(REMOVE_RECURSE
  "CMakeFiles/compiler_study.dir/compiler_study.cpp.o"
  "CMakeFiles/compiler_study.dir/compiler_study.cpp.o.d"
  "compiler_study"
  "compiler_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
