# Empty dependencies file for trace_inspect.
# This may be replaced when dependencies are built.
