# Empty compiler generated dependencies file for scalability_study.
# This may be replaced when dependencies are built.
