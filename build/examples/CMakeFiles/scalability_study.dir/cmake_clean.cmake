file(REMOVE_RECURSE
  "CMakeFiles/scalability_study.dir/scalability_study.cpp.o"
  "CMakeFiles/scalability_study.dir/scalability_study.cpp.o.d"
  "scalability_study"
  "scalability_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
