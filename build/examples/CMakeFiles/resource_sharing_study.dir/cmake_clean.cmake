file(REMOVE_RECURSE
  "CMakeFiles/resource_sharing_study.dir/resource_sharing_study.cpp.o"
  "CMakeFiles/resource_sharing_study.dir/resource_sharing_study.cpp.o.d"
  "resource_sharing_study"
  "resource_sharing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_sharing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
