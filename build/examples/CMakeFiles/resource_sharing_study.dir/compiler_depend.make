# Empty compiler generated dependencies file for resource_sharing_study.
# This may be replaced when dependencies are built.
