file(REMOVE_RECURSE
  "CMakeFiles/evolution_study.dir/evolution_study.cpp.o"
  "CMakeFiles/evolution_study.dir/evolution_study.cpp.o.d"
  "evolution_study"
  "evolution_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolution_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
