# Empty compiler generated dependencies file for evolution_study.
# This may be replaced when dependencies are built.
