# Empty dependencies file for perftrack.
# This may be replaced when dependencies are built.
