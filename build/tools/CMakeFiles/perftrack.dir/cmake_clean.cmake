file(REMOVE_RECURSE
  "CMakeFiles/perftrack.dir/perftrack.cpp.o"
  "CMakeFiles/perftrack.dir/perftrack.cpp.o.d"
  "perftrack"
  "perftrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perftrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
