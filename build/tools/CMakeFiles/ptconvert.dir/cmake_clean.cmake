file(REMOVE_RECURSE
  "CMakeFiles/ptconvert.dir/ptconvert.cpp.o"
  "CMakeFiles/ptconvert.dir/ptconvert.cpp.o.d"
  "ptconvert"
  "ptconvert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptconvert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
