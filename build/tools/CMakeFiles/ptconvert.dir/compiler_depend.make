# Empty compiler generated dependencies file for ptconvert.
# This may be replaced when dependencies are built.
