# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_paraver[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tracking[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(cli_smoke "bash" "/root/repo/tests/cli/smoke.sh" "/root/repo/build/tools" "/root/repo/build/examples")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
