# Empty dependencies file for test_align.
# This may be replaced when dependencies are built.
