file(REMOVE_RECURSE
  "CMakeFiles/test_align.dir/align/test_msa.cpp.o"
  "CMakeFiles/test_align.dir/align/test_msa.cpp.o.d"
  "CMakeFiles/test_align.dir/align/test_nw.cpp.o"
  "CMakeFiles/test_align.dir/align/test_nw.cpp.o.d"
  "test_align"
  "test_align.pdb"
  "test_align[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
