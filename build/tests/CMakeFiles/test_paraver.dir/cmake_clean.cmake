file(REMOVE_RECURSE
  "CMakeFiles/test_paraver.dir/paraver/test_pcf.cpp.o"
  "CMakeFiles/test_paraver.dir/paraver/test_pcf.cpp.o.d"
  "CMakeFiles/test_paraver.dir/paraver/test_prv.cpp.o"
  "CMakeFiles/test_paraver.dir/paraver/test_prv.cpp.o.d"
  "test_paraver"
  "test_paraver.pdb"
  "test_paraver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paraver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
