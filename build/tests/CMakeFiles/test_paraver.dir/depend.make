# Empty dependencies file for test_paraver.
# This may be replaced when dependencies are built.
