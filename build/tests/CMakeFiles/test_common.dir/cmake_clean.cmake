file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_log.cpp.o"
  "CMakeFiles/test_common.dir/common/test_log.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_strings.cpp.o"
  "CMakeFiles/test_common.dir/common/test_strings.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
