file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_app.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_app.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cache.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cache.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_phase.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_phase.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_studies.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_studies.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
