
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_app.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_app.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_app.cpp.o.d"
  "/root/repo/tests/sim/test_cache.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cpp.o.d"
  "/root/repo/tests/sim/test_phase.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_phase.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_phase.cpp.o.d"
  "/root/repo/tests/sim/test_studies.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_studies.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_studies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/pt_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/paraver/CMakeFiles/pt_paraver.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pt_align.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
