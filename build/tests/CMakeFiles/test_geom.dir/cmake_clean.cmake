file(REMOVE_RECURSE
  "CMakeFiles/test_geom.dir/geom/test_kdtree.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_kdtree.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_pointset.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_pointset.cpp.o.d"
  "test_geom"
  "test_geom.pdb"
  "test_geom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
