file(REMOVE_RECURSE
  "CMakeFiles/test_tracking.dir/tracking/test_combiner.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_combiner.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_correlation.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_correlation.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_edge_cases.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_edge_cases.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_evaluators.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_evaluators.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_gnuplot.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_gnuplot.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_html_report.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_html_report.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_multidim.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_multidim.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_pipeline.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_pipeline.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_prediction.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_prediction.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_relation.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_relation.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_scale.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_scale.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_tracker.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_tracker.cpp.o.d"
  "CMakeFiles/test_tracking.dir/tracking/test_trends.cpp.o"
  "CMakeFiles/test_tracking.dir/tracking/test_trends.cpp.o.d"
  "test_tracking"
  "test_tracking.pdb"
  "test_tracking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
