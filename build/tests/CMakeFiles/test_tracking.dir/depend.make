# Empty dependencies file for test_tracking.
# This may be replaced when dependencies are built.
