
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tracking/test_combiner.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_combiner.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_combiner.cpp.o.d"
  "/root/repo/tests/tracking/test_correlation.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_correlation.cpp.o.d"
  "/root/repo/tests/tracking/test_edge_cases.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_edge_cases.cpp.o.d"
  "/root/repo/tests/tracking/test_evaluators.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_evaluators.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_evaluators.cpp.o.d"
  "/root/repo/tests/tracking/test_gnuplot.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_gnuplot.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_gnuplot.cpp.o.d"
  "/root/repo/tests/tracking/test_html_report.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_html_report.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_html_report.cpp.o.d"
  "/root/repo/tests/tracking/test_multidim.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_multidim.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_multidim.cpp.o.d"
  "/root/repo/tests/tracking/test_pipeline.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_pipeline.cpp.o.d"
  "/root/repo/tests/tracking/test_prediction.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_prediction.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_prediction.cpp.o.d"
  "/root/repo/tests/tracking/test_relation.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_relation.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_relation.cpp.o.d"
  "/root/repo/tests/tracking/test_scale.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_scale.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_scale.cpp.o.d"
  "/root/repo/tests/tracking/test_tracker.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_tracker.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_tracker.cpp.o.d"
  "/root/repo/tests/tracking/test_trends.cpp" "tests/CMakeFiles/test_tracking.dir/tracking/test_trends.cpp.o" "gcc" "tests/CMakeFiles/test_tracking.dir/tracking/test_trends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/pt_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/paraver/CMakeFiles/pt_paraver.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pt_align.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
