file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/test_autotune.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_autotune.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_dbscan.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_dbscan.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_frame.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_frame.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_normalize.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_normalize.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_projection.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_projection.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_scatter.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_scatter.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
