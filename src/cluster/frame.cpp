#include "cluster/frame.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::cluster {

Frame Frame::Builder::finish() && {
  Frame frame;
  frame.label_ = std::move(label);
  frame.num_tasks_ = num_tasks;
  frame.source_ = std::move(source);
  frame.projection_ = std::move(projection);
  frame.labels_ = std::move(labels);
  frame.objects_ = std::move(objects);
  frame.task_sequences_ = std::move(task_sequences);
  frame.clustered_duration_ = clustered_duration;
  return frame;
}

const ClusterObject& Frame::object(ObjectId id) const {
  PT_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < objects_.size(),
             "object id out of range");
  return objects_[static_cast<std::size_t>(id)];
}

Frame assemble_frame(std::shared_ptr<const trace::Trace> trace,
                     Projection projection, std::vector<std::int32_t> labels,
                     const ClusteringParams& params) {
  PT_SPAN("assemble_frame");
  PT_REQUIRE(trace != nullptr, "trace must not be null");
  PT_REQUIRE(labels.size() == projection.size(),
             "labels/projection size mismatch");

  Frame frame;
  frame.label_ = trace->label();
  frame.num_tasks_ = trace->num_tasks();
  frame.source_ = trace;

  // --- Aggregate per raw cluster id. ---
  std::int32_t max_label = -1;
  for (auto l : labels) max_label = std::max(max_label, l);
  const auto raw_count = static_cast<std::size_t>(max_label + 1);

  std::vector<double> duration_of(raw_count, 0.0);
  std::vector<std::size_t> size_of(raw_count, 0);
  for (std::size_t row = 0; row < labels.size(); ++row) {
    if (labels[row] == kNoise) continue;
    auto c = static_cast<std::size_t>(labels[row]);
    duration_of[c] += projection.durations[row];
    ++size_of[c];
  }

  double total_clustered = std::accumulate(duration_of.begin(),
                                           duration_of.end(), 0.0);

  // --- Optionally demote tiny clusters to noise. ---
  std::vector<bool> keep(raw_count, true);
  if (params.min_cluster_time_fraction > 0.0 && total_clustered > 0.0) {
    for (std::size_t c = 0; c < raw_count; ++c)
      keep[c] = duration_of[c] >=
                params.min_cluster_time_fraction * total_clustered;
  }

  // --- Renumber surviving clusters by decreasing total duration
  //     (ties: original id, so renumbering is deterministic). ---
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < raw_count; ++c)
    if (keep[c] && size_of[c] > 0) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (duration_of[a] != duration_of[b])
      return duration_of[a] > duration_of[b];
    return a < b;
  });
  std::vector<std::int32_t> renumber(raw_count, kNoise);
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    renumber[order[rank]] = static_cast<std::int32_t>(rank);

  frame.labels_.assign(labels.size(), kNoise);
  for (std::size_t row = 0; row < labels.size(); ++row)
    if (labels[row] != kNoise)
      frame.labels_[row] = renumber[static_cast<std::size_t>(labels[row])];

  // --- Build cluster objects. ---
  const std::size_t dims = projection.points.dims();
  frame.objects_.resize(order.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    ClusterObject& obj = frame.objects_[rank];
    obj.id = static_cast<ObjectId>(rank);
    obj.centroid.assign(dims, 0.0);
    obj.total_duration = duration_of[order[rank]];
  }
  for (std::size_t row = 0; row < frame.labels_.size(); ++row) {
    std::int32_t id = frame.labels_[row];
    if (id == kNoise) continue;
    ClusterObject& obj = frame.objects_[static_cast<std::size_t>(id)];
    obj.rows.push_back(static_cast<std::uint32_t>(row));
    auto p = projection.points[row];
    for (std::size_t d = 0; d < dims; ++d) obj.centroid[d] += p[d];
    const trace::Burst& burst =
        trace->bursts()[projection.burst_index[row]];
    obj.callstack_weight[burst.callstack] += 1.0;
  }
  for (ClusterObject& obj : frame.objects_) {
    if (!obj.rows.empty()) {
      for (double& v : obj.centroid) v /= static_cast<double>(obj.rows.size());
      for (auto& [cs, w] : obj.callstack_weight)
        w /= static_cast<double>(obj.rows.size());
    }
    obj.metric_mean = obj.centroid;
    frame.clustered_duration_ += obj.total_duration;
  }

  // --- Per-task cluster sequences (noise rows skipped). ---
  // Projection rows preserve burst order, and Trace guarantees per-task time
  // order, so walking rows grouped by task yields execution order.
  std::vector<std::vector<align::Symbol>> seqs(trace->num_tasks());
  for (std::size_t row = 0; row < frame.labels_.size(); ++row) {
    std::int32_t id = frame.labels_[row];
    if (id == kNoise) continue;
    const trace::Burst& burst =
        trace->bursts()[projection.burst_index[row]];
    auto& seq = seqs[burst.task];
    if (params.collapse_sequence_runs && !seq.empty() && seq.back() == id)
      continue;
    seq.push_back(id);
  }
  frame.task_sequences_ = std::move(seqs);

  frame.projection_ = std::move(projection);
  if (obs::enabled()) {
    PT_COUNTER("clusters_per_frame", static_cast<double>(order.size()));
    PT_COUNTER("clusters_demoted",
               static_cast<double>(raw_count - order.size()));
  }
  return frame;
}

Frame build_frame(std::shared_ptr<const trace::Trace> trace,
                  const ClusteringParams& params) {
  PT_SPAN("build_frame");
  PT_REQUIRE(trace != nullptr, "trace must not be null");
  Projection proj = project(*trace, params.projection);
  Transform transform = Transform::fit(proj.points, params.log_scale);
  geom::PointSet normalized = transform.apply(proj.points);
  DbscanResult result = dbscan(normalized, params.dbscan);
  return assemble_frame(std::move(trace), std::move(proj),
                        std::move(result.labels), params);
}

}  // namespace perftrack::cluster
