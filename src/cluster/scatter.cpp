#include "cluster/scatter.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "trace/metrics.hpp"

namespace perftrack::cluster {

namespace {
bool is_nan(double v) { return std::isnan(v); }

double axis_value(double raw, bool log_scale) {
  return log_scale ? std::log10(std::max(raw, 1e-12)) : raw;
}
}  // namespace

std::string ascii_scatter(const Frame& frame, const ScatterOptions& options,
                          const std::vector<std::int32_t>* relabel) {
  PT_REQUIRE(options.width > 2 && options.height > 1,
             "scatter grid too small");
  const Projection& proj = frame.projection();
  PT_REQUIRE(static_cast<std::size_t>(options.x_axis) < proj.points.dims() &&
                 static_cast<std::size_t>(options.y_axis) < proj.points.dims(),
             "axis index out of range");

  const auto xa = static_cast<std::size_t>(options.x_axis);
  const auto ya = static_cast<std::size_t>(options.y_axis);

  double x_min = options.x_min, x_max = options.x_max;
  double y_min = options.y_min, y_max = options.y_max;
  if (is_nan(x_min) || is_nan(x_max) || is_nan(y_min) || is_nan(y_max)) {
    double fx_min = 1e300, fx_max = -1e300, fy_min = 1e300, fy_max = -1e300;
    for (std::size_t row = 0; row < proj.size(); ++row) {
      if (!options.show_noise && frame.labels()[row] == kNoise) continue;
      auto p = proj.points[row];
      fx_min = std::min(fx_min, p[xa]);
      fx_max = std::max(fx_max, p[xa]);
      fy_min = std::min(fy_min, p[ya]);
      fy_max = std::max(fy_max, p[ya]);
    }
    if (fx_min > fx_max) {  // empty frame
      fx_min = fy_min = 0.0;
      fx_max = fy_max = 1.0;
    }
    if (is_nan(x_min)) x_min = fx_min;
    if (is_nan(x_max)) x_max = fx_max;
    if (is_nan(y_min)) y_min = fy_min;
    if (is_nan(y_max)) y_max = fy_max;
  }
  double ylo = axis_value(y_min, options.log_y);
  double yhi = axis_value(y_max, options.log_y);
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (yhi <= ylo) yhi = ylo + 1.0;

  const int w = options.width, h = options.height;
  // cell -> votes per display id; densest id wins the glyph.
  std::vector<std::map<std::int32_t, int>> votes(
      static_cast<std::size_t>(w * h));

  for (std::size_t row = 0; row < proj.size(); ++row) {
    std::int32_t id = frame.labels()[row];
    if (id == kNoise && !options.show_noise) continue;
    std::int32_t display =
        (relabel && id != kNoise) ? (*relabel)[static_cast<std::size_t>(id)]
                                  : id;
    auto p = proj.points[row];
    double xt = (p[xa] - x_min) / (x_max - x_min);
    double yt = (axis_value(p[ya], options.log_y) - ylo) / (yhi - ylo);
    int cx = std::clamp(static_cast<int>(xt * (w - 1)), 0, w - 1);
    int cy = std::clamp(static_cast<int>(yt * (h - 1)), 0, h - 1);
    ++votes[static_cast<std::size_t>(cy * w + cx)][display];
  }

  std::string out;
  out += "  " + frame.label() + "\n";
  for (int gy = h - 1; gy >= 0; --gy) {
    std::string line = "  |";
    for (int gx = 0; gx < w; ++gx) {
      const auto& cell = votes[static_cast<std::size_t>(gy * w + gx)];
      if (cell.empty()) {
        line += ' ';
        continue;
      }
      auto best = cell.begin();
      for (auto it = cell.begin(); it != cell.end(); ++it)
        if (it->second > best->second) best = it;
      if (best->first == kNoise) {
        line += '.';
      } else {
        const std::string& sym = options.symbols;
        line += sym[static_cast<std::size_t>(best->first) % sym.size()];
      }
    }
    out += line + "\n";
  }
  out += "  +" + std::string(static_cast<std::size_t>(w), '-') + "\n";
  out += "   x: [" + format_si(x_min) + ", " + format_si(x_max) + "]  y: [" +
         format_si(y_min) + ", " + format_si(y_max) +
         (options.log_y ? "] (log)" : "]") + "\n";
  return out;
}

std::string scatter_csv(const Frame& frame,
                        const std::vector<std::int32_t>* relabel) {
  const Projection& proj = frame.projection();
  std::string out = "cluster";
  for (auto m : proj.metrics)
    out += "," + std::string(trace::metric_name(m));
  out += "\n";
  for (std::size_t row = 0; row < proj.size(); ++row) {
    std::int32_t id = frame.labels()[row];
    if (id == kNoise) continue;
    std::int32_t display =
        relabel ? (*relabel)[static_cast<std::size_t>(id)] : id;
    out += std::to_string(display + 1);
    auto p = proj.points[row];
    for (std::size_t d = 0; d < proj.points.dims(); ++d)
      out += "," + format_double(p[d], 6);
    out += "\n";
  }
  return out;
}

}  // namespace perftrack::cluster
