#include "cluster/projection.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::cluster {

double duration_threshold_for_coverage(const trace::Trace& trace,
                                       double fraction) {
  PT_REQUIRE(fraction <= 1.0, "coverage fraction must be <= 1");
  if (fraction <= 0.0) return 0.0;
  std::vector<double> durations;
  durations.reserve(trace.burst_count());
  for (const auto& b : trace.bursts()) durations.push_back(b.duration);
  std::sort(durations.begin(), durations.end(), std::greater<>());
  double total = 0.0;
  for (double d : durations) total += d;
  if (total <= 0.0) return 0.0;
  double cumulative = 0.0;
  for (double d : durations) {
    cumulative += d;
    if (cumulative >= fraction * total) return d;
  }
  return 0.0;
}

Projection project(const trace::Trace& trace, const ProjectionParams& params) {
  PT_SPAN("project");
  PT_REQUIRE(!params.metrics.empty(), "projection needs at least one metric");

  double threshold = params.min_duration;
  if (params.time_coverage > 0.0)
    threshold = std::max(threshold, duration_threshold_for_coverage(
                                        trace, params.time_coverage));

  Projection out;
  out.metrics = params.metrics;
  out.points = geom::PointSet(params.metrics.size());
  out.points.reserve(trace.burst_count());

  std::vector<double> coords(params.metrics.size());
  auto bursts = trace.bursts();
  for (std::uint32_t i = 0; i < bursts.size(); ++i) {
    const trace::Burst& b = bursts[i];
    if (b.duration < threshold) continue;
    for (std::size_t d = 0; d < params.metrics.size(); ++d)
      coords[d] = trace::evaluate_metric(b, params.metrics[d]);
    out.points.add(coords);
    out.burst_index.push_back(i);
    out.durations.push_back(b.duration);
  }
  if (obs::enabled()) {
    PT_COUNTER("bursts_ingested", static_cast<double>(bursts.size()));
    PT_COUNTER("bursts_projected", static_cast<double>(out.points.size()));
  }
  return out;
}

}  // namespace perftrack::cluster
