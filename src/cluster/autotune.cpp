#include "cluster/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "geom/kdtree.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::cluster {

AutotuneResult suggest_dbscan_params(const geom::PointSet& points,
                                     std::size_t min_pts) {
  PT_SPAN("autotune");
  PT_REQUIRE(min_pts >= 1, "min_pts must be >= 1");
  PT_REQUIRE(points.size() > min_pts,
             "auto-tuning needs more points than min_pts");

  geom::KdTree tree(points);
  AutotuneResult result;
  result.min_pts = min_pts;
  result.k_distances.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    // k_nearest includes the point itself at distance 0, so ask for
    // min_pts + 1 and take the last — the distance to the min_pts-th
    // neighbour, matching DBSCAN's neighbourhood count convention.
    auto neighbours = tree.k_nearest(points[i], min_pts + 1);
    std::size_t kth = neighbours.back();
    result.k_distances.push_back(
        geom::distance(points[i], points[kth]));
  }
  std::sort(result.k_distances.begin(), result.k_distances.end(),
            std::greater<>());

  // Knee: the curve point farthest from the segment joining its endpoints.
  const auto& curve = result.k_distances;
  const double n = static_cast<double>(curve.size() - 1);
  const double y0 = curve.front();
  const double y1 = curve.back();
  // Normalise both axes so the distance is scale-free.
  const double y_span = std::max(y0 - y1, 1e-300);
  double best = -1.0;
  std::size_t best_index = curve.size() - 1;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    double x = static_cast<double>(i) / n;
    double y = (curve[i] - y1) / y_span;
    // Segment from (0,1) to (1,0): distance ∝ |x + y - 1|.
    double deviation = std::fabs(x + y - 1.0);
    if (deviation > best) {
      best = deviation;
      best_index = i;
    }
  }
  result.knee_index = best_index;
  result.eps = curve[best_index];
  if (result.eps <= 0.0) {
    // Degenerate data (duplicates): fall back to a small positive radius.
    result.eps = 1e-6;
  }
  PT_GAUGE("autotune_eps", result.eps);
  return result;
}

}  // namespace perftrack::cluster
