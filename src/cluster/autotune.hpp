#pragma once
// DBSCAN parameter auto-tuning: the k-distance knee heuristic.
//
// The paper's analyst-facing pipeline does not assume prior knowledge of
// the application — that should extend to the clustering radius. The
// classic heuristic (Ester et al., also used across the BSC clustering
// line): compute every point's distance to its k-th nearest neighbour,
// sort descending, and pick eps at the curve's knee — inside a cluster
// the k-distance is small and flat, noise points drive the steep head of
// the curve, and the knee separates the two regimes. The knee is located
// as the point of maximum distance to the straight line joining the
// curve's endpoints.

#include <cstddef>
#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::cluster {

struct AutotuneResult {
  double eps = 0.0;
  std::size_t min_pts = 0;
  /// Sorted (descending) k-distance curve, for plotting/inspection.
  std::vector<double> k_distances;
  /// Index of the knee within k_distances.
  std::size_t knee_index = 0;
};

/// Suggest an eps for `points` (in the normalised clustering space) at the
/// given min_pts. Uses k = min_pts as the k-distance order, per the
/// original heuristic. Needs at least min_pts + 1 points.
AutotuneResult suggest_dbscan_params(const geom::PointSet& points,
                                     std::size_t min_pts = 5);

}  // namespace perftrack::cluster
