#pragma once
// Frames: the "images" of the tracking pipeline.
//
// A Frame is one experiment reduced to its objects (paper §2): the projected
// point cloud, the DBSCAN labels, per-cluster aggregates (centroid, metric
// means, call-stack reference weights, total duration), and the per-task
// time-ordered sequences of cluster ids the SPMD and execution-sequence
// evaluators consume. Clusters are renumbered by decreasing total duration,
// mirroring the BSC convention that cluster 1 is the most time-consuming
// region.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "align/nw.hpp"
#include "cluster/dbscan.hpp"
#include "cluster/normalize.hpp"
#include "cluster/projection.hpp"
#include "trace/trace.hpp"

namespace perftrack::cluster {

/// Cluster identifier within a frame: 0-based, dense. Display ids are 1-based.
using ObjectId = std::int32_t;

struct ClusterObject {
  ObjectId id = 0;

  /// Projection rows belonging to this cluster, ascending.
  std::vector<std::uint32_t> rows;

  /// Mean coordinates in the raw metric space.
  std::vector<double> centroid;

  /// Per-axis mean of the raw metric values (same as centroid; kept for
  /// clarity when axes are a subset of reported metrics).
  std::vector<double> metric_mean;

  /// Fraction of the cluster's bursts starting at each source location.
  std::map<trace::CallstackId, double> callstack_weight;

  /// Sum of burst durations (seconds) over all member bursts.
  double total_duration = 0.0;

  std::size_t size() const { return rows.size(); }
};

struct ClusteringParams {
  ProjectionParams projection;
  DbscanParams dbscan;

  /// Per-axis log10 scaling before min-max normalisation (empty = none).
  std::vector<bool> log_scale;

  /// Collapse runs of equal consecutive cluster ids in the per-task
  /// sequences (several bursts of the same phase in a row become one
  /// sequence symbol). The paper's phase sequences are at this granularity.
  bool collapse_sequence_runs = true;

  /// Drop clusters whose total duration is below this fraction of the
  /// frame's total clustered duration (tiny objects are irrelevant to the
  /// analysis and destabilise tracking). 0 disables.
  double min_cluster_time_fraction = 0.0;
};

class Frame {
public:
  Frame() = default;

  const std::string& label() const { return label_; }
  std::uint32_t num_tasks() const { return num_tasks_; }
  const trace::Trace& source() const { return *source_; }
  std::shared_ptr<const trace::Trace> source_ptr() const { return source_; }

  const Projection& projection() const { return projection_; }

  /// Per projection row: cluster id or kNoise.
  const std::vector<std::int32_t>& labels() const { return labels_; }

  const std::vector<ClusterObject>& objects() const { return objects_; }
  std::size_t object_count() const { return objects_.size(); }
  const ClusterObject& object(ObjectId id) const;

  /// Per-task sequence of cluster ids in execution order (noise skipped).
  const std::vector<std::vector<align::Symbol>>& task_sequences() const {
    return task_sequences_;
  }

  /// Sum of burst durations over all clustered (non-noise) rows.
  double clustered_duration() const { return clustered_duration_; }

  /// Builder used by build_frame and by tests that craft frames directly.
  struct Builder;

private:
  std::string label_;
  std::uint32_t num_tasks_ = 0;
  std::shared_ptr<const trace::Trace> source_;
  Projection projection_;
  std::vector<std::int32_t> labels_;
  std::vector<ClusterObject> objects_;
  std::vector<std::vector<align::Symbol>> task_sequences_;
  double clustered_duration_ = 0.0;

  friend struct Builder;
  friend Frame build_frame(std::shared_ptr<const trace::Trace>,
                           const ClusteringParams&);
  friend Frame assemble_frame(std::shared_ptr<const trace::Trace>,
                              Projection, std::vector<std::int32_t>,
                              const ClusteringParams&);
};

/// Assembles a Frame from explicitly provided parts, bypassing the
/// clustering pipeline. Used by the frame store's deserialiser and by tests
/// that craft frames directly; callers are responsible for the invariants
/// build_frame guarantees (dense object ids ordered by decreasing duration,
/// labels within range, row/projection agreement).
struct Frame::Builder {
  std::string label;
  std::uint32_t num_tasks = 0;
  std::shared_ptr<const trace::Trace> source;
  Projection projection;
  std::vector<std::int32_t> labels;
  std::vector<ClusterObject> objects;
  std::vector<std::vector<align::Symbol>> task_sequences;
  double clustered_duration = 0.0;

  Frame finish() &&;
};

/// Cluster a trace into a Frame. The trace is kept alive via shared_ptr.
Frame build_frame(std::shared_ptr<const trace::Trace> trace,
                  const ClusteringParams& params);

/// Assemble a Frame from an existing projection + labelling (used by
/// build_frame after DBSCAN, and by tests injecting synthetic labels).
/// Labels use kNoise (-1) for unclustered rows; other values are renumbered
/// by decreasing cluster duration.
Frame assemble_frame(std::shared_ptr<const trace::Trace> trace,
                     Projection projection, std::vector<std::int32_t> labels,
                     const ClusteringParams& params);

}  // namespace perftrack::cluster
