#pragma once
// Projection of a trace into a metric space.
//
// Selects the bursts worth analysing (the paper keeps computations above a
// duration threshold so the identified objects represent a large share of
// the application time) and evaluates the chosen metrics on each, producing
// the point cloud the clustering stage consumes. Row i of the point set maps
// back to a trace burst through burst_index[i].

#include <cstdint>
#include <vector>

#include "geom/pointset.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace perftrack::cluster {

struct ProjectionParams {
  /// Metric-space axes; defaults to the paper's usual
  /// (Instructions Completed, IPC) pair.
  std::vector<trace::Metric> metrics{trace::Metric::Instructions,
                                     trace::Metric::Ipc};

  /// Drop bursts shorter than this many seconds.
  double min_duration = 0.0;

  /// If > 0, additionally derive a duration threshold so the retained
  /// bursts cover at least this fraction of total computation time
  /// (longest bursts first). Typical value: 0.9.
  double time_coverage = 0.0;
};

struct Projection {
  std::vector<trace::Metric> metrics;
  geom::PointSet points;                   ///< raw metric coordinates
  std::vector<std::uint32_t> burst_index;  ///< row -> index into trace.bursts()
  std::vector<double> durations;           ///< row -> burst duration (hot path copy)

  std::size_t size() const { return burst_index.size(); }
};

/// Duration threshold such that bursts with duration >= threshold cover at
/// least `fraction` of the trace's total computation time. fraction in
/// [0, 1]; returns 0 for fraction <= 0.
double duration_threshold_for_coverage(const trace::Trace& trace,
                                       double fraction);

/// Build the point cloud for `trace` under `params`.
Projection project(const trace::Trace& trace, const ProjectionParams& params);

}  // namespace perftrack::cluster
