#include "cluster/normalize.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::cluster {

namespace {
constexpr double kLogFloor = 1e-12;

double maybe_log(double x, bool log_scale) {
  return log_scale ? std::log10(std::max(x, kLogFloor)) : x;
}
}  // namespace

Transform Transform::fit(const geom::PointSet& points,
                         const std::vector<bool>& log_scale) {
  PT_SPAN("normalize_fit");
  PT_REQUIRE(log_scale.empty() || log_scale.size() == points.dims(),
             "log_scale length must match dimensionality");
  Transform t;
  const std::size_t dims = points.dims();
  t.log_.assign(dims, false);
  for (std::size_t d = 0; d < log_scale.size(); ++d) t.log_[d] = log_scale[d];
  t.lo_.assign(dims, std::numeric_limits<double>::infinity());
  t.hi_.assign(dims, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto p = points[i];
    for (std::size_t d = 0; d < dims; ++d) {
      double v = maybe_log(p[d], t.log_[d]);
      t.lo_[d] = std::min(t.lo_[d], v);
      t.hi_[d] = std::max(t.hi_[d], v);
    }
  }
  if (points.empty()) {
    t.lo_.assign(dims, 0.0);
    t.hi_.assign(dims, 1.0);
  }
  return t;
}

geom::PointSet Transform::apply(const geom::PointSet& points) const {
  PT_SPAN("normalize_apply");
  PT_REQUIRE(points.dims() == dims(), "dimensionality mismatch");
  geom::PointSet out(points.dims());
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    out.add(apply_one(points[i]));
  return out;
}

std::vector<double> Transform::apply_one(std::span<const double> coords) const {
  PT_REQUIRE(coords.size() == dims(), "dimensionality mismatch");
  std::vector<double> out(coords.size());
  for (std::size_t d = 0; d < coords.size(); ++d) {
    double v = maybe_log(coords[d], log_[d]);
    double range = hi_[d] - lo_[d];
    out[d] = range > 0.0 ? (v - lo_[d]) / range : 0.5;
  }
  return out;
}

}  // namespace perftrack::cluster
