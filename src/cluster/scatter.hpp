#pragma once
// Scatter-plot rendering of frames.
//
// The paper communicates frames as 2-D scatter plots (Figs. 1, 6, 8, 9).
// For terminal output we rasterise a frame into a character grid where each
// cell shows the densest cluster's symbol; for external plotting we emit a
// per-point CSV (x, y, cluster).

#include <string>

#include "cluster/frame.hpp"

namespace perftrack::cluster {

struct ScatterOptions {
  int width = 72;    ///< grid columns
  int height = 20;   ///< grid rows
  int x_axis = 0;    ///< projection dimension drawn on X
  int y_axis = 1;    ///< projection dimension drawn on Y
  bool log_y = false;  ///< render Y on a log10 scale
  bool show_noise = false;

  /// Optional fixed axis ranges (used to render several frames on common
  /// axes); NaN = derive from the frame.
  double x_min = nan_, x_max = nan_, y_min = nan_, y_max = nan_;

  /// Symbols to label clusters with; cluster id i uses symbols[i % size].
  std::string symbols = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";

  static constexpr double nan_ = __builtin_nan("");
};

/// Render the frame as an ASCII scatter plot with axis labels.
/// `relabel` (optional) maps frame-local object ids to display ids; pass
/// nullptr to use the frame's own numbering.
std::string ascii_scatter(const Frame& frame, const ScatterOptions& options,
                          const std::vector<std::int32_t>* relabel = nullptr);

/// Per-point CSV: one row per clustered burst with the projected
/// coordinates and cluster id (1-based display numbering).
std::string scatter_csv(const Frame& frame,
                        const std::vector<std::int32_t>* relabel = nullptr);

}  // namespace perftrack::cluster
