#include "cluster/dbscan.hpp"

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "geom/kdtree.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::cluster {

std::size_t DbscanResult::noise_count() const {
  std::size_t n = 0;
  for (auto l : labels)
    if (l == kNoise) ++n;
  return n;
}

DbscanResult dbscan(const geom::PointSet& points, const DbscanParams& params) {
  PT_SPAN("dbscan");
  PT_FAILPOINT("dbscan");
  PT_REQUIRE(params.eps > 0.0, "eps must be positive");
  PT_REQUIRE(params.min_pts >= 1, "min_pts must be >= 1");

  const std::size_t n = points.size();
  DbscanResult result;
  result.labels.assign(n, kNoise);
  if (n == 0) return result;

  geom::KdTree tree(points);

  // -2 = unvisited, kNoise = visited and (so far) noise, >=0 = cluster id.
  constexpr std::int32_t kUnvisited = -2;
  std::vector<std::int32_t>& labels = result.labels;
  labels.assign(n, kUnvisited);

  std::vector<std::size_t> neighbours;
  std::vector<std::size_t> frontier;

  std::int32_t next_cluster = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (labels[seed] != kUnvisited) continue;
    tree.radius_query(points[seed], params.eps, neighbours);
    if (neighbours.size() < params.min_pts) {
      labels[seed] = kNoise;
      continue;
    }
    // Start a new cluster and expand it breadth-first from the seed.
    const std::int32_t cluster = next_cluster++;
    labels[seed] = cluster;
    frontier.assign(neighbours.begin(), neighbours.end());
    while (!frontier.empty()) {
      std::size_t p = frontier.back();
      frontier.pop_back();
      if (labels[p] == kNoise) labels[p] = cluster;  // border point
      if (labels[p] != kUnvisited) continue;
      labels[p] = cluster;
      tree.radius_query(points[p], params.eps, neighbours);
      if (neighbours.size() >= params.min_pts) {
        // p is a core point: its whole neighbourhood joins the cluster.
        for (std::size_t q : neighbours)
          if (labels[q] == kUnvisited || labels[q] == kNoise)
            frontier.push_back(q);
      }
    }
  }

  for (auto& l : labels)
    PT_ASSERT(l != kUnvisited, "dbscan left a point unvisited");
  result.cluster_count = next_cluster;
  if (obs::enabled()) {
    PT_COUNTER("dbscan_points", static_cast<double>(n));
    PT_COUNTER("dbscan_clusters", static_cast<double>(next_cluster));
    PT_COUNTER("noise_points", static_cast<double>(result.noise_count()));
  }
  return result;
}

}  // namespace perftrack::cluster
