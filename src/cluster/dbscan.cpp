#include "cluster/dbscan.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "geom/grid_index.hpp"
#include "geom/kdtree.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::cluster {

namespace {

// -2 = unvisited, kNoise = visited and (so far) noise, >=0 = cluster id.
constexpr std::int32_t kUnvisited = -2;

/// Auto mode only accepts a grid this large; beyond it (high-dimensional or
/// wildly spread data) the kd-tree wins on memory and build time.
constexpr std::size_t kMaxGridCells = std::size_t{1} << 20;

/// Original engine: a kd-tree radius query per visited point. Kept as the
/// fallback for high-dimensional inputs and as the reference the grid
/// engine is tested against.
std::int32_t expand_kdtree(const geom::PointSet& points,
                           const DbscanParams& params,
                           std::vector<std::int32_t>& labels) {
  geom::KdTree tree(points);
  const std::size_t n = points.size();
  std::vector<std::size_t> neighbours;
  std::vector<std::size_t> frontier;

  std::int32_t next_cluster = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (labels[seed] != kUnvisited) continue;
    tree.radius_query(points[seed], params.eps, neighbours);
    if (neighbours.size() < params.min_pts) {
      labels[seed] = kNoise;
      continue;
    }
    // Start a new cluster and expand it breadth-first from the seed.
    const std::int32_t cluster = next_cluster++;
    labels[seed] = cluster;
    frontier.assign(neighbours.begin(), neighbours.end());
    while (!frontier.empty()) {
      std::size_t p = frontier.back();
      frontier.pop_back();
      if (labels[p] == kNoise) labels[p] = cluster;  // border point
      if (labels[p] != kUnvisited) continue;
      labels[p] = cluster;
      tree.radius_query(points[p], params.eps, neighbours);
      if (neighbours.size() >= params.min_pts) {
        // p is a core point: its whole neighbourhood joins the cluster.
        for (std::size_t q : neighbours)
          if (labels[q] == kUnvisited || labels[q] == kNoise)
            frontier.push_back(q);
      }
    }
  }
  return next_cluster;
}

/// Grid cell edge for the given eps: eps / sqrt(dims), shrunk by a hair so
/// the cell diagonal stays <= eps under floating-point rounding. With that
/// invariant two points sharing a cell are always eps-neighbours, which is
/// what lets the grid engine treat dense cells wholesale.
double grid_cell_size(double eps, std::size_t dims) {
  return eps / std::sqrt(static_cast<double>(dims)) * (1.0 - 1e-12);
}

/// Grid engine (Gunawan's exact construction). Equivalent to the serial
/// BFS because DBSCAN labels are order-independent facts of the eps-graph:
///   - a point is core iff it has >= min_pts neighbours (incl. itself);
///   - clusters are the connected components of the core points, and the
///     serial scan numbers them by their minimum core index;
///   - a border point joins the lowest-numbered cluster with a core
///     neighbour (the first one whose BFS reaches it); the rest is noise.
/// The cell structure makes each fact cheap: a cell with >= min_pts
/// occupants is all-core with no distance tests at all, sparse cells count
/// neighbours with an early exit at min_pts, and component merging needs
/// only one in-range core pair per neighbouring cell pair. Every
/// neighbourhood is scanned at most once, most never.
std::int32_t expand_grid(const geom::PointSet& points,
                         const DbscanParams& params,
                         std::vector<std::int32_t>& labels) {
  const std::size_t n = points.size();
  const std::size_t dims = points.dims();
  const double eps_sq = params.eps * params.eps;
  geom::GridIndex grid(points, grid_cell_size(params.eps, dims));
  const std::size_t cells = grid.cell_count();

  // --- Core flags. ---
  std::vector<std::uint8_t> is_core(n, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    const auto bucket = grid.bucket(c);
    if (bucket.empty()) continue;
    if (bucket.size() >= params.min_pts) {
      for (std::uint32_t p : bucket) is_core[p] = 1;
      continue;
    }
    for (std::uint32_t p : bucket) {
      std::size_t count = bucket.size();  // same cell => within eps
      grid.for_each_cell_in_reach(c, params.eps, [&](std::size_t other) {
        if (count >= params.min_pts) return;  // saturated
        for (std::uint32_t q : grid.bucket(other)) {
          if (geom::squared_distance(points[p], points[q]) <= eps_sq &&
              ++count >= params.min_pts)
            break;
        }
      });
      if (count >= params.min_pts) is_core[p] = 1;
    }
  }

  // --- Union-find over core points. Cores sharing a cell are mutual
  // neighbours, so each cell contributes one representative; neighbouring
  // cells merge on the first core pair within eps (skipped entirely once
  // their components already coincide).
  std::vector<std::uint32_t> parent(n);
  for (std::size_t i = 0; i < n; ++i)
    parent[i] = static_cast<std::uint32_t>(i);
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  constexpr std::uint32_t kNoCore = 0xffffffffu;
  std::vector<std::uint32_t> cell_rep(cells, kNoCore);
  for (std::size_t c = 0; c < cells; ++c) {
    for (std::uint32_t p : grid.bucket(c)) {
      if (!is_core[p]) continue;
      if (cell_rep[c] == kNoCore)
        cell_rep[c] = p;
      else
        parent[find(p)] = find(cell_rep[c]);
    }
  }
  for (std::size_t c = 0; c < cells; ++c) {
    if (cell_rep[c] == kNoCore) continue;
    grid.for_each_cell_in_reach(c, params.eps, [&](std::size_t other) {
      if (other < c || cell_rep[other] == kNoCore) return;  // pair once
      const std::uint32_t root = find(cell_rep[c]);
      if (root == find(cell_rep[other])) return;
      for (std::uint32_t p : grid.bucket(c)) {
        if (!is_core[p]) continue;
        for (std::uint32_t q : grid.bucket(other)) {
          if (!is_core[q]) continue;
          if (geom::squared_distance(points[p], points[q]) <= eps_sq) {
            parent[find(q)] = root;
            return;
          }
        }
      }
    });
  }

  // --- Number components by minimum core index (the serial seed order)
  // and label the cores.
  std::int32_t next_cluster = 0;
  std::vector<std::int32_t> id_of_root(n, kUnvisited);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_core[i]) continue;
    const std::uint32_t root = find(static_cast<std::uint32_t>(i));
    if (id_of_root[root] == kUnvisited) id_of_root[root] = next_cluster++;
    labels[i] = id_of_root[root];
  }

  // --- Border points take the lowest-numbered adjacent cluster; points
  // with no core neighbour are noise. Dense cells have no non-cores.
  for (std::size_t c = 0; c < cells; ++c) {
    const auto bucket = grid.bucket(c);
    if (bucket.empty() || bucket.size() >= params.min_pts) continue;
    for (std::uint32_t p : bucket) {
      if (is_core[p]) continue;
      std::int32_t best = kUnvisited;
      auto consider = [&](std::span<const std::uint32_t> candidates,
                          bool test_distance) {
        for (std::uint32_t q : candidates) {
          if (!is_core[q]) continue;
          if (test_distance &&
              geom::squared_distance(points[p], points[q]) > eps_sq)
            continue;
          if (best == kUnvisited || labels[q] < best) best = labels[q];
        }
      };
      consider(bucket, false);  // same cell => within eps
      grid.for_each_cell_in_reach(c, params.eps, [&](std::size_t other) {
        consider(grid.bucket(other), true);
      });
      labels[p] = best == kUnvisited ? kNoise : best;
    }
  }
  return next_cluster;
}

bool grid_applicable(const geom::PointSet& points, const DbscanParams& params) {
  return points.dims() >= 1 && points.dims() <= 3 &&
         geom::GridIndex::plan_cells(
             points, grid_cell_size(params.eps, points.dims()),
             kMaxGridCells) != 0;
}

}  // namespace

std::size_t DbscanResult::noise_count() const {
  std::size_t n = 0;
  for (auto l : labels)
    if (l == kNoise) ++n;
  return n;
}

DbscanResult dbscan(const geom::PointSet& points, const DbscanParams& params) {
  PT_SPAN("dbscan");
  PT_FAILPOINT("dbscan");
  PT_REQUIRE(params.eps > 0.0, "eps must be positive");
  PT_REQUIRE(params.min_pts >= 1, "min_pts must be >= 1");

  const std::size_t n = points.size();
  DbscanResult result;
  result.labels.assign(n, kNoise);
  if (n == 0) return result;

  std::vector<std::int32_t>& labels = result.labels;
  labels.assign(n, kUnvisited);

  const bool use_grid = params.index == DbscanIndex::kGrid ||
                        (params.index == DbscanIndex::kAuto &&
                         grid_applicable(points, params));
  const std::int32_t clusters = use_grid
                                    ? expand_grid(points, params, labels)
                                    : expand_kdtree(points, params, labels);

  for (auto& l : labels)
    PT_ASSERT(l != kUnvisited, "dbscan left a point unvisited");
  result.cluster_count = clusters;
  if (obs::enabled()) {
    PT_COUNTER("dbscan_points", static_cast<double>(n));
    PT_COUNTER("dbscan_clusters", static_cast<double>(clusters));
    PT_COUNTER("noise_points", static_cast<double>(result.noise_count()));
  }
  return result;
}

}  // namespace perftrack::cluster
