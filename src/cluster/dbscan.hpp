#pragma once
// DBSCAN density-based clustering.
//
// The object-recognition step of the pipeline (paper §2, following González
// et al. [7, 9]): CPU bursts that are close in the normalised metric space
// form dense clouds — one behavioural trend each — while sparse points are
// noise. Classic DBSCAN with kd-tree neighbourhood queries; deterministic:
// seeds are visited in index order, so labels are reproducible.

#include <cstdint>
#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::cluster {

inline constexpr std::int32_t kNoise = -1;

struct DbscanParams {
  /// Neighbourhood radius in the normalised [0,1]^d space.
  double eps = 0.04;
  /// Minimum neighbourhood size (including the point itself) for a core
  /// point.
  std::size_t min_pts = 5;
};

struct DbscanResult {
  std::vector<std::int32_t> labels;  ///< per point: cluster id or kNoise
  std::int32_t cluster_count = 0;

  std::size_t noise_count() const;
};

/// Cluster `points` (expected in comparable per-dimension scales, typically
/// [0,1]^d from Transform::apply).
DbscanResult dbscan(const geom::PointSet& points, const DbscanParams& params);

}  // namespace perftrack::cluster
