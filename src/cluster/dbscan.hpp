#pragma once
// DBSCAN density-based clustering.
//
// The object-recognition step of the pipeline (paper §2, following González
// et al. [7, 9]): CPU bursts that are close in the normalised metric space
// form dense clouds — one behavioural trend each — while sparse points are
// noise. Deterministic: seeds are visited in index order, so labels are
// reproducible.
//
// Neighbourhood engine: a uniform grid with cell edge eps / sqrt(d), so
// any two points sharing a cell are eps-neighbours. Core points are found
// by per-cell neighbour counting — a cell with >= min_pts occupants is
// all-core with no distance tests, sparse cells count candidates from the
// cells in reach with an early exit at min_pts — then clusters form by
// merging core components across neighbouring cells and attaching border
// points, the standard acceleration for dense low-dimensional DBSCAN.
// High-dimensional or degenerate inputs fall back to the original
// per-point kd-tree radius queries; both engines produce identical labels
// for any input (covered by tests/cluster/test_dbscan.cpp).

#include <cstdint>
#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::cluster {

inline constexpr std::int32_t kNoise = -1;

/// Which spatial index answers the eps-neighbourhood queries. kAuto picks
/// the grid for low-dimensional data whose grid stays small and the
/// kd-tree otherwise; the explicit values pin one engine (benchmarks and
/// equivalence tests).
enum class DbscanIndex { kAuto, kKdTree, kGrid };

struct DbscanParams {
  /// Neighbourhood radius in the normalised [0,1]^d space.
  double eps = 0.04;
  /// Minimum neighbourhood size (including the point itself) for a core
  /// point.
  std::size_t min_pts = 5;
  /// Neighbourhood index engine (labels are engine-independent).
  DbscanIndex index = DbscanIndex::kAuto;
};

struct DbscanResult {
  std::vector<std::int32_t> labels;  ///< per point: cluster id or kNoise
  std::int32_t cluster_count = 0;

  std::size_t noise_count() const;
};

/// Cluster `points` (expected in comparable per-dimension scales, typically
/// [0,1]^d from Transform::apply).
DbscanResult dbscan(const geom::PointSet& points, const DbscanParams& params);

}  // namespace perftrack::cluster
