#pragma once
// Coordinate transforms applied before density clustering.
//
// DBSCAN's epsilon is isotropic, so each dimension must be brought to a
// comparable range first. Transform optionally log-scales dimensions whose
// values span decades (instruction counts in the paper's figures are drawn
// on log axes for the same reason) and then min-max normalises each
// dimension to [0, 1]. The fitted parameters are kept so the same transform
// can be applied to other point sets (e.g. projecting one frame's points
// into another frame's normalised space).

#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::cluster {

class Transform {
public:
  /// Fit on `points`. `log_scale[d]` requests log10 on dimension d (applied
  /// as log10(max(x, floor)) with a tiny positive floor so zeros survive);
  /// empty vector means no log scaling anywhere.
  static Transform fit(const geom::PointSet& points,
                       const std::vector<bool>& log_scale = {});

  /// Map points into [0,1]^d using the fitted parameters. Dimensions that
  /// were constant during fit map to 0.5.
  geom::PointSet apply(const geom::PointSet& points) const;

  /// Transform a single coordinate vector.
  std::vector<double> apply_one(std::span<const double> coords) const;

  std::size_t dims() const { return lo_.size(); }
  double low(std::size_t d) const { return lo_[d]; }
  double high(std::size_t d) const { return hi_[d]; }
  bool log_scaled(std::size_t d) const { return log_[d]; }

private:
  std::vector<double> lo_, hi_;
  std::vector<bool> log_;
};

}  // namespace perftrack::cluster
