#include "store/frame_codec.hpp"

#include <utility>

#include "store/serialize.hpp"

namespace perftrack::store {

namespace {

constexpr char kMagic[4] = {'P', 'T', 'F', '1'};

void encode_projection(BinWriter& w, const cluster::Projection& proj) {
  w.u32(static_cast<std::uint32_t>(proj.metrics.size()));
  for (trace::Metric m : proj.metrics) w.u8(static_cast<std::uint8_t>(m));
  w.u32(static_cast<std::uint32_t>(proj.points.dims()));
  std::span<const double> raw = proj.points.raw();
  w.u32(static_cast<std::uint32_t>(proj.points.size()));
  for (double v : raw) w.f64(v);
  w.u32_vec(proj.burst_index);
  w.f64_vec(proj.durations);
}

cluster::Projection decode_projection(BinReader& r) {
  cluster::Projection proj;
  std::size_t metric_count = r.length(1);
  proj.metrics.reserve(metric_count);
  for (std::size_t m = 0; m < metric_count; ++m) {
    std::uint8_t raw = r.u8();
    if (raw >= trace::kMetricCount)
      throw ParseError("frame store entry corrupt: unknown metric id " +
                       std::to_string(raw));
    proj.metrics.push_back(static_cast<trace::Metric>(raw));
  }
  std::size_t dims = r.length(0);
  if (dims != metric_count)
    throw ParseError("frame store entry corrupt: dims != metric count");
  std::size_t rows = r.length(dims * 8);
  geom::PointSet points(dims);
  points.reserve(rows);
  std::vector<double> coords(dims);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t d = 0; d < dims; ++d) coords[d] = r.f64();
    points.add(coords);
  }
  proj.points = std::move(points);
  proj.burst_index = r.u32_vec();
  proj.durations = r.f64_vec();
  if (proj.burst_index.size() != rows || proj.durations.size() != rows)
    throw ParseError(
        "frame store entry corrupt: projection row counts disagree");
  return proj;
}

void encode_object(BinWriter& w, const cluster::ClusterObject& obj) {
  w.i32(obj.id);
  w.u32_vec(obj.rows);
  w.f64_vec(obj.centroid);
  w.f64_vec(obj.metric_mean);
  w.u32(static_cast<std::uint32_t>(obj.callstack_weight.size()));
  for (const auto& [callstack, weight] : obj.callstack_weight) {
    w.u32(callstack);
    w.f64(weight);
  }
  w.f64(obj.total_duration);
}

cluster::ClusterObject decode_object(BinReader& r) {
  cluster::ClusterObject obj;
  obj.id = r.i32();
  obj.rows = r.u32_vec();
  obj.centroid = r.f64_vec();
  obj.metric_mean = r.f64_vec();
  std::size_t weights = r.length(12);
  for (std::size_t i = 0; i < weights; ++i) {
    trace::CallstackId callstack = r.u32();
    obj.callstack_weight[callstack] = r.f64();
  }
  obj.total_duration = r.f64();
  return obj;
}

}  // namespace

std::string encode_frame(const cluster::Frame& frame) {
  BinWriter payload;
  payload.str(frame.label());
  payload.u32(frame.num_tasks());
  encode_projection(payload, frame.projection());
  payload.i32_vec(frame.labels());
  payload.u32(static_cast<std::uint32_t>(frame.objects().size()));
  for (const cluster::ClusterObject& obj : frame.objects())
    encode_object(payload, obj);
  payload.u32(static_cast<std::uint32_t>(frame.task_sequences().size()));
  for (const auto& seq : frame.task_sequences()) payload.i32_vec(seq);
  payload.f64(frame.clustered_duration());

  BinWriter file;
  for (char c : kMagic) file.u8(static_cast<std::uint8_t>(c));
  file.u32(kFrameFormatVersion);
  const std::string& body = payload.bytes();
  file.u64(fnv1a64(body));
  file.u32(static_cast<std::uint32_t>(body.size()));
  std::string bytes = file.take();
  bytes += body;
  return bytes;
}

cluster::Frame decode_frame(std::string_view bytes,
                            std::shared_ptr<const trace::Trace> source) {
  PT_REQUIRE(source != nullptr, "decode_frame needs the source trace");
  BinReader header(bytes);
  for (char expected : kMagic)
    if (static_cast<char>(header.u8()) != expected)
      throw ParseError("not a perftrack frame: bad magic");
  std::uint32_t version = header.u32();
  if (version != kFrameFormatVersion)
    throw ParseError("unsupported frame format version " +
                     std::to_string(version));
  std::uint64_t checksum = header.u64();
  std::size_t body_size = header.length(1);
  if (body_size != header.remaining())
    throw ParseError("frame store entry corrupt: payload size mismatch");
  std::string_view body = bytes.substr(bytes.size() - body_size);
  if (fnv1a64(body) != checksum)
    throw ParseError("frame store entry corrupt: checksum mismatch");

  BinReader r(body);
  cluster::Frame::Builder b;
  b.label = r.str();
  b.num_tasks = r.u32();
  b.projection = decode_projection(r);
  b.labels = r.i32_vec();
  if (b.labels.size() != b.projection.size())
    throw ParseError("frame store entry corrupt: label/projection mismatch");
  std::size_t object_count = r.length(4);
  b.objects.reserve(object_count);
  for (std::size_t i = 0; i < object_count; ++i) {
    cluster::ClusterObject obj = decode_object(r);
    if (static_cast<std::size_t>(obj.id) != i)
      throw ParseError("frame store entry corrupt: object ids not dense");
    if (obj.centroid.size() != b.projection.metrics.size() ||
        obj.metric_mean.size() != b.projection.metrics.size())
      throw ParseError("frame store entry corrupt: object dimensionality");
    for (std::uint32_t row : obj.rows)
      if (row >= b.labels.size())
        throw ParseError("frame store entry corrupt: object row out of range");
    b.objects.push_back(std::move(obj));
  }
  for (std::int32_t label : b.labels)
    if (label != cluster::kNoise &&
        (label < 0 || static_cast<std::size_t>(label) >= object_count))
      throw ParseError("frame store entry corrupt: label out of range");
  std::size_t task_count = r.length(4);
  if (task_count != b.num_tasks)
    throw ParseError("frame store entry corrupt: task sequence count");
  b.task_sequences.reserve(task_count);
  for (std::size_t t = 0; t < task_count; ++t)
    b.task_sequences.push_back(r.i32_vec());
  b.clustered_duration = r.f64();
  if (!r.done())
    throw ParseError("frame store entry corrupt: trailing bytes");
  b.source = std::move(source);
  return std::move(b).finish();
}

std::string encode_clustering_params(const cluster::ClusteringParams& params) {
  BinWriter w;
  w.u32(static_cast<std::uint32_t>(params.projection.metrics.size()));
  for (trace::Metric m : params.projection.metrics)
    w.u8(static_cast<std::uint8_t>(m));
  w.f64(params.projection.min_duration);
  w.f64(params.projection.time_coverage);
  w.f64(params.dbscan.eps);
  w.u64(params.dbscan.min_pts);
  // The index engine is deliberately excluded: labels are engine-
  // independent (tests/cluster DbscanEngineEquivalence), so kd-tree and
  // grid runs share cache entries.
  w.bool_vec(params.log_scale);
  w.u8(params.collapse_sequence_runs ? 1 : 0);
  w.f64(params.min_cluster_time_fraction);
  return w.take();
}

}  // namespace perftrack::store
