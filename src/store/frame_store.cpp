#include "store/frame_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "store/frame_codec.hpp"
#include "store/serialize.hpp"
#include "trace/counters.hpp"

namespace perftrack::store {

namespace fs = std::filesystem;

namespace {

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

FrameStore::FrameStore(StoreConfig config) : config_(std::move(config)) {
  // A cache path that exists as a regular file can never work: every load
  // would silently miss and every store would fail with an unhelpful
  // create_directories error. Diagnose it once, clearly, and disable the
  // cache instead of warning on every entry.
  if (config_.directory.empty()) return;
  std::error_code ec;
  auto status = fs::status(config_.directory, ec);
  if (!ec && fs::exists(status) && !fs::is_directory(status)) {
    ++stats_.errors;
    PT_COUNTER("frame_cache_errors", 1.0);
    PT_LOG(Warn) << "frame cache: '" << config_.directory
                 << "' exists but is not a directory; caching disabled "
                 << "(remove the file or point --cache-dir/PERFTRACK_CACHE "
                 << "at a directory)";
    config_.directory.clear();
  }
}

std::string FrameStore::environment_directory() {
  const char* env = std::getenv("PERFTRACK_CACHE");
  return env ? std::string(env) : std::string();
}

std::string FrameStore::key_for(const trace::Trace& trace,
                                const cluster::ClusteringParams& params) {
  // Hashes a compact binary fingerprint of everything build_frame consumes:
  // trace identity, attributes, the callstack table and every burst, plus
  // the clustering parameters and the entry format version. A full text
  // serialisation of the trace would be canonical too, but formatting
  // hundreds of thousands of doubles costs more than the clustering the
  // cache is meant to avoid; the fingerprint is a straight memcpy walk.
  BinWriter canonical;
  canonical.str(trace.application());
  canonical.u32(trace.num_tasks());
  canonical.str(trace.label());
  canonical.u32(static_cast<std::uint32_t>(trace.attributes().size()));
  for (const auto& [name, value] : trace.attributes()) {
    canonical.str(name);
    canonical.str(value);
  }
  const trace::CallstackTable& callstacks = trace.callstacks();
  canonical.u32(static_cast<std::uint32_t>(callstacks.size()));
  for (std::uint32_t id = 0; id < callstacks.size(); ++id) {
    const trace::SourceLocation& loc = callstacks.resolve(id);
    canonical.str(loc.function);
    canonical.str(loc.file);
    canonical.u32(loc.line);
  }
  canonical.u64(trace.burst_count());
  for (const trace::Burst& burst : trace.bursts()) {
    canonical.u32(burst.task);
    canonical.f64(burst.begin_time);
    canonical.f64(burst.duration);
    canonical.u32(burst.callstack);
    for (std::size_t c = 0; c < trace::kCounterCount; ++c)
      canonical.f64(burst.counters.get(static_cast<trace::Counter>(c)));
  }
  canonical.str(encode_clustering_params(params));
  canonical.str("ptf");
  canonical.u32(kFrameFormatVersion);
  std::string bytes = std::move(canonical).take();
  // Two independently seeded FNV-1a streams give a 128-bit key; with
  // realistic cache populations (thousands of entries) accidental
  // collisions are out of reach, and a collision can only be forced by
  // someone who controls the trace bytes — who could as well write the
  // cache entry directly.
  return to_hex(fnv1a64(bytes)) +
         to_hex(fnv1a64(bytes, 0x6c62272e07bb0142ull));
}

std::string FrameStore::path_for(const std::string& key) const {
  return (fs::path(config_.directory) / (key + ".ptf")).string();
}

std::optional<cluster::Frame> FrameStore::load(
    const std::string& key, std::shared_ptr<const trace::Trace> source) {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++stats_.misses;
      PT_COUNTER("frame_cache_misses", 1.0);
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      ++stats_.misses;
      ++stats_.errors;
      PT_COUNTER("frame_cache_misses", 1.0);
      PT_COUNTER("frame_cache_errors", 1.0);
      PT_LOG(Warn) << "frame cache: unreadable entry " << path
                   << ", treating as miss";
      return std::nullopt;
    }
    bytes = buffer.str();
  }
  try {
    cluster::Frame frame = decode_frame(bytes, std::move(source));
    ++stats_.hits;
    PT_COUNTER("frame_cache_hits", 1.0);
    // Refresh the LRU position; failure to touch is harmless.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return frame;
  } catch (const Error& error) {
    ++stats_.misses;
    ++stats_.errors;
    PT_COUNTER("frame_cache_misses", 1.0);
    PT_COUNTER("frame_cache_errors", 1.0);
    PT_LOG(Warn) << "frame cache: dropping corrupt entry " << path << ": "
                 << error.what();
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }
}

void FrameStore::store(const std::string& key, const cluster::Frame& frame) {
  if (!enabled()) return;
  // Hoisted out of the try so the error path can clean up the temporary:
  // a failed store must not leave a partial entry (or tmp litter) behind.
  fs::path tmp;
  try {
    fs::create_directories(config_.directory);
    const std::string bytes = encode_frame(frame);
    // Unique temporary per process+object so concurrent writers of the
    // same key never interleave; rename() then publishes atomically.
    std::ostringstream tmp_name;
    tmp_name << ".tmp-" << key << "-" << ::getpid() << "-" << this;
    tmp = fs::path(config_.directory) / tmp_name.str();
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw io_error("cannot open cache entry for writing",
                               tmp.string());
      try {
        PT_FAILPOINT("frame_store_write");
      } catch (const InjectedFault&) {
        // Simulate a device that dies mid-write (ENOSPC, pulled disk):
        // leave a truncated temporary behind, then fail like write() would.
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
        out.flush();
        throw io_error("cannot write cache entry (injected short write)",
                       tmp.string());
      }
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out.good()) throw io_error("cannot write cache entry",
                                      tmp.string());
    }
    PT_FAILPOINT("frame_store_rename");
    fs::rename(tmp, path_for(key));
    ++stats_.stores;
    PT_COUNTER("frame_cache_stores", 1.0);
    evict_to_cap();
  } catch (const std::exception& error) {
    // A failed store never fails the pipeline: the caller holds the frame.
    // Remove the temporary so a torn write cannot linger (it would never
    // be loaded — loads go through path_for(key) — but it wastes cap).
    if (!tmp.empty()) {
      std::error_code ec;
      fs::remove(tmp, ec);
    }
    ++stats_.errors;
    PT_COUNTER("frame_cache_errors", 1.0);
    PT_LOG(Warn) << "frame cache: store failed for " << key << ": "
                 << error.what();
  }
}

void FrameStore::evict_to_cap() {
  if (config_.max_bytes == 0) return;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(config_.directory, ec)) {
    if (ec) return;
    if (!item.is_regular_file(ec) || item.path().extension() != ".ptf")
      continue;
    Entry entry{item.path(), item.last_write_time(ec),
                static_cast<std::uint64_t>(item.file_size(ec))};
    total += entry.size;
    entries.push_back(std::move(entry));
  }
  if (total <= config_.max_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& entry : entries) {
    if (total <= config_.max_bytes) break;
    std::error_code remove_ec;
    if (fs::remove(entry.path, remove_ec)) {
      total -= entry.size;
      ++stats_.evictions;
      PT_COUNTER("frame_cache_evictions", 1.0);
      PT_LOG(Debug) << "frame cache: evicted " << entry.path.string();
    }
  }
}

}  // namespace perftrack::store
