#pragma once
// Compact binary serialisation of clustering results (.ptf — "perftrack
// frame").
//
// A cache entry captures everything build_frame derives from a trace —
// projection, labels, cluster objects, per-task sequences — but not the
// trace itself: the loader re-attaches the live Trace the caller already
// holds (the cache key guarantees it is byte-identical to the one that
// produced the entry). Doubles are stored as raw IEEE-754 bits, so a
// decode(encode(frame)) round trip reproduces the frame bit-exactly and a
// cached tracking run yields byte-identical reports (the acceptance bar of
// the session engine; see docs/SESSIONS.md).
//
// Layout (little-endian): "PTF1" magic, u32 format version, u64 FNV-1a
// checksum of the payload, u32 payload size, payload. decode_frame
// validates magic,
// version and checksum, then every structural invariant (lengths agree,
// labels within range, object ids dense) — any mismatch throws ParseError,
// which the store above turns into a cache miss plus a diagnostic.

#include <memory>
#include <string>
#include <string_view>

#include "cluster/frame.hpp"

namespace perftrack::store {

/// Bumped whenever the encoding or anything influencing frame content
/// changes shape; part of both the entry header and the cache key, so
/// stale-format entries can never be mistaken for valid ones.
inline constexpr std::uint32_t kFrameFormatVersion = 1;

/// Serialise a frame (without its source trace) to bytes.
std::string encode_frame(const cluster::Frame& frame);

/// Parse bytes produced by encode_frame, re-attaching `source` as the
/// frame's trace. Throws ParseError on any corruption or version mismatch;
/// never reads out of bounds (fuzzed entry point).
cluster::Frame decode_frame(std::string_view bytes,
                            std::shared_ptr<const trace::Trace> source);

/// Canonical byte encoding of the clustering configuration, used by the
/// cache key derivation (docs/FORMATS.md documents the layout).
std::string encode_clustering_params(const cluster::ClusteringParams& params);

}  // namespace perftrack::store
