#pragma once
// Binary serialisation primitives for the frame store.
//
// A deliberately tiny, dependency-free encoding layer: little-endian
// fixed-width integers, IEEE-754 doubles copied byte-for-byte (so a
// save/load round trip is bit-exact), and length-prefixed strings and
// vectors. BinReader is the adversarial half: every read is bounds-checked
// and every length prefix is validated against the bytes actually left, so
// a truncated or corrupted cache entry surfaces as ParseError — never as
// out-of-bounds access or a multi-gigabyte allocation (fuzzed by
// tests/fuzz/fuzz_frame.cpp).

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace perftrack::store {

/// 64-bit FNV-1a over arbitrary bytes; `basis` seeds the hash so two
/// independent streams can be derived from the same input.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t basis = 0xcbf29ce484222325ull);

class BinWriter {
public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void str(std::string_view s);

  void u32_vec(const std::vector<std::uint32_t>& v);
  void i32_vec(const std::vector<std::int32_t>& v);
  void f64_vec(const std::vector<double>& v);
  void bool_vec(const std::vector<bool>& v);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

private:
  std::string out_;
};

class BinReader {
public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  std::string str();

  std::vector<std::uint32_t> u32_vec();
  std::vector<std::int32_t> i32_vec();
  std::vector<double> f64_vec();
  std::vector<bool> bool_vec();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  /// Length prefix for a sequence whose elements occupy at least
  /// `element_size` bytes each; rejects prefixes the remaining bytes cannot
  /// possibly satisfy before any allocation happens.
  std::size_t length(std::size_t element_size);

private:
  const char* need(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace perftrack::store
