#include "store/serialize.hpp"

namespace perftrack::store {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void BinWriter::u32(std::uint32_t v) {
  for (int b = 0; b < 4; ++b)
    out_.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void BinWriter::u64(std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    out_.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void BinWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void BinWriter::u32_vec(const std::vector<std::uint32_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint32_t x : v) u32(x);
}

void BinWriter::i32_vec(const std::vector<std::int32_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::int32_t x : v) i32(x);
}

void BinWriter::f64_vec(const std::vector<double>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) f64(x);
}

void BinWriter::bool_vec(const std::vector<bool>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (bool x : v) u8(x ? 1 : 0);
}

const char* BinReader::need(std::size_t n) {
  if (bytes_.size() - pos_ < n)
    throw ParseError("frame store entry truncated: need " + std::to_string(n) +
                     " bytes, " + std::to_string(bytes_.size() - pos_) +
                     " left");
  const char* p = bytes_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t BinReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint32_t BinReader::u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[b])) << (8 * b);
  return v;
}

std::uint64_t BinReader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[b])) << (8 * b);
  return v;
}

double BinReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::size_t BinReader::length(std::size_t element_size) {
  std::uint32_t n = u32();
  if (element_size > 0 && remaining() / element_size < n)
    throw ParseError("frame store entry corrupt: sequence of " +
                     std::to_string(n) + " elements does not fit in " +
                     std::to_string(remaining()) + " remaining bytes");
  return n;
}

std::string BinReader::str() {
  std::size_t n = length(1);
  const char* p = need(n);
  return std::string(p, n);
}

std::vector<std::uint32_t> BinReader::u32_vec() {
  std::size_t n = length(4);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = u32();
  return v;
}

std::vector<std::int32_t> BinReader::i32_vec() {
  std::size_t n = length(4);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = i32();
  return v;
}

std::vector<double> BinReader::f64_vec() {
  std::size_t n = length(8);
  std::vector<double> v(n);
  for (auto& x : v) x = f64();
  return v;
}

std::vector<bool> BinReader::bool_vec() {
  std::size_t n = length(1);
  std::vector<bool> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = u8() != 0;
  return v;
}

}  // namespace perftrack::store
