#pragma once
// Content-addressed on-disk cache of clustering results.
//
// Clustering a trace into a Frame is the pipeline's per-experiment unit of
// work; in the append-only analyst workflow (add one experiment, re-examine
// the sequence) every invocation used to redo all of it. The store keys
// each result by what actually determines it:
//
//   key = fnv1a128(trace bytes ‖ clustering params ‖ format version)
//
// where "trace bytes" is the canonical .ptt serialisation of the trace and
// "clustering params" the canonical encoding from frame_codec. Entries are
// immutable files named <key>.ptf in the cache directory, written to a
// temporary name and atomically renamed, so concurrent writers can race
// without ever exposing a torn entry. Loads are corruption-tolerant by
// design: a bad entry (truncated file, flipped bit, stale format) is a
// cache miss plus a diagnostic — never a failure — matching the lenient
// philosophy of docs/ROBUSTNESS.md. A byte-size LRU cap (least recently
// used by mtime, refreshed on hit) keeps the directory bounded.
//
// Telemetry: hits/misses/stores/evictions/errors are recorded both on the
// obs counters (frame_cache_*) and on the per-instance StoreStats.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cluster/frame.hpp"

namespace perftrack::store {

struct StoreConfig {
  /// Cache directory; empty disables the store entirely. Created on first
  /// write if missing.
  std::string directory;

  /// LRU size cap over the summed entry sizes; 0 = unbounded.
  std::uint64_t max_bytes = 256ull << 20;

  bool enabled() const { return !directory.empty(); }
};

struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t errors = 0;  ///< corrupt/unreadable entries (each also a miss)
};

class FrameStore {
public:
  /// A configured directory that exists but is a regular file is diagnosed
  /// once (a clear warning plus an error count) and the store is disabled,
  /// rather than warning generically on every load/store.
  explicit FrameStore(StoreConfig config);

  const StoreConfig& config() const { return config_; }
  const StoreStats& stats() const { return stats_; }
  bool enabled() const { return config_.enabled(); }

  /// Cache directory from the environment (PERFTRACK_CACHE), or empty.
  static std::string environment_directory();

  /// Content key for clustering `trace` under `params`: 32 hex digits.
  static std::string key_for(const trace::Trace& trace,
                             const cluster::ClusteringParams& params);

  /// Look up `key`, re-attaching `source` to the decoded frame. Returns
  /// nullopt on miss or on a corrupt entry (which is deleted and counted
  /// as an error). Refreshes the entry's LRU position on hit.
  std::optional<cluster::Frame> load(
      const std::string& key, std::shared_ptr<const trace::Trace> source);

  /// Insert the clustering result for `key`, then enforce the size cap.
  /// Store failures (unwritable directory, disk full) are diagnostics, not
  /// errors: the caller already has the frame.
  void store(const std::string& key, const cluster::Frame& frame);

private:
  std::string path_for(const std::string& key) const;
  void evict_to_cap();

  StoreConfig config_;
  StoreStats stats_;
};

}  // namespace perftrack::store
