#include "sim/compiler.hpp"

namespace perftrack::sim {

CompilerModel gfortran() { return {"gfortran", 1.0, 1.0}; }

CompilerModel xlf() { return {"xlf", 0.64, 0.64}; }

CompilerModel ifort() { return {"ifort", 0.70, 0.715}; }

}  // namespace perftrack::sim
