#include "sim/studies.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "sim/apps/apps.hpp"

namespace perftrack::sim {

std::vector<cluster::Frame> Study::frames() const {
  std::vector<cluster::Frame> out;
  out.reserve(traces.size());
  for (const auto& t : traces) out.push_back(build_frame(t, clustering));
  return out;
}

cluster::ClusteringParams default_clustering() {
  cluster::ClusteringParams params;
  params.projection.metrics = {trace::Metric::Instructions,
                               trace::Metric::Ipc};
  params.log_scale = {true, false};
  params.dbscan.eps = 0.025;
  params.dbscan.min_pts = 5;
  params.min_cluster_time_fraction = 0.005;
  params.collapse_sequence_runs = true;
  return params;
}

Study study_wrf(const StudyOptions& options) {
  Study study;
  study.name = "WRF";
  study.clustering = default_clustering();
  AppModel app = make_wrf();
  for (std::uint32_t tasks : {128u, 256u}) {
    Scenario s;
    s.label = "WRF-" + std::to_string(tasks);
    s.num_tasks = tasks;
    s.platform = marenostrum();
    s.seed = 1000 + tasks;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_cgpop(const StudyOptions& options) {
  Study study;
  study.name = "CGPOP";
  study.clustering = default_clustering();
  AppModel app = make_cgpop();

  struct Config {
    Platform platform;
    CompilerModel compiler;
  };
  const Config configs[] = {
      {marenostrum(), gfortran()},
      {marenostrum(), xlf()},
      {minotauro(), gfortran()},
      {minotauro(), ifort()},
  };
  std::uint64_t seed = 2000;
  for (const Config& c : configs) {
    Scenario s;
    s.label = "CGPOP " + c.platform.name + "/" + c.compiler.name;
    s.num_tasks = 128;
    s.platform = c.platform;
    s.compiler = c.compiler;
    s.seed = ++seed;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_nas_bt(const StudyOptions& options) {
  Study study;
  study.name = "NAS BT";
  study.clustering = default_clustering();
  AppModel app = make_nas_bt();

  struct ClassSpec {
    const char* name;
    double scale;
  };
  // W is the workstation size; A, B, C are 4x apart (§4.2).
  const ClassSpec classes[] = {{"W", 1.0}, {"A", 4.0}, {"B", 16.0},
                               {"C", 64.0}};
  std::uint64_t seed = 3000;
  for (const ClassSpec& c : classes) {
    Scenario s;
    s.label = std::string("BT class ") + c.name;
    s.num_tasks = 16;
    s.problem_scale = c.scale;
    s.platform = marenostrum();
    s.extra["class"] = c.name;
    s.seed = ++seed;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_nas_ft(const StudyOptions& options) {
  Study study;
  study.name = "NAS FT";
  study.clustering = default_clustering();
  AppModel app = make_nas_ft();
  for (int i = 0; i < 15; ++i) {
    Scenario s;
    s.label = "FT step " + std::to_string(i + 1);
    s.num_tasks = 16;
    s.problem_scale = std::pow(1.25, i);
    s.platform = minotauro();
    s.seed = 4000 + static_cast<std::uint64_t>(i);
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_mrgenesis(const StudyOptions& options) {
  Study study;
  study.name = "MR-Genesis";
  study.clustering = default_clustering();
  // Only two well-separated objects per frame, but the frame-local IPC
  // range is narrow, which magnifies per-burst noise after normalisation;
  // a wider eps keeps each region connected.
  study.clustering.dbscan.eps = 0.08;
  AppModel app = make_mrgenesis();
  for (std::uint32_t per_node = 1; per_node <= 12; ++per_node) {
    Scenario s;
    s.label = "MRG " + std::to_string(per_node) + "/node";
    s.num_tasks = 12;
    s.tasks_per_node = per_node;
    s.platform = minotauro();
    s.seed = 5000 + per_node;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_hydroc(int frames, const StudyOptions& options) {
  Study study;
  study.name = "HydroC";
  study.clustering = default_clustering();
  AppModel app = make_hydroc();
  double side = 4.0;  // elements per block side, doubling per frame
  for (int i = 0; i < frames; ++i) {
    Scenario s;
    s.label = "HydroC block " + format_double(side, 0);
    s.num_tasks = 16;
    s.block_kb = side * side * 8.0 / 1024.0;
    s.platform = minotauro();
    s.extra["block_side"] = format_double(side, 0);
    s.seed = 6000 + static_cast<std::uint64_t>(i);
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
    side *= 2.0;
  }
  return study;
}

Study study_gromacs_scaling(const StudyOptions& options) {
  Study study;
  study.name = "Gromacs";
  study.clustering = default_clustering();
  AppModel app = make_gromacs(false);
  for (std::uint32_t tasks : {32u, 64u, 128u}) {
    Scenario s;
    s.label = "Gromacs-" + std::to_string(tasks);
    s.num_tasks = tasks;
    s.platform = minotauro();
    s.seed = 7000 + tasks;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_gromacs_evolution(const StudyOptions& options) {
  Study study;
  study.name = "Gromacs (evolution)";
  study.clustering = default_clustering();
  AppModel app = make_gromacs(true);
  for (int i = 0; i < 20; ++i) {
    Scenario s;
    s.label = "Gromacs t" + std::to_string(i);
    s.num_tasks = 64;
    // The frames are consecutive time intervals of one run; the drifting
    // problem_scale stands for the slow mixing of the particle system.
    s.problem_scale = 1.0 + 0.03 * i;
    s.platform = minotauro();
    s.seed = 8000 + static_cast<std::uint64_t>(i);
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_gadget(const StudyOptions& options) {
  Study study;
  study.name = "Gadget";
  study.clustering = default_clustering();
  AppModel app = make_gadget();
  for (std::uint32_t tasks : {64u, 128u}) {
    Scenario s;
    s.label = "Gadget-" + std::to_string(tasks);
    s.num_tasks = tasks;
    s.platform = marenostrum();
    s.seed = 9000 + tasks;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

Study study_espresso(const StudyOptions& options) {
  Study study;
  study.name = "QuantumESPRESSO";
  study.clustering = default_clustering();
  AppModel app = make_espresso();
  for (std::uint32_t tasks : {64u, 128u}) {
    Scenario s;
    s.label = "QE-" + std::to_string(tasks);
    s.num_tasks = tasks;
    s.platform = marenostrum();
    s.seed = 9500 + tasks;
    s.seed += options.seed_offset;
    s.noise_scale = options.noise_scale;
    study.traces.push_back(app.simulate_shared(s));
  }
  return study;
}

std::vector<Study> all_studies(const StudyOptions& options) {
  std::vector<Study> out;
  out.push_back(study_gadget(options));
  out.push_back(study_espresso(options));
  out.push_back(study_wrf(options));
  out.push_back(study_gromacs_scaling(options));
  out.push_back(study_cgpop(options));
  out.push_back(study_nas_bt(options));
  out.push_back(study_hydroc(12, options));
  out.push_back(study_mrgenesis(options));
  out.push_back(study_nas_ft(options));
  out.push_back(study_gromacs_evolution(options));
  return out;
}

}  // namespace perftrack::sim
