#pragma once
// Hardware platform models.
//
// Stand-ins for the machines of the paper's evaluation (§4): MareNostrum
// (IBM JS21 nodes, 2x dual-core PowerPC 970MP @ 2.3 GHz) and MinoTauro
// (2x Intel Xeon E5649 6-core @ 2.53 GHz). A Platform carries the knobs the
// analytical performance model needs: clock, core count per node, cache and
// TLB capacities, an architecture IPC factor, and the contention
// coefficients that govern how sharing a node degrades cache/bandwidth
// behaviour (exercised by the MR-Genesis study, §4.3).

#include <string>

namespace perftrack::sim {

struct Platform {
  std::string name;
  int cores_per_node = 4;
  double clock_ghz = 2.3;

  // Per-core cache capacities (KB) and TLB reach (KB of address space the
  // TLB covers without missing).
  double l1_kb = 32.0;
  double l2_kb = 1024.0;
  double tlb_reach_kb = 2048.0;

  /// Architecture quality multiplier applied to every phase's ideal IPC.
  double ipc_factor = 1.0;

  /// ISA multiplier on the instruction count a phase executes (a RISC
  /// PowerPC executes more instructions than an x86 Xeon for the same
  /// source; CGPOP's 6.8M vs 5M in paper Table 3).
  double instr_factor = 1.0;

  // Node-sharing contention model: colocating `t` tasks on a node with `c`
  // cores (occupancy o = t/c) multiplies the L2 miss rate by
  // (1 + l2_contention * o^contention_exponent), the TLB miss rate by
  // (1 + tlb_contention * o^contention_exponent) and adds memory-bandwidth
  // stall cycles as a (1 + bw_contention * o^contention_exponent) factor on
  // CPI. A single occupied core (o = 1/c) is the uncontended baseline.
  double l2_contention = 0.0;
  double tlb_contention = 0.0;
  double bw_contention = 0.0;
  double contention_exponent = 3.0;
};

/// MareNostrum-like PowerPC platform (paper [1]).
Platform marenostrum();

/// MinoTauro-like Xeon platform (paper [2]).
Platform minotauro();

/// A featureless 1.0-factor platform for unit tests.
Platform reference_platform();

}  // namespace perftrack::sim
