#pragma once
// The paper's experiment sweeps (§4, Table 2).
//
// A Study bundles the sequence of simulated experiments ("input images")
// of one case study with the clustering configuration used to turn each
// trace into a frame. all_studies() returns the ten studies of Table 2 in
// the paper's order.

#include <memory>
#include <string>
#include <vector>

#include "cluster/frame.hpp"
#include "sim/app.hpp"

namespace perftrack::sim {

struct Study {
  std::string name;
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  cluster::ClusteringParams clustering;

  /// Cluster every trace into its frame, in sequence order.
  std::vector<cluster::Frame> frames() const;
};

/// Shared default clustering configuration: Instructions x IPC space,
/// log-scaled instruction axis, DBSCAN in the normalised space.
cluster::ClusteringParams default_clustering();

/// Robustness knobs shared by every study: shift all scenario seeds (a
/// different synthetic "measurement run") and scale the per-burst noise.
struct StudyOptions {
  std::uint64_t seed_offset = 0;
  double noise_scale = 1.0;
};

Study study_wrf(const StudyOptions& options = {});                ///< §2-3: 128 vs 256 tasks on MareNostrum
Study study_cgpop(const StudyOptions& options = {});              ///< §4.1: {MareNostrum, MinoTauro} x {generic, vendor compiler}
Study study_nas_bt(const StudyOptions& options = {});             ///< §4.2: classes W, A, B, C at 16 tasks
Study study_nas_ft(const StudyOptions& options = {});             ///< Table 2: 15-step problem-size sweep
Study study_mrgenesis(const StudyOptions& options = {});          ///< §4.3: 12 tasks, 1..12 tasks per node
Study study_hydroc(int frames = 9, const StudyOptions& options = {});  ///< §4.4: block sizes doubling from 4
Study study_gromacs_scaling(const StudyOptions& options = {});    ///< Table 2: 3-frame strong scaling
Study study_gromacs_evolution(const StudyOptions& options = {});  ///< Table 2: 20-frame time evolution
Study study_gadget(const StudyOptions& options = {});             ///< Table 2: 2 frames
Study study_espresso(const StudyOptions& options = {});           ///< Table 2: 2 frames

/// The ten studies of Table 2, in row order. `hydroc_frames` matches the
/// table's 12 input images by default.
std::vector<Study> all_studies(const StudyOptions& options = {});

}  // namespace perftrack::sim
