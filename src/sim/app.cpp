#include "sim/app.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace perftrack::sim {

AppModel::AppModel(std::string name, double ref_tasks,
                   int default_iterations)
    : name_(std::move(name)),
      ref_tasks_(ref_tasks),
      default_iterations_(default_iterations) {
  PT_REQUIRE(ref_tasks > 0.0, "reference task count must be positive");
  PT_REQUIRE(default_iterations > 0, "iteration count must be positive");
}

void AppModel::add_phase(PhaseSpec phase) {
  PT_REQUIRE(!phase.name.empty(), "phase needs a name");
  PT_REQUIRE(phase.repeats >= 1, "phase repeats must be >= 1");
  phases_.push_back(std::move(phase));
}

trace::Trace AppModel::simulate(const Scenario& scenario) const {
  PT_REQUIRE(!phases_.empty(), "application model has no phases");
  PT_REQUIRE(scenario.num_tasks > 0, "scenario needs at least one task");

  trace::Trace out(name_, scenario.num_tasks);
  out.set_label(scenario.label.empty() ? name_ : scenario.label);
  out.set_attribute("platform", scenario.platform.name);
  out.set_attribute("compiler", scenario.compiler.name);
  out.set_attribute("tasks_per_node",
                    std::to_string(scenario.effective_tasks_per_node()));
  out.set_attribute("problem_scale", std::to_string(scenario.problem_scale));
  if (scenario.block_kb > 0.0)
    out.set_attribute("block_kb", std::to_string(scenario.block_kb));
  for (const auto& [key, value] : scenario.extra)
    out.set_attribute(key, value);

  // Intern every phase location up front so callstack ids are stable.
  std::vector<trace::CallstackId> phase_callstack;
  phase_callstack.reserve(phases_.size());
  for (const PhaseSpec& phase : phases_)
    phase_callstack.push_back(out.callstacks().intern(phase.location));

  const int iterations = scenario.iterations > 0 ? scenario.iterations
                                                 : default_iterations_;
  const double clock_hz = scenario.platform.clock_ghz * 1e9;
  Rng scenario_rng(scenario.seed);

  // Interleave by (iteration, phase, task) but bursts are appended per task
  // in time order, which Trace requires; we keep a clock per task.
  std::vector<double> clock(scenario.num_tasks, 0.0);

  for (std::uint32_t task = 0; task < scenario.num_tasks; ++task) {
    Rng task_rng = scenario_rng.derive("task", task);
    for (int iter = 0; iter < iterations; ++iter) {
      for (std::size_t pi = 0; pi < phases_.size(); ++pi) {
        const PhaseSpec& phase = phases_[pi];
        PhaseSpec::Sample sample =
            phase.evaluate(scenario, task, ref_tasks_);
        for (int rep = 0; rep < phase.repeats; ++rep) {
          Rng burst_rng = task_rng.derive(
              phase.name,
              static_cast<std::uint64_t>(iter) * 64 +
                  static_cast<std::uint64_t>(rep));

          double instr =
              sample.instructions *
              burst_rng.jitter(phase.noise_instr * scenario.noise_scale);
          double ipc_ideal =
              sample.ipc_ideal *
              burst_rng.jitter(phase.noise_ipc * scenario.noise_scale);

          MissRates rates = cache_.rates(sample.working_set_kb, scenario);
          rates.l1 *= phase.miss_sensitivity;
          rates.l2 *= phase.miss_sensitivity;
          rates.tlb *= phase.miss_sensitivity;
          double cpi = cache_.cpi(ipc_ideal, rates, scenario);
          double cycles = instr * cpi;
          double duration = cycles / clock_hz;

          trace::Burst burst;
          burst.task = task;
          burst.begin_time = clock[task];
          burst.duration = duration;
          burst.callstack = phase_callstack[pi];
          burst.counters.set(trace::Counter::Instructions, instr);
          burst.counters.set(trace::Counter::Cycles, cycles);
          burst.counters.set(trace::Counter::L1DMisses, instr * rates.l1);
          burst.counters.set(trace::Counter::L2Misses, instr * rates.l2);
          burst.counters.set(trace::Counter::TlbMisses, instr * rates.tlb);
          out.add_burst(burst);

          // Communication gap before the next burst.
          double gap = duration * comm_fraction_ *
                       burst_rng.jitter(0.2);
          clock[task] += duration + gap;
        }
      }
    }
  }
  return out;
}

std::shared_ptr<const trace::Trace> AppModel::simulate_shared(
    const Scenario& scenario) const {
  return std::make_shared<const trace::Trace>(simulate(scenario));
}

}  // namespace perftrack::sim
