#include "sim/cache.hpp"

#include <cmath>

#include "common/error.hpp"

namespace perftrack::sim {

double CacheModel::capacity_rate(double ws_kb, double capacity_kb, double base,
                                 double peak, double width) {
  PT_REQUIRE(capacity_kb > 0.0 && width > 0.0,
             "cache capacity and width must be positive");
  if (ws_kb <= 0.0) return base;
  double x = std::log2(ws_kb / capacity_kb) / width;
  double logistic = 1.0 / (1.0 + std::exp(-x));
  return base + peak * logistic;
}

double contention_factor(double coefficient, double exponent,
                         const Scenario& scenario) {
  if (coefficient <= 0.0) return 1.0;
  double o = scenario.occupancy();
  double o_min = 1.0 / static_cast<double>(scenario.platform.cores_per_node);
  // Normalise so one task per node is the uncontended baseline.
  double raw = coefficient * std::pow(o, exponent);
  double floor = coefficient * std::pow(o_min, exponent);
  return (1.0 + raw) / (1.0 + floor);
}

MissRates CacheModel::rates(double working_set_kb,
                            const Scenario& scenario) const {
  const Platform& p = scenario.platform;
  MissRates r;
  r.l1 = capacity_rate(working_set_kb, p.l1_kb, params_.l1_base,
                       params_.l1_peak, params_.l1_width);
  r.l2 = capacity_rate(working_set_kb, p.l2_kb, params_.l2_base,
                       params_.l2_peak, params_.l2_width);
  r.tlb = capacity_rate(working_set_kb, p.tlb_reach_kb, params_.tlb_base,
                        params_.tlb_peak, params_.tlb_width);
  r.l2 *= contention_factor(p.l2_contention, p.contention_exponent, scenario);
  r.tlb *= contention_factor(p.tlb_contention, p.contention_exponent,
                             scenario);
  return r;
}

double CacheModel::cpi(double ipc_ideal, const MissRates& rates,
                       const Scenario& scenario) const {
  PT_REQUIRE(ipc_ideal > 0.0, "ideal IPC must be positive");
  double cpi = 1.0 / ipc_ideal;
  cpi += rates.l1 * params_.l1_penalty;
  cpi += rates.l2 * params_.l2_penalty;
  cpi += rates.tlb * params_.tlb_penalty;
  cpi *= contention_factor(scenario.platform.bw_contention,
                           scenario.platform.contention_exponent, scenario);
  return cpi;
}

}  // namespace perftrack::sim
