#pragma once
// Execution scenarios.
//
// A Scenario is the "execution conditions" axis of the paper: everything
// that distinguishes one experiment from another — process count, physical
// mapping (tasks per node), problem size, application-specific working-set
// knobs, platform, compiler, and the random seed that individualises the
// run's noise.

#include <cstdint>
#include <map>
#include <string>

#include "sim/compiler.hpp"
#include "sim/platform.hpp"

namespace perftrack::sim {

struct Scenario {
  /// Experiment label used in frames and reports ("WRF-128", "BT class A").
  std::string label;

  std::uint32_t num_tasks = 16;

  /// Tasks placed per node; 0 means "fill nodes" (= cores_per_node).
  std::uint32_t tasks_per_node = 0;

  /// Problem-size factor relative to the application's reference problem.
  double problem_scale = 1.0;

  /// Application-specific working-set knob (HydroC block size in KB);
  /// 0 = application default.
  double block_kb = 0.0;

  Platform platform = reference_platform();
  CompilerModel compiler = gfortran();

  std::uint64_t seed = 42;

  /// Multiplier on every phase's noise sigmas — the measurement-noise
  /// robustness knob (1.0 = the application model's own variability).
  double noise_scale = 1.0;

  /// Override the application's default iteration count; 0 keeps it.
  int iterations = 0;

  /// Extra attributes copied verbatim into the trace.
  std::map<std::string, std::string> extra;

  /// Effective tasks per node, clamped to [1, num_tasks].
  std::uint32_t effective_tasks_per_node() const {
    std::uint32_t tpn = tasks_per_node != 0
                            ? tasks_per_node
                            : static_cast<std::uint32_t>(
                                  platform.cores_per_node);
    if (tpn > num_tasks) tpn = num_tasks;
    return tpn == 0 ? 1 : tpn;
  }

  /// Node occupancy fraction in (0, 1]: tasks per node / cores per node.
  double occupancy() const {
    double o = static_cast<double>(effective_tasks_per_node()) /
               static_cast<double>(platform.cores_per_node);
    return o > 1.0 ? 1.0 : o;
  }
};

}  // namespace perftrack::sim
