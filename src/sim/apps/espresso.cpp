#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// Quantum ESPRESSO electronic-structure code (Table 2 row 2).
//
// Nine behaviours across six phases: three of them (the FFT scatter, the
// Davidson diagonalisation and the non-local potential application) are
// bimodal per-task — plane-wave distribution imbalance makes half the
// ranks run a heavier variant simultaneously. Tracking groups each
// bimodal pair, discriminating 6 of 9 objects (66% coverage in Table 2).
AppModel make_espresso() {
  AppModel app("QuantumESPRESSO", /*ref_tasks=*/64.0,
               /*default_iterations=*/14);

  auto bimodal = [](double heavy_fraction, double instr_f, double ipc_f) {
    return std::vector<BehaviorMode>{
        BehaviorMode{.task_fraction = 1.0 - heavy_fraction},
        BehaviorMode{.task_fraction = heavy_fraction,
                     .instr_factor = instr_f,
                     .ipc_factor = ipc_f},
    };
  };

  {
    PhaseSpec p;
    p.name = "fft_scatter";
    p.location = {"fft_scatter", "fft_base.f90", 512};
    p.base_instructions = 24e6;
    p.base_ipc = 0.88;
    p.working_set_kb = 256.0;
    p.modes = bimodal(0.5, 1.5, 0.85);
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "davidson_diag";
    p.location = {"cegterg", "cegterg.f90", 204};
    p.base_instructions = 16e6;
    p.base_ipc = 1.55;
    p.working_set_kb = 144.0;
    p.modes = bimodal(0.45, 1.4, 0.90);
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "vnl_apply";
    p.location = {"add_vuspsi", "add_vuspsi.f90", 98};
    p.base_instructions = 9e6;
    p.base_ipc = 1.18;
    p.working_set_kb = 96.0;
    p.modes = bimodal(0.5, 1.35, 0.88);
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "h_psi_local";
    p.location = {"h_psi", "h_psi.f90", 77};
    p.base_instructions = 5.5e6;
    p.base_ipc = 0.70;
    p.working_set_kb = 64.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "sum_band";
    p.location = {"sum_band", "sum_band.f90", 301};
    p.base_instructions = 3.6e6;
    p.base_ipc = 1.42;
    p.working_set_kb = 48.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "mix_rho";
    p.location = {"mix_rho", "mix_rho.f90", 156};
    p.base_instructions = 2.2e6;
    p.base_ipc = 1.02;
    p.working_set_kb = 32.0;
    app.add_phase(p);
  }

  return app;
}

}  // namespace perftrack::sim
