#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// HydroC / HYDRO, the RAMSES proxy benchmark (§4.4).
//
// A single computing phase (the Godunov solver) with bimodal behaviour —
// modelled as the X and Y sweep invocations of the same source location,
// which the execution-sequence evaluator can tell apart (so both are
// tracked, Table 2's 100% coverage for 2 regions). The scenario's block
// size (block_kb) is the working set: 2-D blocks of 8-byte elements reach
// the 32 KB L1 exactly at 64x64, so the L1 miss rate — and with it the IPC
// — takes its sharp hit when the block grows from 64 to 128 (Fig. 12b/c).
// Small blocks pay control-instruction overhead (~1-3% per halving,
// Fig. 12a) via the block_side_overhead law.
AppModel make_hydroc() {
  AppModel app("HydroC", /*ref_tasks=*/16.0, /*default_iterations=*/24);

  // The study's entire signal is the L1 capacity transition; penalties are
  // small so the total IPC deviation stays in the paper's -5%/-10% band.
  CacheModelParams cache;
  cache.l1_base = 0.005;
  cache.l1_peak = 0.008;
  cache.l1_width = 0.8;
  cache.l1_penalty = 2.5;
  cache.l2_base = 0.0002;
  cache.l2_peak = 0.0003;
  cache.l2_penalty = 5.0;
  cache.tlb_peak = 0.0003;
  cache.tlb_penalty = 2.0;
  app.cache_model() = CacheModel(cache);

  auto godunov = [](const char* name, double instr, double ipc) {
    PhaseSpec p;
    p.name = name;
    p.location = {"riemann", "riemann.c", 212};
    p.base_instructions = instr;
    p.base_ipc = ipc;
    p.working_set_kb = 32.0;  // used when the scenario sets no block size
    p.block_ws_factor = 0.75;
    p.block_side_overhead = 0.25;
    p.instr_task_exp = 0.0;  // single-node study; block size is the knob
    p.ws_task_exp = 0.0;
    return p;
  };

  // Region 1: the X sweep. Region 2: the Y sweep, strided access, lower
  // IPC and a stronger response to the capacity transition (the paper's
  // -5% vs -10% total IPC deviation).
  app.add_phase(godunov("godunov_sweep_x", 16e6, 1.55));
  {
    PhaseSpec p = godunov("godunov_sweep_y", 9.5e6, 1.15);
    p.block_ws_factor = 1.0;   // strided sweep touches more of the block
    p.miss_sensitivity = 2.4;   // and misses more per touch
    app.add_phase(p);
  }

  return app;
}

}  // namespace perftrack::sim
