#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// NAS Parallel Benchmarks (§4.2 and Table 2).
//
// BT: six computing regions run at 16 tasks with problem classes W, A, B, C
// (4x size increase per class; instructions grow two orders of magnitude
// from W to C, Fig. 9). The IPC response is driven entirely by the cache
// model: the three solver sweeps and the rhs computation start with working
// sets near the L2 capacity at class W, so one class step pushes them far
// past it — the sharp 40-65% IPC loss from W to A that then stabilises
// (Fig. 10a, regions 1, 2, 4, 5). The `add` and `exact_rhs` regions start
// with small working sets and cross the capacity gradually, degrading until
// class B. Fig. 10b's L2-miss growth is the same transition seen from the
// counter side.
AppModel make_nas_bt() {
  AppModel app("NAS-BT", /*ref_tasks=*/16.0, /*default_iterations=*/20);

  // Stronger L2 sensitivity than the default: BT's sweeps are memory bound.
  CacheModelParams cache;
  // L1 is far outgrown at every class — keep its (constant) cost small so
  // the class-to-class signal is the L2 transition.
  cache.l1_peak = 0.012;
  cache.l1_penalty = 4.0;
  // A sharp capacity cliff (narrow logistic) reproduces the paper's
  // "sharp loss, then stable" profiles: one 4x class step carries a region
  // from well inside L2 to deep saturation.
  cache.l2_base = 0.0004;
  cache.l2_peak = 0.0045;
  cache.l2_width = 0.45;
  cache.l2_penalty = 160.0;
  app.cache_model() = CacheModel(cache);

  // Instructions grow ~100x over the W(1) -> A(4) -> B(16) -> C(64)
  // problem-scale ladder: 64^1.107 ~= 100.
  constexpr double kInstrScaleExp = 1.107;
  // Working sets grow linearly with the problem scale and are fixed at
  // 16 tasks; ws_task_exp keeps the usual strong-scaling shrink if the
  // task count is varied.
  auto sweep = [&](const char* name, std::uint32_t line, double instr,
                   double ipc, double ws_kb) {
    PhaseSpec p;
    p.name = name;
    p.location = {name, "bt.f", line};
    p.base_instructions = instr;
    p.base_ipc = ipc;
    p.working_set_kb = ws_kb;
    p.instr_scale_exp = kInstrScaleExp;
    p.ws_scale_exp = 1.0;
    return p;
  };

  // Regions 1, 2, 4, 5: class-W working sets just under the 1 MB L2; the
  // 4x step to class A carries them deep past it (sharp 40-65% IPC loss),
  // classes B and C sit on the saturated plateau.
  app.add_phase(sweep("x_solve", 2712, 9.0e6, 1.55, 500.0));
  {
    // Region 2 keeps the class-W IPC variability the paper notes.
    PhaseSpec p = sweep("y_solve", 3104, 7.5e6, 1.35, 470.0);
    p.noise_ipc = 0.05;
    app.add_phase(p);
  }
  app.add_phase(sweep("z_solve", 3496, 6.2e6, 1.18, 440.0));
  app.add_phase(sweep("compute_rhs", 1874, 4.6e6, 1.72, 520.0));

  // Regions 3, 6: working sets two octaves lower — they cross the L2
  // capacity between classes A and B and only stabilise at B.
  app.add_phase(sweep("add", 4121, 3.2e6, 1.90, 130.0));
  app.add_phase(sweep("exact_rhs", 912, 2.2e6, 1.48, 100.0));

  return app;
}

// FT: a long, structurally stable scenario sweep (15 frames in Table 2)
// with two dominant regions — the 3-D FFT and the time-evolution update.
AppModel make_nas_ft() {
  AppModel app("NAS-FT", /*ref_tasks=*/16.0, /*default_iterations=*/18);

  {
    PhaseSpec p;
    p.name = "fft3d";
    p.location = {"fft3d", "ft.f", 1045};
    p.base_instructions = 12e6;
    p.base_ipc = 1.30;
    p.working_set_kb = 384.0;
    p.instr_scale_exp = 1.15;  // n log n growth over the sweep
    p.ws_scale_exp = 1.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "evolve";
    p.location = {"evolve", "ft.f", 633};
    p.base_instructions = 4e6;
    p.base_ipc = 0.95;
    p.working_set_kb = 128.0;
    p.instr_scale_exp = 1.0;
    p.ws_scale_exp = 1.0;
    app.add_phase(p);
  }

  return app;
}

}  // namespace perftrack::sim
