#pragma once
// The application model zoo.
//
// One synthetic model per application of the paper's evaluation (§4,
// Table 2). Each builder returns an AppModel whose phase structure and
// scaling laws reproduce the qualitative behaviour the paper reports for
// that code: cluster counts, splits/merges across scenarios, and the IPC /
// instruction / cache-miss trends of Figs. 7-12 and Table 3. The
// per-experiment scenario sweeps live in sim/studies.hpp.

#include "sim/app.hpp"

namespace perftrack::sim {

/// WRF weather model (§2-3): 12 behavioural regions at 128 tasks; doubling
/// to 256 halves per-task instructions, splits one region into two
/// imbalance zones, degrades two regions' IPC by ~20% and improves three
/// by ~5%; one region shows ~5% instruction replication.
AppModel make_wrf();

/// CGPOP ocean-model proxy (§4.1): two main instruction trends; the second
/// splits into two IPC behaviours on MinoTauro; vendor compilers trade
/// ~30-36% fewer instructions for proportionally lower IPC.
AppModel make_cgpop();

/// NAS BT solver (§4.2): six regions; IPC collapses 40-65% from class W to
/// A for four regions (working set outgrows L2 immediately) and keeps
/// degrading until class B for the other two, mirrored by L2 misses.
AppModel make_nas_bt();

/// NAS FT benchmark (Table 2): two dominant regions, stable structure
/// across a long scenario sweep.
AppModel make_nas_ft();

/// MR-Genesis relativistic MHD code (§4.3): two regions with identical
/// response; instructions constant, IPC degrades with node occupancy
/// through L2/TLB/bandwidth contention.
AppModel make_mrgenesis();

/// HydroC / RAMSES proxy (§4.4): one computing phase with bimodal
/// behaviour (two sweep directions); block size drives control-instruction
/// overhead at small blocks and an L1-capacity IPC dip past 32 KB blocks.
AppModel make_hydroc();

/// Gromacs molecular dynamics (Table 2): five regions; one of them
/// exhibits a per-task bimodal split that tracking cannot discriminate in
/// the 20-frame study (80% coverage).
AppModel make_gromacs(bool bimodal_nonbonded = false);

/// Gadget cosmology code (Table 2): nine behaviours of which two are the
/// simultaneous halves of one bimodal phase (88% coverage).
AppModel make_gadget();

/// Quantum ESPRESSO (Table 2): nine behaviours, three bimodal phases whose
/// halves execute simultaneously (66% coverage).
AppModel make_espresso();

}  // namespace perftrack::sim
