#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// MR-Genesis relativistic magneto-hydrodynamics code (§4.3).
//
// Two dominant computing regions — the finite-volume flux computation and
// the constrained-transport update — with identical responses to resource
// sharing. The §4.3 study runs 12 tasks on MinoTauro and varies only the
// physical mapping (tasks per node, 1..12), so instructions are constant
// (instr_task_exp = 0 relative to the 12-task reference) and the entire IPC
// signal comes from the platform contention model: L2 and TLB miss rates
// inflate and memory-bandwidth stalls grow as the node fills (Fig. 11b),
// producing the slight <1.5%/step decline up to ~66% occupancy and the
// sharp drops towards -17.5% at full occupancy (Fig. 11a).
AppModel make_mrgenesis() {
  AppModel app("MR-Genesis", /*ref_tasks=*/12.0, /*default_iterations=*/30);

  // Contention must be *visible* in the L2/TLB counters (Fig. 11b) while
  // the IPC signal stays dominated by the bandwidth stall term — so the
  // miss penalties are kept small.
  CacheModelParams cache;
  cache.l1_peak = 0.015;
  cache.l1_penalty = 1.5;
  cache.l2_base = 0.0006;
  cache.l2_peak = 0.004;
  cache.l2_penalty = 8.0;
  cache.tlb_base = 0.0002;
  cache.tlb_peak = 0.002;
  cache.tlb_penalty = 4.0;
  app.cache_model() = CacheModel(cache);

  {
    PhaseSpec p;
    p.name = "flux_solver";
    p.location = {"flux_solver", "mrgenesis.f90", 884};
    p.base_instructions = 16e6;
    p.base_ipc = 1.45;
    p.working_set_kb = 220.0;  // ~L2-sized: contention-sensitive
    p.instr_task_exp = 0.0;    // mapping changes, work does not
    p.ws_task_exp = 0.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "ct_update";
    p.location = {"ct_update", "mrgenesis.f90", 1421};
    p.base_instructions = 9e6;
    p.base_ipc = 1.30;
    p.working_set_kb = 190.0;
    p.instr_task_exp = 0.0;
    p.ws_task_exp = 0.0;
    app.add_phase(p);
  }

  return app;
}

}  // namespace perftrack::sim
