#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// WRF (Weather Research & Forecasting model), §2-3 of the paper.
//
// Twelve behavioural regions at the 128-task reference. The paper's Table 1
// shows several regions sharing call-stack references into
// module_comm_dm.f90 — modelled here as distinct phases (separable by the
// execution-sequence evaluator) that reuse a source line. Doubling the task
// count:
//   * halves per-task instructions everywhere except solve_em, whose ~5%
//     replicated halo work makes total instructions grow (Fig. 7b);
//   * splits advect_scalar into two imbalance zones (Fig. 3: region 4 maps
//     34%/65% onto regions 4 and 11);
//   * costs the two low-IPC filter regions ~20% of their IPC while three
//     regions gain ~5% (Fig. 7a).
AppModel make_wrf() {
  AppModel app("WRF", /*ref_tasks=*/128.0, /*default_iterations=*/12);

  // WRF's per-region IPC responses are modelled directly (ipc_task_exp);
  // keep the cache model nearly neutral so halving the per-task working
  // set at 256 tasks does not add its own IPC trend on top.
  CacheModelParams cache;
  cache.l1_base = 0.002;
  cache.l1_peak = 0.002;
  cache.l1_penalty = 2.0;
  cache.l2_base = 0.0002;
  cache.l2_peak = 0.0004;
  cache.l2_penalty = 30.0;
  cache.tlb_base = 0.00005;
  cache.tlb_peak = 0.0001;
  cache.tlb_penalty = 10.0;
  app.cache_model() = CacheModel(cache);

  auto loc = [](const char* function, std::uint32_t line) {
    return trace::SourceLocation{function, "module_comm_dm.f90", line};
  };

  {
    PhaseSpec p;
    p.name = "solve_em";
    p.location = loc("solve_em", 4939);
    p.base_instructions = 40e6;
    p.base_ipc = 1.10;
    p.working_set_kb = 96.0;
    // ~5% total instruction replication per doubling: per-task instructions
    // shrink slightly slower than 1/tasks.
    p.instr_task_exp = -0.93;
    app.add_phase(p);
  }
  {
    // Regions 2 and 5: two invocations of the same halo-exchange line with
    // distinct compute density (paper Table 1, line 6474).
    PhaseSpec p;
    p.name = "halo_em_a";
    p.location = loc("halo_em", 6474);
    p.base_instructions = 25e6;
    p.base_ipc = 0.95;
    p.working_set_kb = 64.0;
    // Vertical stretch: instruction imbalance (paper: "region 2 denotes
    // instructions imbalance").
    p.imbalance_fraction = 0.25;
    p.imbalance_amount = 0.35;
    app.add_phase(p);

    PhaseSpec q;
    q.name = "halo_em_b";
    q.location = loc("halo_em", 6474);
    q.base_instructions = 15.2e6;
    q.base_ipc = 1.22;
    q.working_set_kb = 48.0;
    app.add_phase(q);
  }
  {
    PhaseSpec p;
    p.name = "rk_step";
    p.location = loc("rk_step_prep", 6060);
    p.base_instructions = 18e6;
    p.base_ipc = 1.32;
    p.working_set_kb = 72.0;
    app.add_phase(p);
  }
  {
    // Region 4: splits into two imbalance zones at 256 tasks (the paper's
    // region 4 -> {4, 11} transition, Fig. 3). The split is per-task, so
    // both halves run simultaneously and the SPMD evaluator correctly
    // groups them as one tracked region.
    PhaseSpec p;
    p.name = "advect_scalar";
    p.location = loc("advect_scalar", 2472);
    p.base_instructions = 11.2e6;
    p.base_ipc = 0.85;
    p.working_set_kb = 56.0;
    p.ipc_task_exp = 0.070;  // ~ +5% per doubling (Fig. 7a)
    // Wide cluster: the split-to-be region carries visible instruction
    // variability already at 128 tasks.
    p.noise_instr = 0.02;
    // The split is purely instructional — "new zones of imbalance appear" —
    // roughly preserves the total work (0.35*1.164 + 0.65*0.874 ~= 0.975), and brackets
    // the old cluster's position so the displacement cross-classification
    // reproduces Fig. 3's ~34%/65% row for region 4.
    p.modes = {
        BehaviorMode{.task_fraction = 0.35,
                     .instr_factor = 1.1636,
                     .min_tasks = 256},
        BehaviorMode{.task_fraction = 0.65,
                     .instr_factor = 0.8736,
                     .min_tasks = 256},
    };
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "physics_driver";
    p.location = loc("physics_driver", 3105);
    p.base_instructions = 10e6;
    p.base_ipc = 1.45;
    p.working_set_kb = 40.0;
    p.ipc_task_exp = 0.070;
    app.add_phase(p);
  }
  {
    // Region 7: wide horizontal cluster (IPC variation, paper Fig. 1a);
    // shares its source line with nothing, but sits in the same file
    // region as the low-IPC filters.
    PhaseSpec p;
    p.name = "microphysics";
    p.location = loc("microphysics", 5734);
    p.base_instructions = 7.3e6;
    p.base_ipc = 0.62;
    p.working_set_kb = 128.0;
    p.ipc_task_exp = 0.070;
    p.noise_ipc = 0.055;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "radiation";
    p.location = loc("radiation_driver", 7210);
    p.base_instructions = 6e6;
    p.base_ipc = 1.18;
    p.working_set_kb = 36.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "pbl_driver";
    p.location = loc("pbl_driver", 1890);
    p.base_instructions = 5e6;
    p.base_ipc = 0.76;
    p.working_set_kb = 32.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "cumulus";
    p.location = loc("cumulus_driver", 8450);
    p.base_instructions = 5.2e6;
    p.base_ipc = 1.04;
    p.working_set_kb = 28.0;
    app.add_phase(p);
  }
  {
    // Regions 11 and 12: the two small low-IPC filters that lose ~20% IPC
    // when doubling tasks (Fig. 7a) and move far in the performance space
    // (the "long way" case of §3.1). They share source line 6275
    // (Table 1).
    PhaseSpec p;
    p.name = "small_step_filter";
    p.location = loc("small_step_filter", 6275);
    p.base_instructions = 1.9e6;
    p.base_ipc = 0.50;
    p.working_set_kb = 24.0;
    p.ipc_task_exp = -0.322;  // ~ -20% per doubling
    p.noise_ipc = 0.045;      // horizontal stretch (Fig. 1a)
    app.add_phase(p);

    PhaseSpec q;
    q.name = "polar_filter";
    q.location = loc("polar_filter", 6275);
    q.base_instructions = 1.6e6;
    q.base_ipc = 0.42;
    q.working_set_kb = 20.0;
    q.ipc_task_exp = -0.322;
    app.add_phase(q);
  }
  return app;
}

}  // namespace perftrack::sim
