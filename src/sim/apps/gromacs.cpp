#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// Gromacs molecular dynamics (Table 2 rows 4 and 10).
//
// Five behavioural regions: non-bonded force kernel, bonded forces, PME
// spread/gather, constraint solver (SETTLE/LINCS) and neighbour-list
// update. The 3-frame study (strong scaling) tracks all five (100%
// coverage). The 20-frame study uses the bimodal variant: the non-bonded
// kernel splits per-task into a water/non-water pair of simultaneous
// behaviours that tracking must group, capping coverage at 4/5 = 80%.
AppModel make_gromacs(bool bimodal_nonbonded) {
  AppModel app("Gromacs", /*ref_tasks=*/64.0, /*default_iterations=*/16);

  {
    PhaseSpec p;
    p.name = "nonbonded_kernel";
    p.location = {"nb_kernel", "nonbonded.c", 310};
    p.base_instructions = 30e6;
    p.base_ipc = 1.60;
    p.working_set_kb = 96.0;
    if (bimodal_nonbonded) {
      p.modes = {
          BehaviorMode{.task_fraction = 0.55},
          BehaviorMode{.task_fraction = 0.45,
                       .instr_factor = 1.22,
                       .ipc_factor = 0.82},
      };
    }
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "bonded_forces";
    p.location = {"calc_bonds", "bondfree.c", 1882};
    p.base_instructions = 12e6;
    p.base_ipc = 1.10;
    p.working_set_kb = 48.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "pme_spread";
    p.location = {"spread_q_bsplines", "pme.c", 741};
    p.base_instructions = 7e6;
    p.base_ipc = 0.78;
    p.working_set_kb = 160.0;
    // Mild degradation over long runs (domain drift).
    p.ipc_scale_exp = -0.25;
    app.add_phase(p);
  }
  if (!bimodal_nonbonded) {
    // In the long production runs of the 20-frame study the constraint
    // solver is folded into the update and never surfaces as its own
    // region; the strong-scaling study resolves it separately.
    PhaseSpec p;
    p.name = "constraints";
    p.location = {"csettle", "clincs.c", 403};
    p.base_instructions = 4e6;
    p.base_ipc = 1.35;
    p.working_set_kb = 24.0;
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "ns_update";
    p.location = {"ns_grid", "ns.c", 1214};
    p.base_instructions = 2.4e6;
    p.base_ipc = 0.62;
    p.working_set_kb = 72.0;
    // Neighbour lists grow as particles mix: more instructions over time.
    p.instr_scale_exp = 1.35;
    app.add_phase(p);
  }

  return app;
}

}  // namespace perftrack::sim
