#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// Gadget cosmological N-body/SPH code (Table 2 row 1).
//
// Nine behaviours across eight phases: the tree-walk force phase is
// bimodal per-task (particle-rich vs particle-poor domains execute
// simultaneously), so its two clusters are grouped by the SPMD evaluator
// and the study tracks 8 of 9 identifiable objects (88% coverage).
AppModel make_gadget() {
  AppModel app("Gadget", /*ref_tasks=*/64.0, /*default_iterations=*/14);

  auto phase = [](const char* name, const char* file, std::uint32_t line,
                  double instr, double ipc, double ws) {
    PhaseSpec p;
    p.name = name;
    p.location = {name, file, line};
    p.base_instructions = instr;
    p.base_ipc = ipc;
    p.working_set_kb = ws;
    return p;
  };

  {
    PhaseSpec p = phase("force_treewalk", "forcetree.c", 2210, 36e6, 1.25,
                        128.0);
    p.modes = {
        BehaviorMode{.task_fraction = 0.6},
        BehaviorMode{.task_fraction = 0.4,
                     .instr_factor = 1.45,
                     .ipc_factor = 0.88},
    };
    app.add_phase(p);
  }
  app.add_phase(phase("density_sph", "density.c", 911, 20e6, 0.92, 96.0));
  app.add_phase(phase("hydro_force", "hydra.c", 612, 14e6, 1.05, 88.0));
  app.add_phase(phase("domain_decomp", "domain.c", 387, 9e6, 0.58, 192.0));
  app.add_phase(phase("gravity_pm", "pm_periodic.c", 1444, 6.5e6, 1.48,
                      320.0));
  app.add_phase(phase("timestep_kick", "timestep.c", 255, 4.2e6, 1.72,
                      20.0));
  app.add_phase(phase("peano_sort", "peano.c", 128, 2.8e6, 0.75, 64.0));
  app.add_phase(phase("io_buffer_pack", "io.c", 530, 1.8e6, 1.10, 40.0));

  return app;
}

}  // namespace perftrack::sim
