#include "sim/apps/apps.hpp"

namespace perftrack::sim {

// CGPOP, the Parallel Ocean Program conjugate-gradient proxy app (§4.1).
//
// Two dominant computing regions (paper Table 3): the matrix-vector product
// of the CG solver (region 1, ~6.8M instructions per burst on MareNostrum /
// gfortran at IPC 0.25) and the halo update (region 2, ~4.5M instructions,
// same IPC on MareNostrum). The matvec runs four times per CG iteration,
// which yields the paper's ~5.7x duration ratio between regions.
//
// On MinoTauro the halo update splits into two IPC behaviours (the paper's
// region 2 -> {2, 3} platform split): the split is per-task, so both halves
// execute simultaneously and the tracker must group them — exactly the
// grouping that caps the CGPOP study at 66% coverage in Table 2.
//
// Compiler and platform responses (instructions, IPC) come from the
// CompilerModel / Platform factors; no per-phase tuning is needed to
// reproduce Table 3's "fewer instructions at proportionally lower IPC".
AppModel make_cgpop() {
  AppModel app("CGPOP", /*ref_tasks=*/128.0, /*default_iterations=*/25);

  // CGPOP's IPC is fixed by compiler/platform factors (Table 3); a nearly
  // neutral cache model keeps the measured IPC at those values.
  CacheModelParams cache;
  cache.l1_base = 0.002;
  cache.l1_peak = 0.002;
  cache.l1_penalty = 2.0;
  cache.l2_base = 0.0002;
  cache.l2_peak = 0.0004;
  cache.l2_penalty = 30.0;
  cache.tlb_base = 0.00005;
  cache.tlb_peak = 0.0001;
  cache.tlb_penalty = 10.0;
  app.cache_model() = CacheModel(cache);

  {
    PhaseSpec p;
    p.name = "btrops_matvec";
    p.location = {"btrops_matvec", "solvers.F90", 401};
    p.base_instructions = 6.8e6;
    // 0.25 measured on packed MareNostrum nodes; the node-sharing stall
    // factor (~1.18 at full occupancy) is part of the platform model.
    p.base_ipc = 0.294;
    p.working_set_kb = 48.0;
    p.repeats = 4;
    // Bimodal on MareNostrum (Fig. 8a/b: the large instruction trend is
    // divided into IPC sub-regions); mean stays at Table 3's 0.25.
    p.modes = {
        BehaviorMode{.task_fraction = 0.5,
                     .ipc_factor = 0.85,
                     .platform_filter = "MareNostrum"},
        BehaviorMode{.task_fraction = 0.5,
                     .ipc_factor = 1.15,
                     .platform_filter = "MareNostrum"},
    };
    app.add_phase(p);
  }
  {
    PhaseSpec p;
    p.name = "update_halo";
    p.location = {"update_halo", "boundary.F90", 1132};
    p.base_instructions = 4.5e6;
    p.base_ipc = 0.294;
    p.working_set_kb = 32.0;
    // Bimodal on MinoTauro only: mean IPC 0.42 * (1.0, 1.4)/2 ~= 0.50,
    // the paper's Table 3 value for region 2 on MinoTauro/gfortran.
    p.modes = {
        BehaviorMode{.task_fraction = 0.5, .platform_filter = "MinoTauro"},
        BehaviorMode{.task_fraction = 0.5,
                     .ipc_factor = 1.4,
                     .platform_filter = "MinoTauro"},
    };
    app.add_phase(p);
  }

  return app;
}

}  // namespace perftrack::sim
