#include "sim/phase.hpp"

#include <cmath>

#include "common/error.hpp"

namespace perftrack::sim {

PhaseSpec::Sample PhaseSpec::evaluate(const Scenario& scenario,
                                      std::uint32_t task,
                                      double ref_tasks) const {
  PT_REQUIRE(ref_tasks > 0.0, "reference task count must be positive");
  PT_REQUIRE(task < scenario.num_tasks, "task out of range");

  const double task_ratio =
      static_cast<double>(scenario.num_tasks) / ref_tasks;
  const double scale = scenario.problem_scale;

  Sample s;
  s.instructions = base_instructions * std::pow(task_ratio, instr_task_exp) *
                   std::pow(scale, instr_scale_exp) *
                   scenario.compiler.instruction_factor *
                   scenario.platform.instr_factor;
  s.ipc_ideal = base_ipc * std::pow(task_ratio, ipc_task_exp) *
                std::pow(scale, ipc_scale_exp) *
                scenario.platform.ipc_factor * scenario.compiler.ipc_factor;
  s.working_set_kb = working_set_kb * std::pow(task_ratio, ws_task_exp) *
                     std::pow(scale, ws_scale_exp);

  // Block-size response (HydroC-style working-set knob).
  if (scenario.block_kb > 0.0 && block_ws_factor > 0.0) {
    s.working_set_kb = scenario.block_kb * block_ws_factor;
    if (instr_block_exp != 0.0)
      s.instructions *=
          std::pow(scenario.block_kb / block_ref_kb, instr_block_exp);
    if (block_side_overhead > 0.0) {
      double side = std::sqrt(scenario.block_kb * 1024.0 / 8.0);
      s.instructions *= 1.0 + block_side_overhead / side;
    }
  }

  // Work imbalance: a linear ramp over the first `imbalance_fraction` of
  // the task range, from (1 + amount) at task 0 down to 1 at the boundary.
  // The ramp keeps the cluster connected (an elongated object, not a
  // split), matching the paper's "stretched" imbalance clusters.
  if (imbalance_fraction > 0.0 && imbalance_amount != 0.0 &&
      scenario.num_tasks >= imbalance_min_tasks) {
    double pos = (static_cast<double>(task) + 0.5) /
                 static_cast<double>(scenario.num_tasks);
    if (pos < imbalance_fraction)
      s.instructions *= 1.0 + imbalance_amount * (1.0 - pos / imbalance_fraction);
  }

  // Multimodal behaviour: applicable modes partition the task range by
  // their (renormalised) fractions; the task's position picks its mode.
  if (!modes.empty()) {
    double total = 0.0;
    for (const BehaviorMode& m : modes)
      if (m.applies(scenario)) total += m.task_fraction;
    if (total > 0.0) {
      double pos = (static_cast<double>(task) + 0.5) /
                   static_cast<double>(scenario.num_tasks);
      double cursor = 0.0;
      for (const BehaviorMode& m : modes) {
        if (!m.applies(scenario)) continue;
        cursor += m.task_fraction / total;
        if (pos <= cursor || cursor >= 1.0 - 1e-12) {
          s.instructions *= m.instr_factor;
          s.ipc_ideal *= m.ipc_factor;
          s.working_set_kb *= m.ws_factor;
          break;
        }
      }
    }
  }

  PT_ASSERT(s.instructions > 0.0 && s.ipc_ideal > 0.0,
            "phase sample must be positive");
  return s;
}

}  // namespace perftrack::sim
