#pragma once
// Analytical cache / TLB / contention model.
//
// The paper's case studies all trace IPC changes back to memory-hierarchy
// effects: NAS BT loses IPC as the working set outgrows L2 (§4.2, Fig. 10b),
// MR-Genesis as node occupancy inflates L2/TLB misses (§4.3, Fig. 11b), and
// HydroC when the block stops fitting in the 32 KB L1 (§4.4, Fig. 12c).
// This model produces those relationships analytically:
//
//   miss rate(ws) = base + peak * logistic(log2(ws / capacity) / width)
//
// — a smooth capacity transition centred where the working set equals the
// cache size — and contention factors that scale miss rates and add stall
// cycles as the node fills. CPI is then
//
//   cpi = 1/ipc_ideal + Σ rate_i * penalty_i, scaled by bandwidth stalls.

#include "sim/platform.hpp"
#include "sim/scenario.hpp"

namespace perftrack::sim {

struct MissRates {
  double l1 = 0.0;   ///< L1D misses per instruction
  double l2 = 0.0;   ///< L2 misses per instruction
  double tlb = 0.0;  ///< TLB misses per instruction
};

struct CacheModelParams {
  double l1_base = 0.004, l1_peak = 0.060, l1_width = 0.8;
  double l2_base = 0.0004, l2_peak = 0.012, l2_width = 1.0;
  double tlb_base = 0.0001, tlb_peak = 0.004, tlb_width = 1.0;

  // Stall cycles per miss.
  double l1_penalty = 8.0;
  double l2_penalty = 160.0;
  double tlb_penalty = 40.0;
};

class CacheModel {
public:
  CacheModel() = default;
  explicit CacheModel(CacheModelParams params) : params_(params) {}

  const CacheModelParams& params() const { return params_; }

  /// Smooth capacity miss-rate transition for a working set of `ws_kb`
  /// against a capacity of `capacity_kb`.
  static double capacity_rate(double ws_kb, double capacity_kb, double base,
                              double peak, double width);

  /// Miss rates for a phase with the given per-task working set under the
  /// scenario's platform and node occupancy (contention included).
  MissRates rates(double working_set_kb, const Scenario& scenario) const;

  /// Cycles per instruction given an ideal IPC and the miss rates,
  /// including the scenario's bandwidth-contention stall factor.
  double cpi(double ipc_ideal, const MissRates& rates,
             const Scenario& scenario) const;

private:
  CacheModelParams params_;
};

/// Contention multiplier (1 + coefficient * occupancy^exponent), normalised
/// so that a single task per node gives exactly 1.0.
double contention_factor(double coefficient, double exponent,
                         const Scenario& scenario);

}  // namespace perftrack::sim
