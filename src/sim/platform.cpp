#include "sim/platform.hpp"

namespace perftrack::sim {

Platform marenostrum() {
  Platform p;
  p.name = "MareNostrum";
  p.cores_per_node = 4;  // 2x dual-core PowerPC 970MP
  p.clock_ghz = 2.3;
  p.l1_kb = 32.0;
  p.l2_kb = 1024.0;
  p.tlb_reach_kb = 4096.0;
  p.ipc_factor = 1.0;
  p.l2_contention = 1.2;
  p.tlb_contention = 0.8;
  p.bw_contention = 0.18;
  p.contention_exponent = 3.0;
  return p;
}

Platform minotauro() {
  Platform p;
  p.name = "MinoTauro";
  p.cores_per_node = 12;  // 2x 6-core Xeon E5649
  p.clock_ghz = 2.53;
  p.l1_kb = 32.0;
  p.l2_kb = 256.0;  // private L2 per core
  p.tlb_reach_kb = 2048.0;
  // Out-of-order Xeon sustains clearly higher IPC than the PPC 970MP on the
  // paper's codes (CGPOP: 0.25 -> 0.42 for the same compiler family, both
  // measured on fully packed nodes — the factor below is the *uncontended*
  // ratio; bandwidth contention takes its ~17.5% back at full occupancy).
  p.ipc_factor = 1.62;
  p.instr_factor = 0.735;
  p.l2_contention = 1.6;
  p.tlb_contention = 1.1;
  p.bw_contention = 0.136;
  p.contention_exponent = 6.0;
  return p;
}

Platform reference_platform() {
  Platform p;
  p.name = "Reference";
  p.cores_per_node = 16;
  p.clock_ghz = 1.0;
  p.l1_kb = 32.0;
  p.l2_kb = 512.0;
  p.tlb_reach_kb = 4096.0;
  p.ipc_factor = 1.0;
  return p;
}

}  // namespace perftrack::sim
