#pragma once
// Phase specifications: the behavioural building blocks of an application.
//
// An AppModel is a list of phases executed once per iteration by every task
// (the SPMD structure the paper's §3.2 evaluator exploits). Each PhaseSpec
// describes one computing region: its source location, its instruction and
// working-set laws as functions of the scenario, its ideal IPC, optional
// work imbalance across tasks, and optional multimodal behaviour (a single
// code region exhibiting two or more distinct performances — the
// bimodality that makes clusters split, §2).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.hpp"
#include "trace/callstack.hpp"

namespace perftrack::sim {

/// One behavioural mode of a multimodal phase. Modes partition the tasks:
/// mode i covers a contiguous `task_fraction` share of the task range.
/// Modes can be conditional on the platform or on a minimum task count so a
/// region can be unimodal in one experiment and split in the next (the
/// WRF region-4 and CGPOP region-2 splits of the paper).
struct BehaviorMode {
  double task_fraction = 1.0;
  double instr_factor = 1.0;
  double ipc_factor = 1.0;
  double ws_factor = 1.0;

  /// Apply only on this platform ("" = any).
  std::string platform_filter;
  /// Apply only when the scenario runs at least this many tasks.
  std::uint32_t min_tasks = 0;

  bool applies(const Scenario& scenario) const {
    if (!platform_filter.empty() &&
        platform_filter != scenario.platform.name)
      return false;
    return scenario.num_tasks >= min_tasks;
  }
};

struct PhaseSpec {
  std::string name;
  trace::SourceLocation location;

  /// Instructions per task per invocation at the reference scenario
  /// (ref_tasks tasks, problem_scale 1).
  double base_instructions = 1e7;

  /// Ideal IPC (before cache penalties and platform/compiler factors).
  double base_ipc = 1.2;

  /// Per-task working set (KB) at the reference scenario.
  double working_set_kb = 64.0;

  // Scaling laws: factor = pow(num_tasks / ref_tasks, exp) etc.
  double instr_task_exp = -1.0;    ///< strong scaling by default
  double instr_scale_exp = 1.0;    ///< instructions grow with problem size
  double ws_task_exp = -1.0;
  double ws_scale_exp = 1.0;
  double ipc_task_exp = 0.0;       ///< direct IPC response to task count
  double ipc_scale_exp = 0.0;      ///< direct IPC response to problem size

  /// If the scenario sets block_kb, the working set becomes
  /// block_kb * block_ws_factor instead of the scaling law (HydroC), and
  /// instructions are additionally multiplied by
  /// pow(block_kb / block_ref_kb, instr_block_exp).
  double block_ws_factor = 0.0;    ///< 0 = insensitive to block size
  double block_ref_kb = 32.0;
  double instr_block_exp = 0.0;

  /// Control-instruction overhead of small blocks: instructions are
  /// multiplied by (1 + block_side_overhead / side) where `side` is the
  /// element count per block side (square blocks of 8-byte elements).
  /// Models HydroC's "more working sets to compute -> more control
  /// instructions" (§4.4). 0 disables.
  double block_side_overhead = 0.0;

  /// Work imbalance: the first `imbalance_fraction` of the tasks execute
  /// extra instructions on a linear ramp from (1 + imbalance_amount) at
  /// task 0 down to 1 at the fraction boundary — an elongated (stretched)
  /// cluster rather than a split one.
  double imbalance_fraction = 0.0;
  double imbalance_amount = 0.0;
  /// Only apply the imbalance at or above this task count.
  std::uint32_t imbalance_min_tasks = 0;

  /// Multimodality; empty = unimodal. Fractions of applicable modes are
  /// renormalised; if no mode applies the phase is unimodal.
  std::vector<BehaviorMode> modes;

  /// Multiplier on every miss rate of this phase (models access-pattern
  /// differences between phases sharing one cache model: a strided sweep
  /// misses more than a unit-stride one).
  double miss_sensitivity = 1.0;

  /// Lognormal noise sigmas on instructions and ideal IPC.
  double noise_instr = 0.008;
  double noise_ipc = 0.012;

  /// Invocations per iteration.
  int repeats = 1;

  /// Evaluate the deterministic (pre-noise) per-task values under a
  /// scenario. `task` selects imbalance membership and behaviour mode.
  struct Sample {
    double instructions = 0.0;
    double ipc_ideal = 0.0;
    double working_set_kb = 0.0;
  };
  Sample evaluate(const Scenario& scenario, std::uint32_t task,
                  double ref_tasks) const;
};

}  // namespace perftrack::sim
