#pragma once
// Compiler models.
//
// The CGPOP study (§4.1) compares a generic compiler (GNU Fortran) against
// the platform vendors' compilers (IBM XL, Intel) and finds the specialised
// compilers emit ~30-36% fewer instructions at a proportionally lower IPC,
// leaving execution time essentially unchanged. A CompilerModel captures
// exactly those two levers.

#include <string>

namespace perftrack::sim {

struct CompilerModel {
  std::string name;
  /// Multiplier on the instruction count a phase executes.
  double instruction_factor = 1.0;
  /// Multiplier on the ideal IPC the phase achieves.
  double ipc_factor = 1.0;
};

/// GNU Fortran: the 1.0/1.0 reference point.
CompilerModel gfortran();

/// IBM XL Fortran on PowerPC: -36% instructions, -36% IPC (paper Table 3).
CompilerModel xlf();

/// Intel Fortran on Xeon: -30% instructions, -28% IPC (paper Table 3).
CompilerModel ifort();

}  // namespace perftrack::sim
