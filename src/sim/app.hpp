#pragma once
// Application models and the trace generator.
//
// An AppModel is the synthetic equivalent of one of the paper's MPI
// applications: an ordered list of phases executed by every task in every
// iteration (SPMD), plus a reference task count that anchors the scaling
// laws. simulate() runs the model under a Scenario and emits the Trace an
// Extrae-style interposition layer would have recorded: per task, the
// time-ordered CPU bursts with hardware counters (from the analytical cache
// model) and call-stack references, separated by communication gaps.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/phase.hpp"
#include "sim/scenario.hpp"
#include "trace/trace.hpp"

namespace perftrack::sim {

class AppModel {
public:
  AppModel(std::string name, double ref_tasks, int default_iterations);

  const std::string& name() const { return name_; }
  double ref_tasks() const { return ref_tasks_; }
  int default_iterations() const { return default_iterations_; }

  void add_phase(PhaseSpec phase);
  const std::vector<PhaseSpec>& phases() const { return phases_; }

  CacheModel& cache_model() { return cache_; }
  const CacheModel& cache_model() const { return cache_; }

  /// Fraction of a burst's duration spent in the following communication
  /// gap (advances the task clock between bursts).
  void set_comm_fraction(double fraction) { comm_fraction_ = fraction; }

  /// Generate the trace of one execution under `scenario`.
  trace::Trace simulate(const Scenario& scenario) const;

  /// Convenience: simulate and wrap in a shared_ptr (frames keep traces
  /// alive by shared ownership).
  std::shared_ptr<const trace::Trace> simulate_shared(
      const Scenario& scenario) const;

private:
  std::string name_;
  double ref_tasks_;
  int default_iterations_;
  std::vector<PhaseSpec> phases_;
  CacheModel cache_;
  double comm_fraction_ = 0.15;
};

}  // namespace perftrack::sim
