#pragma once
// Minimal JSON support for the telemetry sinks.
//
// JsonWriter builds syntactically valid JSON incrementally (commas and
// nesting handled by a state stack); parse_json reads it back into a
// JsonValue tree. The dialect is the subset the run reports need: objects,
// arrays, strings, finite doubles, booleans and null. Non-finite doubles
// are written as null (JSON has no NaN/Inf).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace perftrack::obs {

/// Escape `text` for inclusion inside a JSON string literal (no quotes).
std::string escape_json(std::string_view text);

class JsonWriter {
public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  const std::string& str() const { return out_; }

private:
  void before_value();

  std::string out_;
  // One frame per open container: do we need a comma before the next item?
  std::vector<bool> comma_;
  bool after_key_ = false;
};

/// Parsed JSON value (tree). Arrays/objects own their children.
class JsonValue {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  /// Object member access; throws Error when absent or not an object.
  const JsonValue& at(const std::string& name) const;
  bool has(const std::string& name) const {
    return is_object() && object.count(name) > 0;
  }
};

/// Parse a complete JSON document; throws ParseError on malformed input or
/// trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace perftrack::obs
