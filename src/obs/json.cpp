#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace perftrack::obs {

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!comma_.empty()) {
    if (comma_.back()) out_ += ',';
    comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!comma_.empty()) {
    if (comma_.back()) out_ += ',';
    comma_.back() = true;
  }
  out_ += '"';
  out_ += escape_json(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape_json(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const JsonValue& JsonValue::at(const std::string& name) const {
  if (!is_object()) throw Error("JSON value is not an object");
  auto it = object.find(name);
  if (it == object.end()) throw Error("missing JSON member: " + name);
  return it->second;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters after JSON document");
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (consume_literal("true")) v.boolean = true;
        else if (consume_literal("false")) v.boolean = false;
        else fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(name), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only — enough for our own escaped output).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) fail("expected a number");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    std::string token(text_.substr(start, pos_ - start));
    v.number = std::strtod(token.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace perftrack::obs
