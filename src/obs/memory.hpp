#pragma once
// Process memory introspection for run reports.

#include <cstdint>

namespace perftrack::obs {

/// Peak resident set size of the current process in bytes (VmHWM on Linux).
/// Returns 0 where the platform offers no cheap way to read it.
std::uint64_t peak_rss_bytes();

}  // namespace perftrack::obs
