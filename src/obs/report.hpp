#pragma once
// Telemetry sinks: summary table, JSON run report, Chrome trace events.
//
// Three renderings of the same recorded run:
//  * summary_table — human-readable per-stage table for the terminal,
//  * report_json   — structured run report ("perftrack-run-report" schema,
//                    see docs/OBSERVABILITY.md), the format every bench and
//                    the perftrack --profile flag emit,
//  * trace_events_json — Chrome trace_event JSON; load it in Perfetto
//                    (https://ui.perfetto.dev) or chrome://tracing.

#include <string>

#include "obs/telemetry.hpp"

namespace perftrack::obs {

/// Render the aggregated span tree and counters as aligned text tables.
std::string summary_table(const RunReport& report);

/// Serialize the run report as JSON (schema "perftrack-run-report", v1).
std::string report_json(const RunReport& report);

/// Serialize the raw recorded timelines in Chrome trace_event format.
std::string trace_events_json();

/// Write report_json(report) to `path`; throws IoError on failure.
void save_report_json(const std::string& path, const RunReport& report);

/// Write trace_events_json() to `path`; throws IoError on failure.
void save_trace_events(const std::string& path);

}  // namespace perftrack::obs
