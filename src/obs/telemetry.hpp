#pragma once
// Pipeline telemetry: scoped spans, counters and gauges.
//
// The tracking pipeline is a multi-stage computation (project -> cluster ->
// align -> evaluate -> combine -> chain); this module measures it. Library
// code marks stages with PT_SPAN("name") and attaches numbers to the active
// stage with PT_COUNTER/PT_GAUGE. Recording is off by default: a disabled
// span costs one relaxed atomic load, so the instrumentation can stay in
// release builds (the perf_tracking benches pin the overhead).
//
//   void dbscan(...) {
//     PT_SPAN("dbscan");
//     ...
//     PT_COUNTER("noise_points", result.noise_count());
//   }
//
// Spans nest lexically and the nesting is recorded: collect() folds the raw
// per-thread event streams into one hierarchical tree whose nodes aggregate
// every execution of the same stage at the same position (count, total and
// self wall-time, attached counters). Three sinks render it (obs/report.hpp):
// a text summary table, a structured JSON run report, and Chrome
// trace_event JSON loadable in Perfetto / chrome://tracing.
//
// Thread safety: every thread records into its own buffer (registered once
// under a mutex); collect() merges stage trees across threads by span name.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace perftrack::obs {

/// Is telemetry recording globally enabled? Defaults to off (or on when the
/// build sets PERFTRACK_PROFILING, see the top-level CMake option).
bool enabled();
void set_enabled(bool on);

/// Discard everything recorded so far (spans, counters, gauges) on every
/// thread. Thread registrations survive.
void reset();

/// Monotonic nanoseconds since the telemetry clock anchor (first use).
std::uint64_t now_ns();

/// RAII span. Use via PT_SPAN; `name` must have static storage duration
/// (string literals) — the recorder stores the pointer, not a copy.
class ScopedSpan {
public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
  const char* name_;
  bool active_;
};

/// Names of the spans currently open on this thread, outermost first.
/// Capture this on a submitting thread and adopt it on a worker with
/// SpanContext, so spans recorded inside pool tasks keep their place in
/// the collected tree instead of dangling off the root.
std::vector<const char*> current_span_path();

/// RAII adoption of a span path on another thread. Records context markers
/// that position subsequent spans and counters under `path` when the
/// per-thread streams are folded, without adding to the path spans' counts
/// or wall time (the submitting thread already measures those). The prefix
/// of `path` already open on the current thread is skipped, so adopting on
/// the submitting thread itself (a pool in inline mode) is a no-op.
class SpanContext {
public:
  explicit SpanContext(const std::vector<const char*>& path);
  ~SpanContext();
  SpanContext(const SpanContext&) = delete;
  SpanContext& operator=(const SpanContext&) = delete;

private:
  std::vector<const char*> adopted_;
};

/// Add `value` to counter `name` on the active span of this thread (sums
/// across calls and threads). `name` must be a string literal.
void add_counter(const char* name, double value = 1.0);

/// Set gauge `name` to `value`. Last write wins *by recording timestamp*:
/// collect() resolves writes from different threads deterministically by
/// the telemetry clock (now_ns) at the moment of the set, independent of
/// thread registration order; writes in the same nanosecond resolve to
/// the larger value. `name` must be a string literal.
void set_gauge(const char* name, double value);

// ---------------------------------------------------------------------------
// Collected results.

/// One stage of the aggregated span tree. Executions of the same span name
/// under the same parent are folded together.
struct SpanNode {
  std::string name;
  std::uint64_t count = 0;     ///< number of executions
  std::uint64_t total_ns = 0;  ///< wall time, children included
  std::uint64_t self_ns = 0;   ///< total_ns minus children's total_ns
  std::uint64_t min_ns = 0;    ///< fastest completed execution (0 if none)
  std::uint64_t max_ns = 0;    ///< slowest completed execution (0 if none)
  std::map<std::string, double> counters;  ///< counters recorded inside
  std::vector<SpanNode> children;
};

/// Aggregated view of everything recorded so far. The root node is the
/// synthetic "run" span covering the whole process lifetime.
struct RunReport {
  std::string label;  ///< optional run identifier (bench id, command line)
  SpanNode root;
  std::map<std::string, double> counters;  ///< totals across all spans
  std::map<std::string, double> gauges;
  std::uint64_t wall_ns = 0;
  std::uint64_t peak_rss_bytes = 0;
};

/// Snapshot and aggregate the recorded events (does not clear them).
RunReport collect();

/// Raw per-thread event streams, for the Chrome trace_event sink.
struct TimelineEvent {
  /// CtxBegin/CtxEnd are SpanContext markers: they re-open a span name for
  /// tree placement only (no execution count, no wall time).
  enum class Kind { Begin, End, Counter, Gauge, CtxBegin, CtxEnd };
  Kind kind;
  const char* name;
  double value;
  std::uint64_t ts_ns;
};

struct ThreadTimeline {
  std::uint32_t tid = 0;
  std::vector<TimelineEvent> events;
};

/// Snapshot the raw timelines (does not clear them).
std::vector<ThreadTimeline> timelines();

/// Snapshot the calling thread's own raw events (does not clear them).
/// The serve layer's slow-request capture uses this to extract the span
/// tree of one request window without copying every thread's stream.
ThreadTimeline current_thread_timeline();

}  // namespace perftrack::obs

#define PT_OBS_CONCAT_IMPL(a, b) a##b
#define PT_OBS_CONCAT(a, b) PT_OBS_CONCAT_IMPL(a, b)

/// Time the enclosing scope as pipeline stage `name` (a string literal).
#define PT_SPAN(name) \
  ::perftrack::obs::ScopedSpan PT_OBS_CONCAT(pt_span_, __LINE__)(name)

/// Add `value` to counter `name` on the active span.
#define PT_COUNTER(name, value) ::perftrack::obs::add_counter(name, value)

/// Set gauge `name` to `value` (last write wins).
#define PT_GAUGE(name, value) ::perftrack::obs::set_gauge(name, value)
