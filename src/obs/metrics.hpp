#pragma once
// Live metrics: lock-light histograms and a sampleable registry.
//
// The telemetry layer (telemetry.hpp) records a *run* — an event stream
// folded into one report at the end. A long-running daemon needs the
// opposite: named counters, gauges and latency histograms that are always
// recording and can be *sampled at any moment* without stopping the world.
// This module is that plane:
//
//   * Histogram — log-bucketed value distribution. record() is one relaxed
//     atomic fetch_add on the owning bucket (no locks, no allocation), so
//     any number of threads record concurrently; snapshot() reads the
//     buckets at any time and derives count/sum/min/max and quantiles.
//     Buckets are log-linear (kSubBuckets linear sub-buckets per power of
//     two), bounding the relative quantile error by 1/kSubBuckets.
//   * MetricsRegistry — named metrics with optional Prometheus-style
//     labels. counter()/gauge()/histogram() get-or-create under a mutex
//     and hand back a stable reference; recording on the handle is
//     lock-free thereafter. snapshot() walks the registry without
//     blocking writers.
//   * Exporters — prometheus_text() renders a snapshot in the Prometheus
//     text exposition format (version 0.0.4: HELP/TYPE comments,
//     cumulative le-buckets, _sum/_count); metrics_json() renders a
//     compact JSON object with derived p50/p90/p99 per histogram.
//
// perftrackd instruments its request path into a registry and exposes it
// via the `metrics` protocol method and the `GET /metrics` HTTP endpoint
// (serve/metrics_http.hpp). docs/OBSERVABILITY.md catalogues the metric
// names.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace perftrack::obs {

/// Immutable point-in-time view of one Histogram. Mergeable: merging the
/// snapshots of two histograms equals the snapshot of one histogram that
/// recorded both value streams (bucket-wise addition).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< smallest recorded value (0 when count == 0)
  std::uint64_t max = 0;
  /// Non-empty buckets only: (upper bound inclusive, count in bucket),
  /// sorted by bound. Values above the last finite bound are impossible —
  /// the top bucket's bound is the uint64 range's ceiling.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// Upper bound of the bucket holding quantile `q` in [0, 1], clamped to
  /// max. Exact for values < kSubBuckets; within a factor of
  /// 1 + 1/kSubBuckets above the true order statistic otherwise.
  std::uint64_t quantile(double q) const;

  /// Bucket-wise addition (the cross-thread merge identity).
  void merge(const HistogramSnapshot& other);
};

/// Fixed-size log-linear histogram of non-negative integer values
/// (typically nanoseconds). Thread-safe, lock-free recording.
class Histogram {
public:
  /// Linear sub-buckets per power of two; relative bucket width (and the
  /// quantile error bound) is 1/kSubBuckets.
  static constexpr unsigned kSubBits = 5;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  /// Values 0..kSubBuckets-1 are exact; each further octave adds
  /// kSubBuckets buckets, up to 2^64-1.
  static constexpr std::size_t kBucketCount =
      (64 - kSubBits + 1) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one value. Wait-free: one bucket fetch_add plus the
  /// count/sum/extrema atomics, all relaxed.
  void record(std::uint64_t value);

  /// Sample the histogram without stopping recording. A concurrent
  /// record() lands entirely in this snapshot or entirely in the next —
  /// bucket counts are read after count/sum, so derived stats never claim
  /// more events than the buckets hold.
  HistogramSnapshot snapshot() const;

  /// Index of the bucket holding `value` / inclusive upper bound of
  /// bucket `index` (exposed for tests and the exporters).
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_bound(std::size_t index);

private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Monotonically increasing event count. Lock-free.
class Counter {
public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Lock-free.
class Gauge {
public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// One sampled metric: family name, rendered label set ("" or
/// `key="value",key2="v2"` — no braces), and its value.
struct MetricSample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string labels;
  HistogramSnapshot hist;
};

/// Point-in-time view of a whole registry, ordered by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricSample> counters;
  std::vector<MetricSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Named metrics with get-or-create registration. Handles returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime;
/// recording through them never takes the registry mutex.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `labels` is the rendered label set without braces, e.g.
  /// `method="regions"`; it must be stable wire-format text (the
  /// exporters emit it verbatim). `help` is kept from the first
  /// registration of a family.
  Counter& counter(const std::string& name, const std::string& labels = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "",
               const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       const std::string& labels = "",
                       const std::string& help = "");

  /// Help text of family `name` ("" when never registered with one).
  std::string help(const std::string& name) const;

  /// Every family's help text, for prometheus_text().
  std::map<std::string, std::string> help_texts() const;

  /// Sample every metric. Writers are never blocked: the registry mutex
  /// only guards the name->metric maps, not the metric values.
  MetricsSnapshot snapshot() const;

private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

/// Render `snapshot` in the Prometheus text exposition format (0.0.4).
/// Histograms emit cumulative `le` buckets (non-empty bounds plus +Inf),
/// `_sum` and `_count`; families carry their HELP/TYPE comments. `help`
/// resolves a family name to its help string (may return "").
std::string prometheus_text(
    const MetricsSnapshot& snapshot,
    const std::map<std::string, std::string>& help = {});

/// Render `snapshot` as one compact JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{"name{labels}":
///  {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}}}
std::string metrics_json(const MetricsSnapshot& snapshot);

}  // namespace perftrack::obs
