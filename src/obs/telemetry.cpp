#include "obs/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/memory.hpp"

namespace perftrack::obs {

namespace {

std::atomic<bool> g_enabled{
#ifdef PERFTRACK_PROFILING_DEFAULT_ON
    true
#else
    false
#endif
};

/// Per-thread event buffer. Owned (shared) by the registry so the data
/// outlives the thread; the mutex is effectively uncontended (the owning
/// thread appends, collect() reads).
struct ThreadLog {
  std::uint32_t tid = 0;
  std::mutex mutex;
  std::vector<TimelineEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadLog>> threads;
};

Registry& registry() {
  static Registry r;
  return r;
}

ThreadLog& local_log() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto created = std::make_shared<ThreadLog>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    created->tid = static_cast<std::uint32_t>(r.threads.size() + 1);
    r.threads.push_back(created);
    return created;
  }();
  return *log;
}

void record(TimelineEvent::Kind kind, const char* name, double value) {
  ThreadLog& log = local_log();
  const std::uint64_t ts = now_ns();
  std::lock_guard<std::mutex> lock(log.mutex);
  log.events.push_back(TimelineEvent{kind, name, value, ts});
}

/// Span names currently open on this thread (only tracked while recording
/// is enabled, mirroring the events actually in the stream).
thread_local std::vector<const char*> t_open_spans;

/// Find or create the child of `node` named `name`. min_ns starts at the
/// sentinel "no completed execution yet"; finalize_self_times() normalises
/// untouched nodes back to 0.
SpanNode& child_of(SpanNode& node, const char* name) {
  for (SpanNode& c : node.children)
    if (c.name == name) return c;
  node.children.emplace_back();
  node.children.back().name = name;
  node.children.back().min_ns = ~0ull;
  return node.children.back();
}

void finalize_self_times(SpanNode& node) {
  std::uint64_t children_total = 0;
  for (SpanNode& c : node.children) {
    finalize_self_times(c);
    children_total += c.total_ns;
  }
  node.self_ns = node.total_ns > children_total
                     ? node.total_ns - children_total
                     : 0;
  if (node.min_ns == ~0ull) node.min_ns = 0;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& log : r.threads) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
  }
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           anchor)
          .count());
}

ScopedSpan::ScopedSpan(const char* name) : name_(name), active_(enabled()) {
  if (active_) {
    record(TimelineEvent::Kind::Begin, name_, 0.0);
    t_open_spans.push_back(name_);
  }
}

ScopedSpan::~ScopedSpan() {
  // Recorded even if telemetry was disabled mid-span, so Begin/End stay
  // paired in the stream.
  if (active_) {
    record(TimelineEvent::Kind::End, name_, 0.0);
    t_open_spans.pop_back();
  }
}

std::vector<const char*> current_span_path() { return t_open_spans; }

SpanContext::SpanContext(const std::vector<const char*>& path) {
  if (!enabled()) return;
  // Skip whatever prefix this thread already has open: adopting a path on
  // the thread that captured it (inline execution) re-records nothing.
  std::size_t start = 0;
  while (start < path.size() && start < t_open_spans.size() &&
         t_open_spans[start] == path[start])
    ++start;
  for (std::size_t i = start; i < path.size(); ++i) {
    record(TimelineEvent::Kind::CtxBegin, path[i], 0.0);
    t_open_spans.push_back(path[i]);
    adopted_.push_back(path[i]);
  }
}

SpanContext::~SpanContext() {
  for (std::size_t i = adopted_.size(); i-- > 0;) {
    record(TimelineEvent::Kind::CtxEnd, adopted_[i], 0.0);
    t_open_spans.pop_back();
  }
}

void add_counter(const char* name, double value) {
  if (enabled()) record(TimelineEvent::Kind::Counter, name, value);
}

void set_gauge(const char* name, double value) {
  if (enabled()) record(TimelineEvent::Kind::Gauge, name, value);
}

std::vector<ThreadTimeline> timelines() {
  std::vector<ThreadTimeline> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.threads.size());
  for (auto& log : r.threads) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    out.push_back(ThreadTimeline{log->tid, log->events});
  }
  return out;
}

ThreadTimeline current_thread_timeline() {
  ThreadLog& log = local_log();
  std::lock_guard<std::mutex> lock(log.mutex);
  return ThreadTimeline{log.tid, log.events};
}

RunReport collect() {
  RunReport report;
  report.root.name = "run";
  report.root.count = 1;

  // Gauge resolution: last write wins *by recording timestamp*, not by
  // thread registration order (threads are folded one after another, so a
  // naive overwrite would let an early writer on a late-registered thread
  // shadow a later write). Ties at the same nanosecond resolve to the
  // larger value so the merge stays deterministic either way.
  std::map<std::string, std::pair<std::uint64_t, double>> latest_gauges;

  const std::vector<ThreadTimeline> threads = timelines();
  const std::uint64_t now = now_ns();
  report.wall_ns = now;
  report.root.total_ns = now;

  for (const ThreadTimeline& thread : threads) {
    // Replay the thread's stream against the shared tree; stack entries
    // remember which node each open span landed in and when it began.
    struct Open {
      SpanNode* node;
      std::uint64_t begin_ns;
      bool context;  ///< SpanContext marker: placement only, no time
    };
    std::vector<Open> stack;
    auto top = [&]() -> SpanNode& {
      return stack.empty() ? report.root : *stack.back().node;
    };
    for (const TimelineEvent& event : thread.events) {
      switch (event.kind) {
        case TimelineEvent::Kind::Begin: {
          SpanNode& node = child_of(top(), event.name);
          ++node.count;
          stack.push_back(Open{&node, event.ts_ns, false});
          break;
        }
        case TimelineEvent::Kind::CtxBegin: {
          // An adopted parent frame: navigate into the node without
          // counting an execution — the submitting thread measures it.
          SpanNode& node = child_of(top(), event.name);
          stack.push_back(Open{&node, event.ts_ns, true});
          break;
        }
        case TimelineEvent::Kind::End:
        case TimelineEvent::Kind::CtxEnd: {
          if (stack.empty()) break;  // stray End: ignore
          if (!stack.back().context) {
            SpanNode& node = *stack.back().node;
            const std::uint64_t d = event.ts_ns - stack.back().begin_ns;
            node.total_ns += d;
            // min_ns/max_ns cover completed executions only; a span still
            // open at snapshot time contributes to total_ns but not here.
            if (d < node.min_ns) node.min_ns = d;
            if (d > node.max_ns) node.max_ns = d;
          }
          stack.pop_back();
          break;
        }
        case TimelineEvent::Kind::Counter:
          top().counters[event.name] += event.value;
          report.counters[event.name] += event.value;
          break;
        case TimelineEvent::Kind::Gauge: {
          auto [it, inserted] = latest_gauges.emplace(
              event.name, std::make_pair(event.ts_ns, event.value));
          if (!inserted && (event.ts_ns > it->second.first ||
                            (event.ts_ns == it->second.first &&
                             event.value > it->second.second)))
            it->second = {event.ts_ns, event.value};
          break;
        }
      }
    }
    // Spans still open at snapshot time count up to "now".
    for (const Open& open : stack)
      if (!open.context) open.node->total_ns += now - open.begin_ns;
  }

  for (const auto& [name, stamped] : latest_gauges)
    report.gauges[name] = stamped.second;

  finalize_self_times(report.root);
  report.peak_rss_bytes = peak_rss_bytes();
  return report;
}

}  // namespace perftrack::obs
