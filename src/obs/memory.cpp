#include "obs/memory.hpp"

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif

namespace perftrack::obs {

#if defined(__linux__)

std::uint64_t peak_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (!status) return 0;
  unsigned long long kib = 0;
  char line[256];
  while (std::fgets(line, sizeof line, status)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu", &kib);
      break;
    }
  }
  std::fclose(status);
  return static_cast<std::uint64_t>(kib) * 1024;
}

#else

std::uint64_t peak_rss_bytes() { return 0; }

#endif

}  // namespace perftrack::obs
