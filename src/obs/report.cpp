#include "obs/report.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace perftrack::obs {

namespace {

double to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void add_span_rows(Table& table, const SpanNode& node, std::uint64_t run_ns,
                   int depth) {
  table.begin_row();
  table.cell(std::string(static_cast<std::size_t>(depth) * 2, ' ') +
             node.name);
  table.cell(node.count);
  table.cell(to_ms(node.total_ns), 3);
  table.cell(to_ms(node.self_ns), 3);
  double share = run_ns == 0 ? 0.0
                             : static_cast<double>(node.total_ns) /
                                   static_cast<double>(run_ns) * 100.0;
  table.cell(format_double(share, 1) + "%");
  for (const SpanNode& child : node.children)
    add_span_rows(table, child, run_ns, depth + 1);
}

void write_span_json(JsonWriter& json, const SpanNode& node) {
  json.begin_object();
  json.key("name").value(node.name);
  json.key("count").value(node.count);
  json.key("total_ns").value(node.total_ns);
  json.key("self_ns").value(node.self_ns);
  json.key("min_ns").value(node.min_ns);
  json.key("max_ns").value(node.max_ns);
  json.key("counters").begin_object();
  for (const auto& [name, value] : node.counters)
    json.key(name).value(value);
  json.end_object();
  json.key("children").begin_array();
  for (const SpanNode& child : node.children) write_span_json(json, child);
  json.end_array();
  json.end_object();
}

void save_text(const std::string& path, const std::string& content) {
  errno = 0;
  std::ofstream out(path);
  if (!out) throw io_error("cannot open for writing", path);
  out << content;
  if (!out) throw io_error("write failed", path);
}

}  // namespace

std::string summary_table(const RunReport& report) {
  std::string out;
  if (!report.label.empty()) out += "run: " + report.label + "\n";

  Table spans({"Span", "Count", "Total ms", "Self ms", "% run"});
  add_span_rows(spans, report.root, report.root.total_ns, 0);
  out += spans.to_text();

  if (!report.counters.empty()) {
    Table counters({"Counter", "Total"});
    for (const auto& [name, value] : report.counters) {
      counters.begin_row();
      counters.cell(name);
      counters.cell(value, value == static_cast<double>(
                                        static_cast<long long>(value))
                               ? 0
                               : 3);
    }
    out += "\n" + counters.to_text();
  }

  if (!report.gauges.empty()) {
    Table gauges({"Gauge", "Value"});
    for (const auto& [name, value] : report.gauges) {
      gauges.begin_row();
      gauges.cell(name);
      gauges.cell(value, 6);
    }
    out += "\n" + gauges.to_text();
  }

  out += "\npeak RSS: " + format_si(static_cast<double>(report.peak_rss_bytes)) +
         "B, wall " + format_double(to_ms(report.wall_ns), 1) + " ms\n";
  return out;
}

std::string report_json(const RunReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("perftrack-run-report");
  json.key("version").value(std::uint64_t{1});
  if (!report.label.empty()) json.key("label").value(report.label);
  json.key("wall_time_ns").value(report.wall_ns);
  json.key("peak_rss_bytes").value(report.peak_rss_bytes);
  json.key("counters").begin_object();
  for (const auto& [name, value] : report.counters)
    json.key(name).value(value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : report.gauges) json.key(name).value(value);
  json.end_object();
  json.key("spans");
  write_span_json(json, report.root);
  json.end_object();
  return json.str();
}

std::string trace_events_json() {
  const std::vector<ThreadTimeline> threads = timelines();
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();

  json.begin_object();
  json.key("name").value("process_name");
  json.key("ph").value("M");
  json.key("pid").value(std::uint64_t{1});
  json.key("args").begin_object().key("name").value("perftrack").end_object();
  json.end_object();

  for (const ThreadTimeline& thread : threads) {
    for (const TimelineEvent& event : thread.events) {
      json.begin_object();
      json.key("name").value(event.name);
      json.key("cat").value("perftrack");
      switch (event.kind) {
        // Context markers render as ordinary nesting so a worker's track
        // shows the adopted pipeline stage around its tasks.
        case TimelineEvent::Kind::Begin:
        case TimelineEvent::Kind::CtxBegin: json.key("ph").value("B"); break;
        case TimelineEvent::Kind::End:
        case TimelineEvent::Kind::CtxEnd: json.key("ph").value("E"); break;
        case TimelineEvent::Kind::Counter:
        case TimelineEvent::Kind::Gauge: json.key("ph").value("C"); break;
      }
      json.key("pid").value(std::uint64_t{1});
      json.key("tid").value(std::uint64_t{thread.tid});
      json.key("ts").value(static_cast<double>(event.ts_ns) / 1e3);
      if (event.kind == TimelineEvent::Kind::Counter ||
          event.kind == TimelineEvent::Kind::Gauge) {
        json.key("args")
            .begin_object()
            .key("value")
            .value(event.value)
            .end_object();
      }
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void save_report_json(const std::string& path, const RunReport& report) {
  save_text(path, report_json(report) + "\n");
}

void save_trace_events(const std::string& path) {
  save_text(path, trace_events_json() + "\n");
}

}  // namespace perftrack::obs
