#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace perftrack::obs {

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Octave of the highest set bit; the kSubBits bits below it pick the
  // linear sub-bucket, so every bucket spans value/kSubBuckets at most.
  const unsigned exponent = std::bit_width(value) - 1;  // >= kSubBits
  const std::uint64_t sub =
      (value >> (exponent - kSubBits)) - kSubBuckets;  // [0, kSubBuckets)
  return static_cast<std::size_t>(
      (exponent - kSubBits + 1) * kSubBuckets + sub);
}

std::uint64_t Histogram::bucket_bound(std::size_t index) {
  if (index < kSubBuckets) return index;
  const unsigned octave = static_cast<unsigned>(index / kSubBuckets);
  const std::uint64_t sub = index % kSubBuckets;
  const unsigned shift = octave - 1;  // exponent - kSubBits
  // Inclusive upper bound: one below the next bucket's lower bound. The
  // top bucket's (kSubBuckets + sub + 1) << shift wraps to 0 modulo 2^64,
  // making its bound 2^64-1 — the histogram covers all of uint64.
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed))
    ;
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed))
    ;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  // Read count/sum before the buckets: a record() racing the snapshot may
  // then be visible in the buckets but not the header, never the other
  // way round, so quantile() — which trusts the bucket totals — stays
  // consistent. Recompute count from buckets for the same reason.
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.buckets.emplace_back(bucket_bound(i), n);
    total += n;
  }
  snap.count = total;
  snap.min = (total == 0 || min == ~0ull) ? 0 : min;
  return snap;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic, 1-based: q=0 -> first, q=1 -> last.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (const auto& [bound, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) return std::min(bound, max);
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  // Merge the two sorted sparse bucket lists.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!help.empty()) help_.emplace(name, help);
  auto& slot = counters_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!help.empty()) help_.emplace(name, help);
  auto& slot = gauges_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!help.empty()) help_.emplace(name, help);
  auto& slot = histograms_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::help(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

std::map<std::string, std::string> MetricsRegistry::help_texts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return help_;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, counter] : counters_)
    snap.counters.push_back(MetricSample{
        key.first, key.second, static_cast<double>(counter->value())});
  for (const auto& [key, gauge] : gauges_)
    snap.gauges.push_back(MetricSample{key.first, key.second, gauge->value()});
  for (const auto& [key, histogram] : histograms_)
    snap.histograms.push_back(
        HistogramSample{key.first, key.second, histogram->snapshot()});
  return snap;
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

/// Render a double the way Prometheus expects: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string prom_number(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 9.2e18)
    return std::to_string(static_cast<std::int64_t>(value));
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string with_labels(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  std::string out = name;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void family_header(std::string& out, const std::string& name,
                   const char* type,
                   const std::map<std::string, std::string>& help,
                   std::string& last_family) {
  if (name == last_family) return;
  last_family = name;
  auto it = help.find(name);
  if (it != help.end() && !it->second.empty())
    out += "# HELP " + name + " " + it->second + "\n";
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            const std::map<std::string, std::string>& help) {
  std::string out;
  std::string last_family;
  for (const MetricSample& sample : snapshot.counters) {
    family_header(out, sample.name, "counter", help, last_family);
    out += with_labels(sample.name, sample.labels) + " " +
           prom_number(sample.value) + "\n";
  }
  last_family.clear();
  for (const MetricSample& sample : snapshot.gauges) {
    family_header(out, sample.name, "gauge", help, last_family);
    out += with_labels(sample.name, sample.labels) + " " +
           prom_number(sample.value) + "\n";
  }
  last_family.clear();
  for (const HistogramSample& sample : snapshot.histograms) {
    family_header(out, sample.name, "histogram", help, last_family);
    std::uint64_t cumulative = 0;
    for (const auto& [bound, n] : sample.hist.buckets) {
      cumulative += n;
      out += with_labels(sample.name + "_bucket", sample.labels,
                         "le=\"" + std::to_string(bound) + "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += with_labels(sample.name + "_bucket", sample.labels,
                       "le=\"+Inf\"") +
           " " + std::to_string(sample.hist.count) + "\n";
    out += with_labels(sample.name + "_sum", sample.labels) + " " +
           std::to_string(sample.hist.sum) + "\n";
    out += with_labels(sample.name + "_count", sample.labels) + " " +
           std::to_string(sample.hist.count) + "\n";
  }
  return out;
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const MetricSample& sample : snapshot.counters)
    json.key(with_labels(sample.name, sample.labels)).value(sample.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const MetricSample& sample : snapshot.gauges)
    json.key(with_labels(sample.name, sample.labels)).value(sample.value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const HistogramSample& sample : snapshot.histograms) {
    json.key(with_labels(sample.name, sample.labels)).begin_object();
    json.key("count").value(sample.hist.count);
    json.key("sum").value(sample.hist.sum);
    json.key("min").value(sample.hist.min);
    json.key("max").value(sample.hist.max);
    json.key("p50").value(sample.hist.quantile(0.50));
    json.key("p90").value(sample.hist.quantile(0.90));
    json.key("p99").value(sample.hist.quantile(0.99));
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace perftrack::obs
