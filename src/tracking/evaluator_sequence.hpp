#pragma once
// Execution-sequence evaluator (paper §3.4, Fig. 5).
//
// Unless the execution flow changed, two experiments run the same phases
// in the same chronological order. Their consensus sequences cannot be
// compared symbol-by-symbol (identifiers differ between experiments), so
// the alignment is anchored on *pivots* — the correspondences the earlier
// evaluators already established: aligning a pivot pair scores high,
// aligning a symbol against a contradicting pivot scores negative, and two
// unknown symbols are neutral (alignable). Cell (i, j) of the result is
// the fraction of i's aligned occurrences that face j — the evidence used
// to split wide relations and attach unmatched objects.

#include "align/nw.hpp"
#include "cluster/frame.hpp"
#include "tracking/correlation.hpp"
#include "tracking/frame_alignment.hpp"
#include "tracking/relation.hpp"

namespace perftrack::tracking {

CorrelationMatrix evaluate_sequence(
    const cluster::Frame& frame_a, const FrameAlignment& alignment_a,
    const cluster::Frame& frame_b, const FrameAlignment& alignment_b,
    const RelationSet& pivots, double outlier_threshold = 0.05,
    align::AlignmentEngine engine = align::AlignmentEngine::kAuto);

}  // namespace perftrack::tracking
