#pragma once
// Per-region performance trends across the frame sequence (paper §3.5,
// Figs. 7, 10, 11, 12).
//
// Once regions are tracked, their evolution is summarised per frame:
// burst-weighted means for rate metrics (IPC, misses per kilo-instruction),
// totals for counters and durations. relative_series() rebases a series to
// its first (or maximum) value, which is how the paper draws its trend
// charts.

#include <vector>

#include "tracking/tracker.hpp"
#include "trace/metrics.hpp"

namespace perftrack::tracking {

/// Mean of `metric` over the region's bursts, one value per frame
/// (0 where the region is absent).
std::vector<double> region_metric_mean(const TrackingResult& result,
                                       int region_id, trace::Metric metric);

/// Sum of a raw counter over the region's bursts, one value per frame.
std::vector<double> region_counter_total(const TrackingResult& result,
                                         int region_id,
                                         trace::Counter counter);

/// Sum of burst durations of the region, one value per frame.
std::vector<double> region_duration_total(const TrackingResult& result,
                                          int region_id);

/// Number of bursts of the region, one value per frame.
std::vector<std::size_t> region_burst_count(const TrackingResult& result,
                                            int region_id);

/// series / series[0] (1.0-based index chart); zeros stay zero.
std::vector<double> relative_to_first(const std::vector<double>& series);

/// series / max(series) (the paper's Fig. 11b normalisation).
std::vector<double> relative_to_max(const std::vector<double>& series);

/// Largest |relative change| of the series vs its first value, e.g. to
/// select "regions with IPC variations above 3%" (Fig. 7a).
double max_relative_variation(const std::vector<double>& series);

}  // namespace perftrack::tracking
