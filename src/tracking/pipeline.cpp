#include "tracking/pipeline.hpp"

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

void TrackingPipeline::add_experiment(
    std::shared_ptr<const trace::Trace> trace) {
  PT_REQUIRE(trace != nullptr, "experiment trace must not be null");
  Entry entry;
  entry.label = trace->label();
  entry.trace = std::move(trace);
  entries_.push_back(std::move(entry));
}

void TrackingPipeline::add_gap(std::string label, std::string reason) {
  Entry entry;
  entry.label = std::move(label);
  entry.reason = std::move(reason);
  entries_.push_back(std::move(entry));
}

std::size_t TrackingPipeline::gap_count() const {
  std::size_t n = 0;
  for (const Entry& entry : entries_)
    if (entry.trace == nullptr) ++n;
  return n;
}

TrackingResult TrackingPipeline::run() const {
  PT_SPAN("pipeline_run");
  PT_REQUIRE(entries_.size() >= 2,
             "tracking needs at least two experiments");

  // A batch run is one incremental session replayed in one go: all slots
  // are fresh, so the session does exactly the work the old inline
  // implementation did (same spans, same failpoint order, same errors).
  TrackingSession session(config_);
  for (const Entry& entry : entries_) {
    if (entry.trace != nullptr)
      session.append_experiment(entry.trace);
    else
      session.append_gap(entry.label, entry.reason);
  }
  return session.retrack();
}

}  // namespace perftrack::tracking
