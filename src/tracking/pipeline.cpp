#include "tracking/pipeline.hpp"

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

TrackingPipeline::TrackingPipeline() {
  // The paper's default metric space: Instructions x IPC, instruction axis
  // log-scaled (Fig. 1).
  clustering_.projection.metrics = {trace::Metric::Instructions,
                                    trace::Metric::Ipc};
  clustering_.log_scale = {true, false};
}

void TrackingPipeline::add_experiment(
    std::shared_ptr<const trace::Trace> trace) {
  PT_REQUIRE(trace != nullptr, "experiment trace must not be null");
  Entry entry;
  entry.label = trace->label();
  entry.trace = std::move(trace);
  entries_.push_back(std::move(entry));
}

void TrackingPipeline::add_gap(std::string label, std::string reason) {
  Entry entry;
  entry.label = std::move(label);
  entry.reason = std::move(reason);
  entries_.push_back(std::move(entry));
}

void TrackingPipeline::set_clustering(cluster::ClusteringParams params) {
  clustering_ = std::move(params);
}

void TrackingPipeline::set_tracking(TrackingParams params) {
  tracking_ = std::move(params);
}

void TrackingPipeline::set_resilience(ResilienceParams params) {
  resilience_ = params;
}

std::size_t TrackingPipeline::gap_count() const {
  std::size_t n = 0;
  for (const Entry& entry : entries_)
    if (entry.trace == nullptr) ++n;
  return n;
}

TrackingResult TrackingPipeline::run() const {
  PT_SPAN("pipeline_run");
  PT_REQUIRE(entries_.size() >= 2,
             "tracking needs at least two experiments");
  PT_COUNTER("experiments", static_cast<double>(entries_.size()));

  std::vector<cluster::Frame> frames;
  std::vector<ExperimentGap> gaps;
  frames.reserve(entries_.size());
  {
    PT_SPAN("cluster_experiments");
    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      const Entry& entry = entries_[slot];
      if (entry.trace == nullptr) {
        if (!resilience_.lenient)
          throw Error("experiment '" + entry.label +
                      "' is a gap (" + entry.reason +
                      "); enable lenient resilience to track across it");
        gaps.push_back({slot, entry.label, entry.reason});
        continue;
      }
      try {
        PT_FAILPOINT("cluster_experiment");
        frames.push_back(cluster::build_frame(entry.trace, clustering_));
      } catch (const Error& error) {
        if (!resilience_.lenient) throw;
        PT_LOG(Warn) << "experiment '" << entry.label
                     << "' failed to cluster, tracking across the gap: "
                     << error.what();
        gaps.push_back({slot, entry.label, error.what()});
      }
    }
  }

  if (!gaps.empty()) {
    double gap_fraction = static_cast<double>(gaps.size()) /
                          static_cast<double>(entries_.size());
    if (gap_fraction > resilience_.max_gap_fraction)
      throw Error("gap budget exhausted: " + std::to_string(gaps.size()) +
                  " of " + std::to_string(entries_.size()) +
                  " experiments failed (limit " +
                  std::to_string(static_cast<int>(
                      resilience_.max_gap_fraction * 100.0)) +
                  "%)");
    if (frames.size() < 2)
      throw Error("tracking needs at least two surviving experiments (" +
                  std::to_string(gaps.size()) + " of " +
                  std::to_string(entries_.size()) + " are gaps)");
    PT_COUNTER("experiment_gaps", static_cast<double>(gaps.size()));
  }

  TrackingResult result = track_frames(std::move(frames), tracking_);
  result.gaps = std::move(gaps);
  return result;
}

}  // namespace perftrack::tracking
