#include "tracking/pipeline.hpp"

#include <future>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

TrackingPipeline::TrackingPipeline() {
  // The paper's default metric space: Instructions x IPC, instruction axis
  // log-scaled (Fig. 1).
  clustering_.projection.metrics = {trace::Metric::Instructions,
                                    trace::Metric::Ipc};
  clustering_.log_scale = {true, false};
}

void TrackingPipeline::add_experiment(
    std::shared_ptr<const trace::Trace> trace) {
  PT_REQUIRE(trace != nullptr, "experiment trace must not be null");
  Entry entry;
  entry.label = trace->label();
  entry.trace = std::move(trace);
  entries_.push_back(std::move(entry));
}

void TrackingPipeline::add_gap(std::string label, std::string reason) {
  Entry entry;
  entry.label = std::move(label);
  entry.reason = std::move(reason);
  entries_.push_back(std::move(entry));
}

void TrackingPipeline::set_clustering(cluster::ClusteringParams params) {
  clustering_ = std::move(params);
}

void TrackingPipeline::set_tracking(TrackingParams params) {
  tracking_ = std::move(params);
}

void TrackingPipeline::set_resilience(ResilienceParams params) {
  resilience_ = params;
}

std::size_t TrackingPipeline::gap_count() const {
  std::size_t n = 0;
  for (const Entry& entry : entries_)
    if (entry.trace == nullptr) ++n;
  return n;
}

TrackingResult TrackingPipeline::run() const {
  PT_SPAN("pipeline_run");
  PT_REQUIRE(entries_.size() >= 2,
             "tracking needs at least two experiments");
  PT_COUNTER("experiments", static_cast<double>(entries_.size()));

  std::vector<cluster::Frame> frames;
  std::vector<ExperimentGap> gaps;
  frames.reserve(entries_.size());
  {
    PT_SPAN("cluster_experiments");

    // One clustering task per experiment; outcomes land in their slot so
    // the frame sequence (and hence every downstream artefact) is
    // identical for any thread count. Everything a task captures —
    // outcomes, the span path, the futures — is declared before the pool:
    // the pool's destructor drains every submitted task, so no task can
    // outlive what it references even when an error unwinds this scope
    // mid-submission (strict-mode gaps and failpoints throw from the
    // submission loop below with tasks still queued).
    struct Outcome {
      cluster::Frame frame;
      std::string error;            ///< non-empty = clustering failed
      std::exception_ptr rethrow;   ///< original exception, for strict mode
    };
    std::vector<Outcome> outcomes(entries_.size());
    const std::vector<const char*> here = obs::current_span_path();
    std::vector<std::future<void>> tasks;
    tasks.reserve(entries_.size());
    ThreadPool pool(ThreadPool::resolve(tracking_.threads));

    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      const Entry& entry = entries_[slot];
      if (entry.trace == nullptr) {
        if (!resilience_.lenient)
          throw Error("experiment '" + entry.label +
                      "' is a gap (" + entry.reason +
                      "); enable lenient resilience to track across it");
        continue;  // recorded as a gap in the slot-order pass below
      }
      // Evaluated here, serially in slot order, so an "@i" hit list keeps
      // poisoning the i-th clustered experiment under any thread count.
      try {
        PT_FAILPOINT("cluster_experiment");
      } catch (const Error& error) {
        if (!resilience_.lenient) throw;
        outcomes[slot].error = error.what();
        continue;
      }
      Outcome& outcome = outcomes[slot];
      tasks.push_back(pool.submit([this, &outcome, &here, &entry] {
        obs::SpanContext ctx(here);
        try {
          outcome.frame = cluster::build_frame(entry.trace, clustering_);
        } catch (const Error& error) {
          outcome.error = error.what();
          outcome.rethrow = std::current_exception();
        }
      }));
    }
    // Non-Error exceptions (if any) propagate from the earliest slot, as
    // they would have in a serial loop.
    for (std::future<void>& task : tasks) task.wait();
    for (std::future<void>& task : tasks) task.get();

    // Fold the outcomes back in slot order: frames, gaps and error
    // precedence all match the original serial loop.
    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      const Entry& entry = entries_[slot];
      if (entry.trace == nullptr) {
        gaps.push_back({slot, entry.label, entry.reason});
        continue;
      }
      Outcome& outcome = outcomes[slot];
      if (outcome.error.empty()) {
        frames.push_back(std::move(outcome.frame));
        continue;
      }
      if (!resilience_.lenient) {
        if (outcome.rethrow) std::rethrow_exception(outcome.rethrow);
        throw Error(outcome.error);
      }
      PT_LOG(Warn) << "experiment '" << entry.label
                   << "' failed to cluster, tracking across the gap: "
                   << outcome.error;
      gaps.push_back({slot, entry.label, outcome.error});
    }
  }

  if (!gaps.empty()) {
    double gap_fraction = static_cast<double>(gaps.size()) /
                          static_cast<double>(entries_.size());
    if (gap_fraction > resilience_.max_gap_fraction)
      throw Error("gap budget exhausted: " + std::to_string(gaps.size()) +
                  " of " + std::to_string(entries_.size()) +
                  " experiments failed (limit " +
                  std::to_string(static_cast<int>(
                      resilience_.max_gap_fraction * 100.0)) +
                  "%)");
    if (frames.size() < 2)
      throw Error("tracking needs at least two surviving experiments (" +
                  std::to_string(gaps.size()) + " of " +
                  std::to_string(entries_.size()) + " are gaps)");
    PT_COUNTER("experiment_gaps", static_cast<double>(gaps.size()));
  }

  TrackingResult result = track_frames(std::move(frames), tracking_);
  result.gaps = std::move(gaps);
  return result;
}

}  // namespace perftrack::tracking
