#include "tracking/pipeline.hpp"

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

TrackingPipeline::TrackingPipeline() {
  // The paper's default metric space: Instructions x IPC, instruction axis
  // log-scaled (Fig. 1).
  clustering_.projection.metrics = {trace::Metric::Instructions,
                                    trace::Metric::Ipc};
  clustering_.log_scale = {true, false};
}

void TrackingPipeline::add_experiment(
    std::shared_ptr<const trace::Trace> trace) {
  PT_REQUIRE(trace != nullptr, "experiment trace must not be null");
  traces_.push_back(std::move(trace));
}

void TrackingPipeline::set_clustering(cluster::ClusteringParams params) {
  clustering_ = std::move(params);
}

void TrackingPipeline::set_tracking(TrackingParams params) {
  tracking_ = std::move(params);
}

TrackingResult TrackingPipeline::run() const {
  PT_SPAN("pipeline_run");
  PT_REQUIRE(traces_.size() >= 2,
             "tracking needs at least two experiments");
  PT_COUNTER("experiments", static_cast<double>(traces_.size()));
  std::vector<cluster::Frame> frames;
  frames.reserve(traces_.size());
  {
    PT_SPAN("cluster_experiments");
    for (const auto& trace : traces_)
      frames.push_back(cluster::build_frame(trace, clustering_));
  }
  return track_frames(std::move(frames), tracking_);
}

}  // namespace perftrack::tracking
