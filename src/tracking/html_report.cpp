#include "tracking/html_report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "tracking/trends.hpp"

namespace perftrack::tracking {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// The data payload: frames with per-point (x=IPC, y=log10 instructions,
/// region) triples, plus per-region trend series.
std::string build_payload(const TrackingResult& result,
                          const HtmlReportOptions& options) {
  std::ostringstream json;
  json << "{\"frames\":[";
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    const cluster::Frame& frame = result.frames[f];
    if (f) json << ",";
    json << "{\"label\":\"" << json_escape(frame.label())
         << "\",\"points\":[";
    bool first = true;
    std::vector<std::size_t> emitted(frame.object_count(), 0);
    for (std::size_t row = 0; row < frame.projection().size(); ++row) {
      std::int32_t object = frame.labels()[row];
      if (object == cluster::kNoise) continue;
      auto& count = emitted[static_cast<std::size_t>(object)];
      if (options.max_points_per_object > 0 &&
          count >= options.max_points_per_object)
        continue;
      ++count;
      std::int32_t region =
          result.renaming[f][static_cast<std::size_t>(object)];
      auto p = frame.projection().points[row];
      double y = std::log10(std::max(p[0], 1e-12)) +
                 std::log10(static_cast<double>(frame.num_tasks()));
      if (!first) json << ",";
      first = false;
      json << "[" << format_double(p[1], 4) << ","
           << format_double(y, 4) << "," << region << "]";
    }
    json << "]}";
  }
  json << "],\"regions\":[";
  bool first_region = true;
  for (const TrackedRegion& region : result.regions) {
    if (!region.complete) continue;
    if (!first_region) json << ",";
    first_region = false;
    auto ipc = region_metric_mean(result, region.id, trace::Metric::Ipc);
    auto instr = region_counter_total(result, region.id,
                                      trace::Counter::Instructions);
    json << "{\"id\":" << region.id + 1 << ",\"ipc\":[";
    for (std::size_t f = 0; f < ipc.size(); ++f) {
      if (f) json << ",";
      json << format_double(ipc[f], 5);
    }
    json << "],\"instr\":[";
    for (std::size_t f = 0; f < instr.size(); ++f) {
      if (f) json << ",";
      json << format_double(instr[f], 1);
    }
    json << "]}";
  }
  json << "],\"gaps\":[";
  for (std::size_t g = 0; g < result.gaps.size(); ++g) {
    const ExperimentGap& gap = result.gaps[g];
    if (g) json << ",";
    json << "{\"slot\":" << gap.slot + 1 << ",\"label\":\""
         << json_escape(gap.label) << "\",\"reason\":\""
         << json_escape(gap.reason) << "\"}";
  }
  json << "],\"coverage\":" << format_double(result.coverage, 4)
       << ",\"effectiveCoverage\":"
       << format_double(result.effective_coverage(), 4)
       << ",\"complete\":" << result.complete_count << "}";
  return json.str();
}

std::string html_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

/// "3 gaps (a, b, c)" banner content for a degraded run, "" otherwise.
std::string gap_banner(const TrackingResult& result) {
  if (!result.degraded()) return "";
  std::string out = "<p class=\"gaps\"><b>degraded run:</b> " +
                    std::to_string(result.gaps.size()) +
                    (result.gaps.size() == 1 ? " gap" : " gaps") + " in " +
                    std::to_string(result.sequence_length()) +
                    " experiments, effective coverage <b>" +
                    format_double(result.effective_coverage() * 100.0, 0) +
                    "%</b>.</p><ul class=\"gaps\">";
  for (const ExperimentGap& gap : result.gaps) {
    out += "<li>slot " + std::to_string(gap.slot + 1) + ": " +
           html_escape(gap.label);
    if (!gap.reason.empty()) out += " &mdash; " + html_escape(gap.reason);
    out += "</li>";
  }
  out += "</ul>";
  return out;
}

constexpr const char* kPage = R"HTML(<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%TITLE%</title>
<style>
 body{font-family:system-ui,sans-serif;margin:1.5rem;background:#fafafa;color:#222}
 h1{font-size:1.3rem} h2{font-size:1.05rem;margin-top:1.6rem}
 canvas{background:#fff;border:1px solid #ccc;border-radius:4px}
 .row{display:flex;gap:1.5rem;flex-wrap:wrap}
 button{margin-right:.5rem} #framelabel{font-weight:600;margin-left:.8rem}
 p.gaps,ul.gaps{color:#a33}
 table{border-collapse:collapse;font-size:.85rem}
 td,th{border:1px solid #ddd;padding:.25rem .6rem;text-align:right}
 th:first-child,td:first-child{text-align:left}
</style></head><body>
<h1>%TITLE%</h1>
<p><b>%COMPLETE%</b> tracked regions, coverage <b>%COVERAGE%</b>.
Every region keeps its colour along the whole sequence; press play to
animate the experiments (paper Fig. 6).</p>
%GAPS%
<div>
 <button id="play">&#9654; play</button>
 <input type="range" id="slider" min="0" value="0" style="width:340px">
 <span id="framelabel"></span>
</div>
<div class="row">
 <div><h2>Performance space (IPC &times; total instructions, log)</h2>
      <canvas id="scatter" width="560" height="420"></canvas></div>
 <div><h2>Region IPC across the sequence (paper Fig. 7a)</h2>
      <canvas id="trend" width="560" height="420"></canvas></div>
</div>
<h2>Region IPC table</h2>
<div id="tablebox"></div>
<script>
const DATA = %DATA%;
const palette = ["#4363d8","#e6194B","#3cb44b","#ffe119","#911eb4",
 "#f58231","#42d4f4","#f032e6","#bfef45","#fabed4","#469990","#dcbeff",
 "#9A6324","#800000","#aaffc3","#808000"];
function colour(r){return r<0?"#bbb":palette[r%palette.length];}

// Global bounds across all frames so the animation axes are fixed.
let xmin=1e300,xmax=-1e300,ymin=1e300,ymax=-1e300;
for(const fr of DATA.frames)for(const p of fr.points){
 xmin=Math.min(xmin,p[0]);xmax=Math.max(xmax,p[0]);
 ymin=Math.min(ymin,p[1]);ymax=Math.max(ymax,p[1]);}
const padx=(xmax-xmin)*0.06||1,pady=(ymax-ymin)*0.06||1;
xmin-=padx;xmax+=padx;ymin-=pady;ymax+=pady;

const scatter=document.getElementById("scatter").getContext("2d");
function drawFrame(i){
 const c=scatter,W=560,H=420;c.clearRect(0,0,W,H);
 c.strokeStyle="#999";c.strokeRect(40,10,W-50,H-40);
 c.fillStyle="#444";c.font="11px sans-serif";
 c.fillText("IPC",W/2,H-6);
 c.save();c.translate(12,H/2);c.rotate(-Math.PI/2);
 c.fillText("log10 total instructions",0,0);c.restore();
 for(const p of DATA.frames[i].points){
  const x=40+(p[0]-xmin)/(xmax-xmin)*(W-50);
  const y=10+(1-(p[1]-ymin)/(ymax-ymin))*(H-40);
  c.fillStyle=colour(p[2]);c.fillRect(x-1.5,y-1.5,3,3);}
 document.getElementById("framelabel").textContent=
   DATA.frames[i].label+"  ("+(i+1)+"/"+DATA.frames.length+")";
}
function drawTrend(){
 const c=document.getElementById("trend").getContext("2d"),W=560,H=420;
 c.clearRect(0,0,W,H);c.strokeStyle="#999";c.strokeRect(40,10,W-50,H-40);
 let lo=1e300,hi=-1e300;
 for(const r of DATA.regions)for(const v of r.ipc){lo=Math.min(lo,v);hi=Math.max(hi,v);}
 const pad=(hi-lo)*0.08||1;lo-=pad;hi+=pad;
 const n=DATA.frames.length;
 for(const r of DATA.regions){
  c.strokeStyle=colour(r.id-1);c.lineWidth=2;c.beginPath();
  r.ipc.forEach((v,f)=>{
   const x=40+(n>1?f/(n-1):0)*(W-50);
   const y=10+(1-(v-lo)/(hi-lo))*(H-40);
   f?c.lineTo(x,y):c.moveTo(x,y);});
  c.stroke();
  c.fillStyle=colour(r.id-1);c.font="11px sans-serif";
  c.fillText("R"+r.id,W-30,10+(1-(r.ipc[n-1]-lo)/(hi-lo))*(H-40));}
 c.fillStyle="#444";c.fillText("IPC",8,20);
}
function buildTable(){
 let html="<table><tr><th>Region</th>";
 for(const fr of DATA.frames)html+="<th>"+fr.label+"</th>";
 html+="<th>&Delta;IPC</th></tr>";
 for(const r of DATA.regions){
  html+="<tr><td style='color:"+colour(r.id-1)+"'>&#9632; Region "+r.id+"</td>";
  for(const v of r.ipc)html+="<td>"+v.toFixed(3)+"</td>";
  const d=(r.ipc[r.ipc.length-1]/r.ipc[0]-1)*100;
  html+="<td>"+(d>=0?"+":"")+d.toFixed(1)+"%</td></tr>";}
 document.getElementById("tablebox").innerHTML=html+"</table>";
}
const slider=document.getElementById("slider");
slider.max=DATA.frames.length-1;
slider.oninput=()=>drawFrame(+slider.value);
let timer=null;
document.getElementById("play").onclick=function(){
 if(timer){clearInterval(timer);timer=null;this.innerHTML="&#9654; play";return;}
 this.innerHTML="&#9208; pause";
 timer=setInterval(()=>{slider.value=(+slider.value+1)%DATA.frames.length;
  drawFrame(+slider.value);},700);
};
drawFrame(0);drawTrend();buildTable();
</script></body></html>
)HTML";

}  // namespace

std::string html_report(const TrackingResult& result,
                        const HtmlReportOptions& options) {
  std::string page = kPage;
  auto replace_all = [&page](const std::string& key,
                             const std::string& value) {
    std::size_t pos = 0;
    while ((pos = page.find(key, pos)) != std::string::npos) {
      page.replace(pos, key.size(), value);
      pos += value.size();
    }
  };
  replace_all("%TITLE%", options.title);
  replace_all("%COMPLETE%", std::to_string(result.complete_count));
  replace_all("%COVERAGE%",
              format_double(result.coverage * 100.0, 0) + "%");
  replace_all("%GAPS%", gap_banner(result));
  replace_all("%DATA%", build_payload(result, options));
  return page;
}

void save_html_report(const std::string& path,
                      const TrackingResult& result,
                      const HtmlReportOptions& options) {
  errno = 0;
  std::ofstream out(path);
  if (!out) throw io_error("cannot open for writing", path);
  out << html_report(result, options);
  if (!out) throw io_error("write failed", path);
}

}  // namespace perftrack::tracking
