#include "tracking/combiner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "tracking/evaluator_callstack.hpp"
#include "tracking/evaluator_sequence.hpp"
#include "tracking/evaluator_spmd.hpp"

namespace perftrack::tracking {

namespace {

/// Union-find restricted to the members of one wide relation, used to test
/// whether the sequence evidence splits it into smaller complete relations.
struct SubGraph {
  // Node encoding: left objects then right objects, positions within the
  // member vectors.
  std::vector<ObjectId> left, right;
  std::vector<std::size_t> parent;

  explicit SubGraph(const Relation& rel)
      : left(rel.left.begin(), rel.left.end()),
        right(rel.right.begin(), rel.right.end()),
        parent(left.size() + right.size()) {
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t x, std::size_t y) { parent[find(x)] = find(y); }

  std::size_t left_node(ObjectId a) const {
    auto it = std::find(left.begin(), left.end(), a);
    return static_cast<std::size_t>(it - left.begin());
  }
  std::size_t right_node(ObjectId b) const {
    auto it = std::find(right.begin(), right.end(), b);
    return left.size() + static_cast<std::size_t>(it - right.begin());
  }
};

}  // namespace

PairTracking track_pair(const cluster::Frame& frame_a,
                        const FrameAlignment& alignment_a,
                        const cluster::Frame& frame_b,
                        const FrameAlignment& alignment_b,
                        const ScaleNormalization& scale,
                        const TrackingParams& params,
                        const FrameCloud* cloud_a,
                        const FrameCloud* cloud_b,
                        ThreadPool* pool) {
  PT_SPAN("track_pair");
  const std::size_t n = frame_a.object_count();
  const std::size_t m = frame_b.object_count();
  PairTracking out;

  // Zero-seed the decision counters so every run report carries the keys,
  // even when an evaluator never fires.
  if (obs::enabled()) {
    PT_COUNTER("links_proposed", 0.0);
    PT_COUNTER("links_pruned_callstack", 0.0);
    PT_COUNTER("spmd_merges", 0.0);
    PT_COUNTER("spmd_merges_pruned_callstack", 0.0);
    PT_COUNTER("relations_split_by_sequence", 0.0);
    PT_COUNTER("sequence_attached", 0.0);
  }

  // --- Run the independent evaluators. ---
  if (params.use_displacement && cloud_a && cloud_b)
    out.displacement = evaluate_displacement(frame_a, *cloud_a, frame_b,
                                             *cloud_b,
                                             params.outlier_threshold, pool);
  else if (params.use_displacement)
    out.displacement = evaluate_displacement(frame_a, frame_b, scale,
                                             params.outlier_threshold, pool,
                                             params.displacement_index);
  else
    out.displacement = {CorrelationMatrix(n, m), CorrelationMatrix(m, n)};

  if (params.use_spmd) {
    out.spmd_a = evaluate_spmd(frame_a, alignment_a,
                               params.outlier_threshold);
    out.spmd_b = evaluate_spmd(frame_b, alignment_b,
                               params.outlier_threshold);
  } else {
    out.spmd_a = CorrelationMatrix(n, n);
    out.spmd_b = CorrelationMatrix(m, m);
  }

  out.callstack = evaluate_callstack(frame_a, frame_b,
                                     params.outlier_threshold);
  CorrelationMatrix callstack_aa =
      evaluate_callstack(frame_a, frame_a, params.outlier_threshold);
  CorrelationMatrix callstack_bb =
      evaluate_callstack(frame_b, frame_b, params.outlier_threshold);

  auto cross_ok = [&](std::size_t i, std::size_t j) {
    return !params.use_callstack || out.callstack.at(i, j) > 0.0;
  };

  // --- 1+3. Displacement links, call-stack pruned, reciprocally. ---
  RelationGraph graph(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      bool found_ab = out.displacement.a_to_b.at(i, j) > 0.0;
      bool found_ba = out.displacement.b_to_a.at(j, i) > 0.0;
      if (!found_ab && !found_ba) continue;
      PT_COUNTER("links_proposed", 1.0);
      if (cross_ok(i, j))
        graph.link(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
      else
        PT_COUNTER("links_pruned_callstack", 1.0);
    }

  // --- 2+3. SPMD simultaneity merges within each frame. ---
  // Track the merged pairs: genuine simultaneous halves of one region must
  // never be separated by the later refinement step.
  std::vector<std::pair<ObjectId, ObjectId>> spmd_pairs_a, spmd_pairs_b;
  if (params.use_spmd) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) {
        if (out.spmd_a.at(i, j) < params.spmd_threshold) continue;
        if (params.use_callstack && callstack_aa.at(i, j) <= 0.0) {
          PT_COUNTER("spmd_merges_pruned_callstack", 1.0);
          continue;
        }
        PT_COUNTER("spmd_merges", 1.0);
        graph.merge_left(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
        spmd_pairs_a.emplace_back(static_cast<ObjectId>(i),
                                  static_cast<ObjectId>(j));
      }
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = i + 1; j < m; ++j) {
        if (out.spmd_b.at(i, j) < params.spmd_threshold) continue;
        if (params.use_callstack && callstack_bb.at(i, j) <= 0.0) {
          PT_COUNTER("spmd_merges_pruned_callstack", 1.0);
          continue;
        }
        PT_COUNTER("spmd_merges", 1.0);
        graph.merge_right(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
        spmd_pairs_b.emplace_back(static_cast<ObjectId>(i),
                                  static_cast<ObjectId>(j));
      }
  }

  // --- 4. Extract the preliminary relations. ---
  RelationSet prelim = graph.components();

  if (!params.use_sequence) {
    out.relations = std::move(prelim);
    out.sequence = CorrelationMatrix(n, m);
    PT_COUNTER("relations", static_cast<double>(out.relations.size()));
    return out;
  }

  // --- 5. Sequence refinement, anchored at the univocal relations. ---
  RelationSet pivots;
  for (const Relation& rel : prelim.relations)
    if (rel.univocal()) pivots.relations.push_back(rel);
  out.sequence = evaluate_sequence(frame_a, alignment_a, frame_b,
                                   alignment_b, pivots,
                                   params.outlier_threshold,
                                   params.alignment_engine);

  RelationSet refined;
  for (const Relation& rel : prelim.relations) {
    if (rel.univocal()) {
      refined.relations.push_back(rel);
      continue;
    }
    // Try to split the wide relation along the sequence evidence.
    SubGraph sub(rel);
    for (ObjectId a : rel.left)
      for (ObjectId b : rel.right)
        if (out.sequence.at(static_cast<std::size_t>(a),
                            static_cast<std::size_t>(b)) >=
                params.sequence_threshold &&
            cross_ok(static_cast<std::size_t>(a),
                     static_cast<std::size_t>(b)))
          sub.unite(sub.left_node(a), sub.right_node(b));
    // Simultaneous halves stay together regardless of the sequence.
    for (const auto& [x, y] : spmd_pairs_a)
      if (rel.left.count(x) && rel.left.count(y))
        sub.unite(sub.left_node(x), sub.left_node(y));
    for (const auto& [x, y] : spmd_pairs_b)
      if (rel.right.count(x) && rel.right.count(y))
        sub.unite(sub.right_node(x), sub.right_node(y));

    // Collect candidate parts.
    std::map<std::size_t, Relation> parts;
    for (ObjectId a : rel.left)
      parts[sub.find(sub.left_node(a))].left.insert(a);
    for (ObjectId b : rel.right)
      parts[sub.find(sub.right_node(b))].right.insert(b);

    bool splittable = parts.size() > 1;
    for (const auto& [root, part] : parts)
      if (part.left.empty() || part.right.empty()) splittable = false;

    if (splittable) {
      PT_LOG(Debug) << "split wide relation " << rel.describe() << " into "
                    << parts.size() << " parts";
      PT_COUNTER("relations_split_by_sequence", 1.0);
      for (auto& [root, part] : parts)
        refined.relations.push_back(std::move(part));
    } else {
      refined.relations.push_back(rel);
    }
  }

  // Attach unmatched objects where the sequence alignment pairs them.
  std::vector<ObjectId> still_left, still_right;
  std::vector<bool> right_used(m, false);
  for (ObjectId b : prelim.unmatched_right) {
    // Best left partner by sequence support.
    std::ptrdiff_t best_a = -1;
    double best = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double support = out.sequence.at(i, static_cast<std::size_t>(b));
      if (support >= params.sequence_threshold && support > best &&
          cross_ok(i, static_cast<std::size_t>(b))) {
        best = support;
        best_a = static_cast<std::ptrdiff_t>(i);
      }
    }
    if (best_a < 0) {
      still_right.push_back(b);
      continue;
    }
    auto a = static_cast<ObjectId>(best_a);
    if (std::find(prelim.unmatched_left.begin(), prelim.unmatched_left.end(),
                  a) != prelim.unmatched_left.end()) {
      // Both unmatched: new relation (may accrete more right objects).
      std::ptrdiff_t existing = refined.find_by_left(a);
      if (existing >= 0)
        refined.relations[static_cast<std::size_t>(existing)].right.insert(b);
      else
        refined.relations.push_back(Relation{{a}, {b}});
    } else {
      std::ptrdiff_t existing = refined.find_by_left(a);
      if (existing >= 0)
        refined.relations[static_cast<std::size_t>(existing)].right.insert(b);
      else {
        still_right.push_back(b);
        continue;
      }
    }
    right_used[static_cast<std::size_t>(b)] = true;
    PT_COUNTER("sequence_attached", 1.0);
  }
  for (ObjectId a : prelim.unmatched_left)
    if (refined.find_by_left(a) < 0) still_left.push_back(a);

  refined.unmatched_left = std::move(still_left);
  refined.unmatched_right = std::move(still_right);
  std::sort(refined.relations.begin(), refined.relations.end(),
            [](const Relation& x, const Relation& y) {
              return *x.left.begin() < *y.left.begin();
            });
  out.relations = std::move(refined);
  PT_COUNTER("relations", static_cast<double>(out.relations.size()));
  return out;
}

}  // namespace perftrack::tracking
