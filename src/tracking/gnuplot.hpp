#pragma once
// GNUplot export of a tracking result.
//
// The BSC tool chain the paper builds on renders its scatter frames and
// trend lines through GNUplot; this module emits the same artefacts:
//   <base>.frames.dat   one block per frame: x=IPC, y=instructions, region
//   <base>.trends.dat   one block per region: frame index, IPC, instr total
//   <base>.gp           a ready-to-run script rendering both as PNGs
// Run `gnuplot <base>.gp` to produce <base>.frames.png / <base>.trends.png.

#include <string>

#include "tracking/tracker.hpp"

namespace perftrack::tracking {

struct GnuplotOptions {
  /// Subsample cap per (frame, object) in the scatter data; 0 = all.
  std::size_t max_points_per_object = 2000;
};

/// Write the three files next to `base_path`; throws IoError on failure.
void save_gnuplot(const std::string& base_path, const TrackingResult& result,
                  const GnuplotOptions& options = {});

/// In-memory variants (exposed for tests).
std::string gnuplot_frames_dat(const TrackingResult& result,
                               const GnuplotOptions& options = {});
std::string gnuplot_trends_dat(const TrackingResult& result);
std::string gnuplot_script(const std::string& base_path,
                           const TrackingResult& result);

}  // namespace perftrack::tracking
