#include "tracking/evaluator_callstack.hpp"

#include <map>
#include <string>

#include "common/failpoint.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

namespace {

/// Structural key of a source location (per-trace ids are not comparable
/// across traces).
std::string location_key(const trace::CallstackTable& table,
                         trace::CallstackId id) {
  const trace::SourceLocation& loc = table.resolve(id);
  return loc.file + ":" + std::to_string(loc.line) + ":" + loc.function;
}

/// Per-object weight of each structural location, outliers dropped.
std::map<std::string, double> object_locations(
    const cluster::Frame& frame, cluster::ObjectId id, double threshold) {
  std::map<std::string, double> out;
  const auto& table = frame.source().callstacks();
  for (const auto& [cs, weight] : frame.object(id).callstack_weight) {
    if (weight < threshold) continue;  // noise computations
    out[location_key(table, cs)] += weight;
  }
  return out;
}

}  // namespace

CorrelationMatrix evaluate_callstack(const cluster::Frame& frame_a,
                                     const cluster::Frame& frame_b,
                                     double outlier_threshold) {
  PT_SPAN("evaluator_callstack");
  PT_FAILPOINT("evaluator_callstack");
  const std::size_t n = frame_a.object_count();
  const std::size_t m = frame_b.object_count();
  CorrelationMatrix out(n, m);

  std::vector<std::map<std::string, double>> locs_b(m);
  for (std::size_t j = 0; j < m; ++j)
    locs_b[j] = object_locations(frame_b, static_cast<cluster::ObjectId>(j),
                                 outlier_threshold);

  for (std::size_t i = 0; i < n; ++i) {
    auto locs_a = object_locations(frame_a, static_cast<cluster::ObjectId>(i),
                                   outlier_threshold);
    for (std::size_t j = 0; j < m; ++j) {
      double shared = 0.0;
      for (const auto& [key, weight] : locs_a)
        if (locs_b[j].count(key)) shared += weight;
      out.set(i, j, shared);
    }
  }
  out.threshold(outlier_threshold);
  if (obs::enabled()) {
    double links = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j)
        if (out.at(i, j) > 0.0) ++links;
    PT_COUNTER("callstack_links", links);
  }
  return out;
}

bool share_code_reference(const cluster::Frame& frame_a,
                          cluster::ObjectId object_a,
                          const cluster::Frame& frame_b,
                          cluster::ObjectId object_b,
                          double outlier_threshold) {
  auto locs_a = object_locations(frame_a, object_a, outlier_threshold);
  auto locs_b = object_locations(frame_b, object_b, outlier_threshold);
  for (const auto& [key, weight] : locs_a)
    if (locs_b.count(key)) return true;
  return false;
}

}  // namespace perftrack::tracking
