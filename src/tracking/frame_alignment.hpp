#pragma once
// Cached per-frame sequence alignment.
//
// Both the SPMD evaluator (§3.2) and the execution-sequence evaluator
// (§3.4) need the global alignment of a frame's per-task cluster sequences
// ([8]'s technique). FrameAlignment computes it once per frame and derives
// the two artefacts they consume: the column structure (who executes
// simultaneously) and the consensus sequence (the experiment's
// representative execution order).

#include <vector>

#include "align/msa.hpp"
#include "cluster/frame.hpp"

namespace perftrack::tracking {

class FrameAlignment {
public:
  /// `engine` selects the pairwise DP inside the star alignment and `pool`
  /// (optional) parallelises the per-task alignments; the result is
  /// bit-identical for every combination (see align/msa.hpp).
  explicit FrameAlignment(
      const cluster::Frame& frame, const align::AlignmentScores& scores = {},
      align::AlignmentEngine engine = align::AlignmentEngine::kAuto,
      ThreadPool* pool = nullptr);

  const align::MultipleAlignment& alignment() const { return msa_; }

  /// Representative execution sequence of the experiment (per-column
  /// majority vote over tasks).
  const std::vector<align::Symbol>& consensus() const { return consensus_; }

private:
  align::MultipleAlignment msa_;
  std::vector<align::Symbol> consensus_;
};

}  // namespace perftrack::tracking
