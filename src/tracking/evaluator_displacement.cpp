#include "tracking/evaluator_displacement.hpp"

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "geom/kdtree.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

namespace {

/// Clustered points of a frame in the common normalised space, plus the
/// cluster id of each.
struct ClusteredCloud {
  geom::PointSet points;
  std::vector<cluster::ObjectId> cluster_of;
};

ClusteredCloud clustered_cloud(const cluster::Frame& frame,
                               const ScaleNormalization& scale) {
  ClusteredCloud cloud;
  geom::PointSet normalized = scale.apply(frame);
  cloud.points = geom::PointSet(normalized.dims());
  for (std::size_t row = 0; row < normalized.size(); ++row) {
    cluster::ObjectId id = frame.labels()[row];
    if (id == cluster::kNoise) continue;
    cloud.points.add(normalized[row]);
    cloud.cluster_of.push_back(id);
  }
  return cloud;
}

/// Classify every point of `from` into the nearest cluster of `to`.
CorrelationMatrix classify(const ClusteredCloud& from, std::size_t from_count,
                           const ClusteredCloud& to, std::size_t to_count) {
  CorrelationMatrix m(from_count, to_count);
  if (from.points.empty() || to.points.empty()) return m;

  geom::KdTree tree(to.points);
  std::vector<std::size_t> per_cluster(from_count, 0);
  for (std::size_t i = 0; i < from.points.size(); ++i) {
    std::size_t nearest = tree.nearest(from.points[i]);
    auto from_id = static_cast<std::size_t>(from.cluster_of[i]);
    auto to_id = static_cast<std::size_t>(to.cluster_of[nearest]);
    m.add(from_id, to_id, 1.0);
    ++per_cluster[from_id];
  }
  for (std::size_t i = 0; i < from_count; ++i) {
    if (per_cluster[i] == 0) continue;
    for (std::size_t j = 0; j < to_count; ++j)
      m.set(i, j, m.at(i, j) / static_cast<double>(per_cluster[i]));
  }
  return m;
}

}  // namespace

DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const cluster::Frame& frame_b,
                                         const ScaleNormalization& scale,
                                         double outlier_threshold) {
  PT_SPAN("evaluator_displacement");
  PT_FAILPOINT("evaluator_displacement");
  PT_REQUIRE(outlier_threshold >= 0.0 && outlier_threshold < 1.0,
             "outlier threshold must be in [0,1)");
  ClusteredCloud cloud_a = clustered_cloud(frame_a, scale);
  ClusteredCloud cloud_b = clustered_cloud(frame_b, scale);

  DisplacementResult out;
  out.a_to_b = classify(cloud_a, frame_a.object_count(), cloud_b,
                        frame_b.object_count());
  out.b_to_a = classify(cloud_b, frame_b.object_count(), cloud_a,
                        frame_a.object_count());
  out.a_to_b.threshold(outlier_threshold);
  out.b_to_a.threshold(outlier_threshold);
  if (obs::enabled()) {
    double links = 0.0;
    for (std::size_t i = 0; i < out.a_to_b.rows(); ++i)
      for (std::size_t j = 0; j < out.a_to_b.cols(); ++j)
        if (out.a_to_b.at(i, j) > 0.0) ++links;
    PT_COUNTER("displacement_links", links);
    PT_COUNTER("displacement_points_classified",
               static_cast<double>(cloud_a.points.size() +
                                   cloud_b.points.size()));
  }
  return out;
}

}  // namespace perftrack::tracking
