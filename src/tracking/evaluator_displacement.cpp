#include "tracking/evaluator_displacement.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/thread_pool.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

FrameCloud::FrameCloud(const cluster::Frame& frame,
                       const ScaleNormalization& scale,
                       DisplacementIndex index) {
  PT_SPAN("frame_cloud");
  points_ = scale.apply_clustered(frame, cluster_of_);
  if (points_.empty()) return;  // all-noise frame: never queried

  // Per-cluster row lists and bounding boxes for the classification
  // sweep's cluster-level short-circuit.
  const std::size_t dims = points_.dims();
  const std::size_t clusters = frame.object_count();
  cluster_rows_.resize(clusters);
  cluster_lo_.assign(clusters * dims, std::numeric_limits<double>::infinity());
  cluster_hi_.assign(clusters * dims,
                     -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto c = static_cast<std::size_t>(cluster_of_[i]);
    cluster_rows_[c].push_back(static_cast<std::uint32_t>(i));
    const auto p = points_[i];
    for (std::size_t d = 0; d < dims; ++d) {
      cluster_lo_[c * dims + d] = std::min(cluster_lo_[c * dims + d], p[d]);
      cluster_hi_[c * dims + d] = std::max(cluster_hi_[c * dims + d], p[d]);
    }
  }

  if (index != DisplacementIndex::kKdTree)
    grid_ = geom::GridNn::build(points_);
  if (index == DisplacementIndex::kGrid)
    PT_REQUIRE(grid_ != nullptr,
               "grid displacement index pinned but not applicable to this "
               "cloud (needs 1-3 dimensions and a bounded cell table)");
  if (!grid_) tree_ = std::make_unique<geom::KdTree>(points_);
}

namespace {

/// Points per sweep chunk, below which splitting is pure overhead.
constexpr std::size_t kMinChunkPoints = 1024;

/// Relative slack covering the rounding of squared box distances, so a
/// cluster-level verdict proven with this margin also holds for the
/// individually rounded per-point distances (which round at ~1e-16).
constexpr double kBoxSlack = 1e-9;

/// Classify every point of `from` into the nearest cluster of `to`.
///
/// Two phases. First, a cluster-level short-circuit (grid engine only,
/// keeping the kd path the unmodified baseline): if one target cluster's
/// farthest box-to-box distance is strictly below every other target
/// cluster's closest, every row of the source cluster provably classifies
/// to it — no per-point queries, and no cross-cluster distance ties to
/// break, so the counts are byte-identical to the exact sweep. Rows of
/// unresolved clusters fall through to the exact nearest-neighbour sweep.
///
/// The sweep accumulates per-chunk integer count matrices that are folded
/// in chunk order; integer sums are exact, so the fold — and the final
/// count/row-total division, which reproduces the serial arithmetic — is
/// bit-identical for every chunk decomposition and thread count.
CorrelationMatrix classify(const FrameCloud& from, std::size_t from_count,
                           const FrameCloud& to, std::size_t to_count,
                           ThreadPool* pool) {
  CorrelationMatrix m(from_count, to_count);
  if (from.empty() || to.empty()) return m;

  const std::size_t dims = from.points().dims();
  std::vector<std::uint64_t> total(from_count * to_count, 0);
  std::vector<std::uint32_t> residual;  // rows still needing exact NN

  if (to.uses_grid()) {
    const std::vector<double>& flo = from.cluster_lo();
    const std::vector<double>& fhi = from.cluster_hi();
    const std::vector<double>& tlo = to.cluster_lo();
    const std::vector<double>& thi = to.cluster_hi();
    for (std::size_t i = 0; i < from.cluster_count(); ++i) {
      const std::vector<std::uint32_t>& rows = from.cluster_rows(i);
      if (rows.empty()) continue;
      // Farthest and closest squared box-to-box distance per target.
      double best_max = std::numeric_limits<double>::infinity();
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < to.cluster_count(); ++j) {
        if (to.cluster_rows(j).empty()) continue;
        double max_sq = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
          const double span = std::max(fhi[i * dims + d] - tlo[j * dims + d],
                                       thi[j * dims + d] - flo[i * dims + d]);
          max_sq += span * span;
        }
        if (max_sq < best_max) {
          best_max = max_sq;
          best_j = j;
        }
      }
      double others_min = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < to.cluster_count(); ++j) {
        if (j == best_j || to.cluster_rows(j).empty()) continue;
        double min_sq = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
          const double gap =
              std::max({0.0, tlo[j * dims + d] - fhi[i * dims + d],
                        flo[i * dims + d] - thi[j * dims + d]});
          min_sq += gap * gap;
        }
        others_min = std::min(others_min, min_sq);
      }
      if (best_max * (1.0 + kBoxSlack) < others_min)
        total[i * to_count + best_j] += rows.size();
      else
        residual.insert(residual.end(), rows.begin(), rows.end());
    }
  } else {
    residual.resize(from.points().size());
    for (std::size_t i = 0; i < residual.size(); ++i)
      residual[i] = static_cast<std::uint32_t>(i);
  }

  const std::size_t n = residual.size();
  const std::size_t workers = pool ? pool->thread_count() : 1;
  std::size_t chunks = 1;
  if (workers > 1 && n > 0)
    chunks = std::clamp<std::size_t>(n / kMinChunkPoints, 1, workers * 4);

  std::vector<std::vector<std::uint32_t>> counts(
      chunks, std::vector<std::uint32_t>(from_count * to_count, 0));
  auto sweep = [&](std::size_t c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    std::uint32_t* cnt = counts[c].data();
    // Residual rows are cluster-grouped, hence spatially coherent, so
    // each answer warm-starts the next query's search radius. The hint
    // never changes a result, so the per-chunk reset keeps any
    // decomposition exact.
    std::size_t hint = geom::GridNn::kNoHint;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t row = residual[i];
      const std::size_t nearest = to.nearest(from.points()[row], hint);
      hint = nearest;
      const auto from_id = static_cast<std::size_t>(from.cluster_of(row));
      const auto to_id = static_cast<std::size_t>(to.cluster_of(nearest));
      ++cnt[from_id * to_count + to_id];
    }
  };
  if (chunks == 1)
    sweep(0);
  else
    pool->parallel_for(0, chunks, sweep);

  for (const auto& chunk : counts)
    for (std::size_t k = 0; k < total.size(); ++k) total[k] += chunk[k];
  for (std::size_t i = 0; i < from_count; ++i) {
    std::uint64_t row_total = 0;
    for (std::size_t j = 0; j < to_count; ++j)
      row_total += total[i * to_count + j];
    if (row_total == 0) continue;
    for (std::size_t j = 0; j < to_count; ++j)
      m.set(i, j,
            static_cast<double>(total[i * to_count + j]) /
                static_cast<double>(row_total));
  }
  return m;
}

}  // namespace

DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const FrameCloud& cloud_a,
                                         const cluster::Frame& frame_b,
                                         const FrameCloud& cloud_b,
                                         double outlier_threshold,
                                         ThreadPool* pool) {
  PT_SPAN("evaluator_displacement");
  PT_FAILPOINT("evaluator_displacement");
  PT_REQUIRE(outlier_threshold >= 0.0 && outlier_threshold < 1.0,
             "outlier threshold must be in [0,1)");

  DisplacementResult out;
  if (pool && pool->thread_count() > 1) {
    // Overlap the two directions; each inner sweep additionally chunks
    // across the pool. Either order of completion yields the same bits.
    auto a_to_b = pool->submit([&] {
      return classify(cloud_a, frame_a.object_count(), cloud_b,
                      frame_b.object_count(), pool);
    });
    try {
      out.b_to_a = classify(cloud_b, frame_b.object_count(), cloud_a,
                            frame_a.object_count(), pool);
    } catch (...) {
      a_to_b.wait();  // the task reads the caller's clouds — let it finish
      throw;
    }
    out.a_to_b = a_to_b.get();
  } else {
    out.a_to_b = classify(cloud_a, frame_a.object_count(), cloud_b,
                          frame_b.object_count(), pool);
    out.b_to_a = classify(cloud_b, frame_b.object_count(), cloud_a,
                          frame_a.object_count(), pool);
  }
  out.a_to_b.threshold(outlier_threshold);
  out.b_to_a.threshold(outlier_threshold);
  if (obs::enabled()) {
    // A link is an object pair connected by either direction, matching the
    // combiner's reciprocal link-proposal rule.
    double links = 0.0;
    for (std::size_t i = 0; i < out.a_to_b.rows(); ++i)
      for (std::size_t j = 0; j < out.a_to_b.cols(); ++j)
        if (out.a_to_b.at(i, j) > 0.0 || out.b_to_a.at(j, i) > 0.0) ++links;
    PT_COUNTER("displacement_links", links);
    PT_COUNTER("displacement_points_classified",
               static_cast<double>(cloud_a.points().size() +
                                   cloud_b.points().size()));
  }
  return out;
}

DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const cluster::Frame& frame_b,
                                         const ScaleNormalization& scale,
                                         double outlier_threshold,
                                         ThreadPool* pool,
                                         DisplacementIndex index) {
  FrameCloud cloud_a(frame_a, scale, index);
  FrameCloud cloud_b(frame_b, scale, index);
  return evaluate_displacement(frame_a, cloud_a, frame_b, cloud_b,
                               outlier_threshold, pool);
}

}  // namespace perftrack::tracking
