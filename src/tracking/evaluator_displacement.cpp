#include "tracking/evaluator_displacement.hpp"

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

FrameCloud::FrameCloud(const cluster::Frame& frame,
                       const ScaleNormalization& scale) {
  PT_SPAN("frame_cloud");
  geom::PointSet normalized = scale.apply(frame);
  points_ = geom::PointSet(normalized.dims());
  for (std::size_t row = 0; row < normalized.size(); ++row) {
    cluster::ObjectId id = frame.labels()[row];
    if (id == cluster::kNoise) continue;
    points_.add(normalized[row]);
    cluster_of_.push_back(id);
  }
  tree_ = std::make_unique<geom::KdTree>(points_);
}

namespace {

/// Classify every point of `from` into the nearest cluster of `to`.
CorrelationMatrix classify(const FrameCloud& from, std::size_t from_count,
                           const FrameCloud& to, std::size_t to_count) {
  CorrelationMatrix m(from_count, to_count);
  if (from.empty() || to.empty()) return m;

  const geom::KdTree& tree = to.tree();
  std::vector<std::size_t> per_cluster(from_count, 0);
  for (std::size_t i = 0; i < from.points().size(); ++i) {
    std::size_t nearest = tree.nearest(from.points()[i]);
    auto from_id = static_cast<std::size_t>(from.cluster_of(i));
    auto to_id = static_cast<std::size_t>(to.cluster_of(nearest));
    m.add(from_id, to_id, 1.0);
    ++per_cluster[from_id];
  }
  for (std::size_t i = 0; i < from_count; ++i) {
    if (per_cluster[i] == 0) continue;
    for (std::size_t j = 0; j < to_count; ++j)
      m.set(i, j, m.at(i, j) / static_cast<double>(per_cluster[i]));
  }
  return m;
}

}  // namespace

DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const FrameCloud& cloud_a,
                                         const cluster::Frame& frame_b,
                                         const FrameCloud& cloud_b,
                                         double outlier_threshold) {
  PT_SPAN("evaluator_displacement");
  PT_FAILPOINT("evaluator_displacement");
  PT_REQUIRE(outlier_threshold >= 0.0 && outlier_threshold < 1.0,
             "outlier threshold must be in [0,1)");

  DisplacementResult out;
  out.a_to_b = classify(cloud_a, frame_a.object_count(), cloud_b,
                        frame_b.object_count());
  out.b_to_a = classify(cloud_b, frame_b.object_count(), cloud_a,
                        frame_a.object_count());
  out.a_to_b.threshold(outlier_threshold);
  out.b_to_a.threshold(outlier_threshold);
  if (obs::enabled()) {
    // A link is an object pair connected by either direction, matching the
    // combiner's reciprocal link-proposal rule.
    double links = 0.0;
    for (std::size_t i = 0; i < out.a_to_b.rows(); ++i)
      for (std::size_t j = 0; j < out.a_to_b.cols(); ++j)
        if (out.a_to_b.at(i, j) > 0.0 || out.b_to_a.at(j, i) > 0.0) ++links;
    PT_COUNTER("displacement_links", links);
    PT_COUNTER("displacement_points_classified",
               static_cast<double>(cloud_a.points().size() +
                                   cloud_b.points().size()));
  }
  return out;
}

DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const cluster::Frame& frame_b,
                                         const ScaleNormalization& scale,
                                         double outlier_threshold) {
  FrameCloud cloud_a(frame_a, scale);
  FrameCloud cloud_b(frame_b, scale);
  return evaluate_displacement(frame_a, cloud_a, frame_b, cloud_b,
                               outlier_threshold);
}

}  // namespace perftrack::tracking
