#include "tracking/frame_alignment.hpp"

#include "common/failpoint.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

FrameAlignment::FrameAlignment(const cluster::Frame& frame,
                               const align::AlignmentScores& scores,
                               align::AlignmentEngine engine,
                               ThreadPool* pool) {
  PT_SPAN("frame_alignment");
  PT_FAILPOINT("frame_alignment");
  msa_ = align::star_align(frame.task_sequences(), scores, engine, pool);
  consensus_ = msa_.consensus();
}

}  // namespace perftrack::tracking
