#include "tracking/frame_alignment.hpp"

namespace perftrack::tracking {

FrameAlignment::FrameAlignment(const cluster::Frame& frame,
                               const align::AlignmentScores& scores)
    : msa_(align::star_align(frame.task_sequences(), scores)),
      consensus_(msa_.consensus()) {}

}  // namespace perftrack::tracking
