#include "tracking/relation.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace perftrack::tracking {

namespace {
std::string describe_side(const std::set<ObjectId>& side) {
  std::string out = "{";
  bool first = true;
  for (ObjectId id : side) {
    if (!first) out += ",";
    out += std::to_string(id + 1);
    first = false;
  }
  out += "}";
  return out;
}
}  // namespace

std::string Relation::describe() const {
  return describe_side(left) + " = " + describe_side(right);
}

std::ptrdiff_t RelationSet::find_by_left(ObjectId a) const {
  for (std::size_t i = 0; i < relations.size(); ++i)
    if (relations[i].left.count(a)) return static_cast<std::ptrdiff_t>(i);
  return -1;
}

std::ptrdiff_t RelationSet::find_by_right(ObjectId b) const {
  for (std::size_t i = 0; i < relations.size(); ++i)
    if (relations[i].right.count(b)) return static_cast<std::ptrdiff_t>(i);
  return -1;
}

bool RelationSet::related(ObjectId a, ObjectId b) const {
  std::ptrdiff_t i = find_by_left(a);
  return i >= 0 && relations[static_cast<std::size_t>(i)].right.count(b) > 0;
}

RelationGraph::RelationGraph(std::size_t left_count, std::size_t right_count)
    : left_count_(left_count), right_count_(right_count) {
  parent_.resize(left_count + right_count);
  for (std::size_t i = 0; i < parent_.size(); ++i) parent_[i] = i;
  rank_.assign(parent_.size(), 0);
}

std::size_t RelationGraph::left_node(ObjectId a) const {
  PT_REQUIRE(a >= 0 && static_cast<std::size_t>(a) < left_count_,
             "left object id out of range");
  return static_cast<std::size_t>(a);
}

std::size_t RelationGraph::right_node(ObjectId b) const {
  PT_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < right_count_,
             "right object id out of range");
  return left_count_ + static_cast<std::size_t>(b);
}

std::size_t RelationGraph::find(std::size_t node) {
  while (parent_[node] != node) {
    parent_[node] = parent_[parent_[node]];
    node = parent_[node];
  }
  return node;
}

void RelationGraph::unite(std::size_t x, std::size_t y) {
  x = find(x);
  y = find(y);
  if (x == y) return;
  if (rank_[x] < rank_[y]) std::swap(x, y);
  parent_[y] = x;
  if (rank_[x] == rank_[y]) ++rank_[x];
}

void RelationGraph::link(ObjectId a, ObjectId b) {
  unite(left_node(a), right_node(b));
}

void RelationGraph::merge_left(ObjectId a1, ObjectId a2) {
  unite(left_node(a1), left_node(a2));
}

void RelationGraph::merge_right(ObjectId b1, ObjectId b2) {
  unite(right_node(b1), right_node(b2));
}

bool RelationGraph::connected_left(ObjectId a1, ObjectId a2) {
  return find(left_node(a1)) == find(left_node(a2));
}

bool RelationGraph::connected_cross(ObjectId a, ObjectId b) {
  return find(left_node(a)) == find(right_node(b));
}

RelationSet RelationGraph::components() {
  std::map<std::size_t, Relation> by_root;
  for (std::size_t a = 0; a < left_count_; ++a)
    by_root[find(a)].left.insert(static_cast<ObjectId>(a));
  for (std::size_t b = 0; b < right_count_; ++b)
    by_root[find(left_count_ + b)].right.insert(static_cast<ObjectId>(b));

  RelationSet out;
  for (auto& [root, rel] : by_root) {
    if (!rel.left.empty() && !rel.right.empty()) {
      out.relations.push_back(std::move(rel));
    } else {
      for (ObjectId a : rel.left) out.unmatched_left.push_back(a);
      for (ObjectId b : rel.right) out.unmatched_right.push_back(b);
    }
  }
  std::sort(out.relations.begin(), out.relations.end(),
            [](const Relation& x, const Relation& y) {
              return *x.left.begin() < *y.left.begin();
            });
  std::sort(out.unmatched_left.begin(), out.unmatched_left.end());
  std::sort(out.unmatched_right.begin(), out.unmatched_right.end());
  return out;
}

}  // namespace perftrack::tracking
