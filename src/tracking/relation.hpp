#pragma once
// Relations between the objects of two frames (paper §3, Fig. 2).
//
// Tracking a pair of frames (A, B) produces a k-partition P of A's objects
// and a k-partition Q of B's, with P_i ≡ Q_i. A Relation is one such pair
// of object sets; RelationGraph is the union-find structure the combiner
// uses to accumulate evaluator findings (cross links, same-side merges)
// before extracting the partition.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cluster/frame.hpp"

namespace perftrack::tracking {

using cluster::ObjectId;

struct Relation {
  std::set<ObjectId> left;   ///< objects of frame A
  std::set<ObjectId> right;  ///< objects of frame B

  /// A one-to-one relation; wide relations group several objects the
  /// evaluators could not discriminate.
  bool univocal() const { return left.size() == 1 && right.size() == 1; }

  bool operator==(const Relation&) const = default;

  /// "{A1,A2} = {B3}" (1-based display numbering).
  std::string describe() const;
};

struct RelationSet {
  std::vector<Relation> relations;

  /// Objects that ended up in no relation (no cross link survived).
  std::vector<ObjectId> unmatched_left;
  std::vector<ObjectId> unmatched_right;

  /// Relation containing left object `a`, or -1.
  std::ptrdiff_t find_by_left(ObjectId a) const;
  /// Relation containing right object `b`, or -1.
  std::ptrdiff_t find_by_right(ObjectId b) const;

  /// True if `a` and `b` belong to the same relation.
  bool related(ObjectId a, ObjectId b) const;

  std::size_t size() const { return relations.size(); }

  auto begin() const { return relations.begin(); }
  auto end() const { return relations.end(); }
};

/// Union-find accumulator over the bipartite object sets of two frames.
class RelationGraph {
public:
  RelationGraph(std::size_t left_count, std::size_t right_count);

  std::size_t left_count() const { return left_count_; }
  std::size_t right_count() const { return right_count_; }

  /// Record that left object a corresponds to right object b.
  void link(ObjectId a, ObjectId b);
  /// Record that two left-side objects are the same entity.
  void merge_left(ObjectId a1, ObjectId a2);
  /// Record that two right-side objects are the same entity.
  void merge_right(ObjectId b1, ObjectId b2);

  bool connected_left(ObjectId a1, ObjectId a2);
  bool connected_cross(ObjectId a, ObjectId b);

  /// Extract the relations: connected components containing objects from
  /// both sides become Relations (sorted by smallest left member);
  /// single-side components are reported as unmatched.
  RelationSet components();

private:
  std::size_t find(std::size_t node);
  void unite(std::size_t x, std::size_t y);
  std::size_t left_node(ObjectId a) const;
  std::size_t right_node(ObjectId b) const;

  std::size_t left_count_, right_count_;
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace perftrack::tracking
