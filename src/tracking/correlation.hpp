#pragma once
// Correlation matrices between frame objects (paper §3, Fig. 3).
//
// Every evaluator reports its findings as a matrix whose cell (i, j) is the
// probability/fraction with which object i of one frame corresponds to
// object j of another (or, for the SPMD evaluator, runs simultaneously
// with object j of the same frame). Cells below the outlier threshold
// (5% by default) are neglected.

#include <cstddef>
#include <string>
#include <vector>

namespace perftrack::tracking {

class CorrelationMatrix {
public:
  CorrelationMatrix() = default;
  CorrelationMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double at(std::size_t i, std::size_t j) const {
    return values_[i * cols_ + j];
  }
  void set(std::size_t i, std::size_t j, double v) {
    values_[i * cols_ + j] = v;
  }
  void add(std::size_t i, std::size_t j, double v) {
    values_[i * cols_ + j] += v;
  }

  /// Zero every cell strictly below `min_value` (the 5% outlier rule).
  void threshold(double min_value);

  /// Divide each row by its sum (rows with sum 0 are left untouched).
  void normalize_rows();

  /// Column index of the largest cell of row `i`, or -1 if the row is all
  /// zeros.
  std::ptrdiff_t row_argmax(std::size_t i) const;

  /// Render with percentage cells and the given prefixes for row/column
  /// labels (e.g. "A"/"B" giving A1..An x B1..Bm, 1-based like the paper).
  std::string to_text(const std::string& row_prefix,
                      const std::string& col_prefix) const;

  /// Cell-exact equality — the displacement engine equivalence gate
  /// compares kd-tree and grid classifications with it.
  friend bool operator==(const CorrelationMatrix&,
                         const CorrelationMatrix&) = default;

private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> values_;
};

}  // namespace perftrack::tracking
