#pragma once
// High-level facade: from traces to a tracked sequence in one call.
//
// This is the library's main entry point, mirroring the tool described in
// the paper: feed it the experiments (traces), choose the metric pair and
// clustering/tracking parameters, run, and read back the tracked regions,
// their trends and the rendered reports.
//
//   TrackingPipeline pipeline;
//   pipeline.add_experiment(trace_128);
//   pipeline.add_experiment(trace_256);
//   TrackingResult result = pipeline.run();
//   std::cout << describe_tracking(result);
//
// Degraded mode: with lenient resilience enabled, an experiment that fails
// to cluster (or that the caller already failed to load — add_gap) becomes
// an explicit gap in the frame sequence instead of aborting the run. The
// tracker bridges the gap by pairing its surviving neighbours directly, and
// the gap list travels on the TrackingResult so every report can render it.

#include <memory>
#include <string>
#include <vector>

#include "cluster/frame.hpp"
#include "tracking/tracker.hpp"

namespace perftrack::tracking {

/// Degraded-mode policy for TrackingPipeline::run().
struct ResilienceParams {
  /// Convert per-experiment clustering failures into gaps instead of
  /// rethrowing. Off = today's fail-fast behaviour.
  bool lenient = false;

  /// Error budget: abort when more than this fraction of the experiment
  /// sequence is gaps (counting add_gap slots). The run also always needs
  /// at least two surviving frames.
  double max_gap_fraction = 0.5;
};

class TrackingPipeline {
public:
  TrackingPipeline();

  /// Append one experiment; sequence order is insertion order.
  void add_experiment(std::shared_ptr<const trace::Trace> trace);

  /// Append a slot for an experiment that already failed upstream (e.g. an
  /// unreadable trace file). The slot participates in gap accounting and
  /// reporting but contributes no frame.
  void add_gap(std::string label, std::string reason);

  /// Clustering configuration used to build every frame.
  void set_clustering(cluster::ClusteringParams params);
  const cluster::ClusteringParams& clustering() const { return clustering_; }

  /// Tracking (evaluator/combiner) configuration.
  void set_tracking(TrackingParams params);
  const TrackingParams& tracking() const { return tracking_; }

  /// Degraded-mode policy (strict by default).
  void set_resilience(ResilienceParams params);
  const ResilienceParams& resilience() const { return resilience_; }

  /// Sequence slots added so far (experiments plus pre-declared gaps).
  std::size_t experiment_count() const { return entries_.size(); }
  std::size_t gap_count() const;

  /// Cluster every experiment and track the sequence. Requires >= 2
  /// surviving experiments after gap handling; throws Error when the gap
  /// budget is exhausted.
  TrackingResult run() const;

private:
  struct Entry {
    std::shared_ptr<const trace::Trace> trace;  ///< null for add_gap slots
    std::string label;
    std::string reason;
  };

  std::vector<Entry> entries_;
  cluster::ClusteringParams clustering_;
  TrackingParams tracking_;
  ResilienceParams resilience_;
};

}  // namespace perftrack::tracking
