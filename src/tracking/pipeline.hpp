#pragma once
// High-level facade: from traces to a tracked sequence in one call.
//
// This is the library's batch entry point, mirroring the tool described in
// the paper: feed it the experiments (traces), choose the metric pair and
// clustering/tracking parameters, run, and read back the tracked regions,
// their trends and the rendered reports.
//
//   TrackingPipeline pipeline;
//   pipeline.add_experiment(trace_128);
//   pipeline.add_experiment(trace_256);
//   TrackingResult result = pipeline.run();
//   std::cout << describe_tracking(result);
//
// run() is a thin wrapper over TrackingSession (tracking/session.hpp): it
// replays the recorded experiments into a fresh session and retracks once,
// so batch and incremental runs share one engine and cannot drift.
// Configuration goes through one surface: build a SessionConfig and pass
// it to set_config(); validate() (run by the session) reports every
// problem at once. The per-field setters that once shadowed it are gone.
//
// Degraded mode: with lenient resilience enabled, an experiment that fails
// to cluster (or that the caller already failed to load — add_gap) becomes
// an explicit gap in the frame sequence instead of aborting the run. The
// tracker bridges the gap by pairing its surviving neighbours directly, and
// the gap list travels on the TrackingResult so every report can render it.

#include <memory>
#include <string>
#include <vector>

#include "cluster/frame.hpp"
#include "tracking/session.hpp"
#include "tracking/tracker.hpp"

namespace perftrack::tracking {

class TrackingPipeline {
public:
  TrackingPipeline() = default;

  /// Append one experiment; sequence order is insertion order.
  void add_experiment(std::shared_ptr<const trace::Trace> trace);

  /// Append a slot for an experiment that already failed upstream (e.g. an
  /// unreadable trace file). The slot participates in gap accounting and
  /// reporting but contributes no frame.
  void add_gap(std::string label, std::string reason);

  /// The full run configuration. Validated by run() (via the session), not
  /// here, so callers can stage partial edits.
  void set_config(SessionConfig config) { config_ = std::move(config); }
  const SessionConfig& config() const { return config_; }

  /// Read-only views into the aggregate, for callers that only inspect.
  const cluster::ClusteringParams& clustering() const {
    return config_.clustering;
  }
  const TrackingParams& tracking() const { return config_.tracking; }
  const ResilienceParams& resilience() const { return config_.resilience; }
  const store::StoreConfig& cache() const { return config_.cache; }

  /// Sequence slots added so far (experiments plus pre-declared gaps).
  std::size_t experiment_count() const { return entries_.size(); }
  std::size_t gap_count() const;

  /// Cluster every experiment and track the sequence. Requires >= 2
  /// surviving experiments after gap handling; throws Error when the gap
  /// budget is exhausted or the configuration is invalid.
  TrackingResult run() const;

private:
  struct Entry {
    std::shared_ptr<const trace::Trace> trace;  ///< null for add_gap slots
    std::string label;
    std::string reason;
  };

  std::vector<Entry> entries_;
  SessionConfig config_;
};

}  // namespace perftrack::tracking
