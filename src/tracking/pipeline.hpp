#pragma once
// High-level facade: from traces to a tracked sequence in one call.
//
// This is the library's main entry point, mirroring the tool described in
// the paper: feed it the experiments (traces), choose the metric pair and
// clustering/tracking parameters, run, and read back the tracked regions,
// their trends and the rendered reports.
//
//   TrackingPipeline pipeline;
//   pipeline.add_experiment(trace_128);
//   pipeline.add_experiment(trace_256);
//   TrackingResult result = pipeline.run();
//   std::cout << describe_tracking(result);

#include <memory>
#include <vector>

#include "cluster/frame.hpp"
#include "tracking/tracker.hpp"

namespace perftrack::tracking {

class TrackingPipeline {
public:
  TrackingPipeline();

  /// Append one experiment; sequence order is insertion order.
  void add_experiment(std::shared_ptr<const trace::Trace> trace);

  /// Clustering configuration used to build every frame.
  void set_clustering(cluster::ClusteringParams params);
  const cluster::ClusteringParams& clustering() const { return clustering_; }

  /// Tracking (evaluator/combiner) configuration.
  void set_tracking(TrackingParams params);
  const TrackingParams& tracking() const { return tracking_; }

  std::size_t experiment_count() const { return traces_.size(); }

  /// Cluster every experiment and track the sequence. Requires >= 2
  /// experiments.
  TrackingResult run() const;

private:
  std::vector<std::shared_ptr<const trace::Trace>> traces_;
  cluster::ClusteringParams clustering_;
  TrackingParams tracking_;
};

}  // namespace perftrack::tracking
