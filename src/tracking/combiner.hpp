#pragma once
// Combination of the four evaluators into frame-pair relations (paper §3).
//
// The combiner follows the paper's recipe:
//   1. seed the relation graph with the displacement evaluator's reciprocal
//      correspondences (A->B and B->A),
//   2. enhance with the SPMD evaluator's within-frame simultaneity merges
//      (B5 and B13 always run together => one entity),
//   3. prune candidate links whose objects share no call-stack reference,
//   4. extract connected components as relations; where the information
//      could not discriminate nearby objects this yields wide relations,
//   5. refine: align the two execution sequences anchored at the already
//      established (univocal) pivots, split wide relations where the
//      sequence evidence supports it, and attach still-unmatched objects.

#include "align/nw.hpp"
#include "cluster/frame.hpp"
#include "tracking/correlation.hpp"
#include "tracking/evaluator_displacement.hpp"
#include "tracking/frame_alignment.hpp"
#include "tracking/relation.hpp"
#include "tracking/scale.hpp"

namespace perftrack::tracking {

struct TrackingParams {
  /// Correlation cells below this are treated as outliers (paper: 5%).
  double outlier_threshold = 0.05;

  /// Minimum simultaneity for an SPMD within-frame merge.
  double spmd_threshold = 0.5;

  /// Minimum aligned-occurrence support for a sequence-based refinement.
  double sequence_threshold = 0.5;

  /// Scores for the per-frame multiple sequence alignment.
  align::AlignmentScores alignment_scores{};

  /// Pairwise DP engine for every alignment (per-frame MSA and the
  /// sequence evaluator); kAuto bands large eligible problems, with
  /// byte-identical output either way (see align/nw.hpp).
  align::AlignmentEngine alignment_engine = align::AlignmentEngine::kAuto;

  /// Per-axis log10 in the common normalised space; empty defaults to
  /// log-scaling every task-weighted axis (instruction-like totals).
  std::vector<bool> log_scale{};

  // Evaluator switches (ablation studies disable individual heuristics).
  bool use_displacement = true;
  bool use_spmd = true;
  bool use_callstack = true;
  bool use_sequence = true;

  /// Worker threads for the parallel stages (per-frame clustering and
  /// alignment, per-pair tracking, within-pair displacement sweeps).
  /// 0 = hardware concurrency; 1 = serial. The tracked result is identical
  /// for every value — only scheduling changes (see docs/PERFORMANCE.md).
  std::size_t threads = 0;

  /// Nearest-neighbour engine for the displacement evaluator; kAuto picks
  /// the grid when applicable, with byte-identical output either way.
  DisplacementIndex displacement_index = DisplacementIndex::kAuto;
};

/// Everything learnt about one consecutive frame pair.
struct PairTracking {
  RelationSet relations;

  // Evaluator artefacts, kept for reporting (Figs. 3-5, Table 1).
  DisplacementResult displacement;
  CorrelationMatrix spmd_a;      ///< square, frame A
  CorrelationMatrix spmd_b;      ///< square, frame B
  CorrelationMatrix callstack;   ///< A objects x B objects
  CorrelationMatrix sequence;    ///< A objects x B objects
};

/// Track one consecutive frame pair. The FrameAlignments must have been
/// built from these frames; the ScaleNormalization from the whole sequence.
/// `cloud_a`/`cloud_b` optionally pass the tracker's per-frame displacement
/// cache (FrameClouds built from these frames with `scale`); when null the
/// displacement evaluator builds its clouds on the fly. `pool` (optional)
/// parallelises the displacement sweeps within the pair.
PairTracking track_pair(const cluster::Frame& frame_a,
                        const FrameAlignment& alignment_a,
                        const cluster::Frame& frame_b,
                        const FrameAlignment& alignment_b,
                        const ScaleNormalization& scale,
                        const TrackingParams& params,
                        const FrameCloud* cloud_a = nullptr,
                        const FrameCloud* cloud_b = nullptr,
                        ThreadPool* pool = nullptr);

}  // namespace perftrack::tracking
