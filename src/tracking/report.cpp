#include "tracking/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/scatter.hpp"
#include "common/strings.hpp"
#include "obs/telemetry.hpp"
#include "trace/metrics.hpp"

namespace perftrack::tracking {

std::string trend_chart(const std::vector<TrendSeries>& series,
                        const std::vector<std::string>& frame_labels,
                        const TrendChartOptions& options) {
  if (series.empty()) return "(no series)\n";
  const std::size_t frames = series.front().values.size();

  double lo = options.y_min, hi = options.y_max;
  if (std::isnan(lo) || std::isnan(hi)) {
    double dlo = std::numeric_limits<double>::infinity();
    double dhi = -std::numeric_limits<double>::infinity();
    for (const auto& s : series)
      for (double v : s.values) {
        dlo = std::min(dlo, v);
        dhi = std::max(dhi, v);
      }
    if (!(dlo < dhi)) {
      dhi = dlo + 1.0;
      dlo -= 1.0;
    }
    double pad = (dhi - dlo) * 0.05;
    if (std::isnan(lo)) lo = dlo - pad;
    if (std::isnan(hi)) hi = dhi + pad;
  }

  const int w = options.width, h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  const std::string glyphs = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";

  auto col_of = [&](std::size_t frame) {
    if (frames <= 1) return 0;
    return static_cast<int>(static_cast<double>(frame) /
                            static_cast<double>(frames - 1) * (w - 1));
  };
  auto row_of = [&](double v) {
    double t = (v - lo) / (hi - lo);
    return std::clamp(static_cast<int>(t * (h - 1)), 0, h - 1);
  };

  for (std::size_t s = 0; s < series.size(); ++s) {
    char glyph = glyphs[s % glyphs.size()];
    // Draw segments between consecutive frames so trends read as lines.
    for (std::size_t f = 0; f + 1 < frames; ++f) {
      int x0 = col_of(f), x1 = col_of(f + 1);
      int y0 = row_of(series[s].values[f]);
      int y1 = row_of(series[s].values[f + 1]);
      int steps = std::max(std::abs(x1 - x0), std::abs(y1 - y0));
      for (int t = 0; t <= steps; ++t) {
        double a = steps == 0 ? 0.0 : static_cast<double>(t) / steps;
        int x = x0 + static_cast<int>(std::lround(a * (x1 - x0)));
        int y = y0 + static_cast<int>(std::lround(a * (y1 - y0)));
        grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = glyph;
      }
    }
    if (frames == 1)
      grid[static_cast<std::size_t>(row_of(series[s].values[0]))][0] = glyph;
  }

  std::string out;
  if (!options.y_label.empty()) out += "  " + options.y_label + "\n";
  for (int y = h - 1; y >= 0; --y) {
    double level = lo + (hi - lo) * y / (h - 1);
    out += "  " + format_double(level, 3) + " |" +
           grid[static_cast<std::size_t>(y)] + "\n";
  }
  out += "          +" + std::string(static_cast<std::size_t>(w), '-') + "\n";
  // Frame labels along the X axis (first, middle, last to keep it tidy).
  if (!frame_labels.empty()) {
    out += "           " + frame_labels.front();
    if (frame_labels.size() > 2)
      out += " ... " + frame_labels[frame_labels.size() / 2];
    if (frame_labels.size() > 1) out += " ... " + frame_labels.back();
    out += "\n";
  }
  out += "  series: ";
  std::vector<std::string> legend;
  for (std::size_t s = 0; s < series.size(); ++s)
    legend.push_back(std::string(1, glyphs[s % glyphs.size()]) + "=" +
                     series[s].label);
  out += join(legend, "  ") + "\n";
  return out;
}

Table trend_table(const TrackingResult& result, trace::Metric metric) {
  PT_SPAN("report_trend_table");
  std::vector<std::string> headers{"Region"};
  for (const auto& frame : result.frames) headers.push_back(frame.label());
  headers.push_back("Change");
  Table table(std::move(headers));

  for (const TrackedRegion& region : result.regions) {
    if (!region.complete) continue;
    std::vector<double> series =
        region_metric_mean(result, region.id, metric);
    table.begin_row();
    table.cell("Region " + std::to_string(region.id + 1));
    for (double v : series) table.cell(v, 4);
    double change =
        series.front() != 0.0 ? series.back() / series.front() - 1.0 : 0.0;
    table.cell(format_percent(change));
  }
  return table;
}

std::string tracked_scatters(const TrackingResult& result, int width,
                             int height) {
  // Common axes across the whole sequence, in the task-weighted scale the
  // tracking itself uses — render from raw coordinates but with fixed
  // bounds derived per frame dimension.
  std::string out;
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    cluster::ScatterOptions options;
    options.width = width;
    options.height = height;
    options.x_axis = 1;  // IPC on X, like the paper's figures
    options.y_axis = 0;  // Instructions on Y
    options.log_y = true;
    out += cluster::ascii_scatter(result.frames[f], options,
                                  &result.renaming[f]);
    out += "\n";
  }
  return out;
}

std::string describe_tracking(const TrackingResult& result) {
  PT_SPAN("report_describe");
  std::string out;
  for (std::size_t p = 0; p < result.pairs.size(); ++p) {
    out += "pair " + result.frames[p].label() + " -> " +
           result.frames[p + 1].label() + ":\n";
    for (const Relation& rel : result.pairs[p].relations)
      out += "  " + rel.describe() + "\n";
    for (ObjectId a : result.pairs[p].relations.unmatched_left)
      out += "  unmatched left: " + std::to_string(a + 1) + "\n";
    for (ObjectId b : result.pairs[p].relations.unmatched_right)
      out += "  unmatched right: " + std::to_string(b + 1) + "\n";
  }
  out += "tracked regions: " + std::to_string(result.complete_count) +
         " complete of " + std::to_string(result.regions.size()) +
         " total, coverage " +
         format_double(result.coverage * 100.0, 0) + "%\n";
  if (result.degraded()) {
    out += "degraded sequence: " + std::to_string(result.frames.size()) +
           " of " + std::to_string(result.sequence_length()) +
           " experiments survived, effective coverage " +
           format_double(result.effective_coverage() * 100.0, 0) + "%\n";
    for (const ExperimentGap& gap : result.gaps)
      out += "  gap at slot " + std::to_string(gap.slot + 1) + ": " +
             gap.label + (gap.reason.empty() ? "" : " (" + gap.reason + ")") +
             "\n";
  }
  for (const TrackedRegion& region : result.regions) {
    if (!region.complete) continue;
    out += "  Region " + std::to_string(region.id + 1) + ":";
    for (std::size_t f = 0; f < result.frames.size(); ++f) {
      out += " [";
      bool first = true;
      for (ObjectId o : region.members[f]) {
        if (!first) out += ",";
        out += std::to_string(o + 1);
        first = false;
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

std::string trends_csv(const TrackingResult& result) {
  PT_SPAN("report_trends_csv");
  std::string out =
      "region,frame,label,ipc,instructions_mean,instructions_total,"
      "duration_total,l1_miss_per_ki,l2_miss_per_ki,tlb_miss_per_ki,bursts\n";
  for (const TrackedRegion& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = region_metric_mean(result, region.id, trace::Metric::Ipc);
    auto instr_mean =
        region_metric_mean(result, region.id, trace::Metric::Instructions);
    auto instr_total = region_counter_total(result, region.id,
                                            trace::Counter::Instructions);
    auto duration = region_duration_total(result, region.id);
    auto l1 =
        region_metric_mean(result, region.id, trace::Metric::L1MissesPerKi);
    auto l2 =
        region_metric_mean(result, region.id, trace::Metric::L2MissesPerKi);
    auto tlb =
        region_metric_mean(result, region.id, trace::Metric::TlbMissesPerKi);
    auto bursts = region_burst_count(result, region.id);
    for (std::size_t f = 0; f < result.frames.size(); ++f) {
      out += std::to_string(region.id + 1) + "," + std::to_string(f) + "," +
             result.frames[f].label() + "," + format_double(ipc[f], 5) + "," +
             format_double(instr_mean[f], 1) + "," +
             format_double(instr_total[f], 1) + "," +
             format_double(duration[f], 6) + "," + format_double(l1[f], 5) +
             "," + format_double(l2[f], 5) + "," + format_double(tlb[f], 5) +
             "," + std::to_string(bursts[f]) + "\n";
    }
  }
  return out;
}

}  // namespace perftrack::tracking
