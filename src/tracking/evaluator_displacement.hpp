#pragma once
// Displacement evaluator (paper §3.1, Fig. 3).
//
// Cross-classifies every clustered burst of frame A into the clusters of
// frame B (nearest neighbour in the common scale-normalised space) and
// vice versa. Cell (i, j) of the A->B matrix is the fraction of A_i's
// bursts whose nearest counterpart belongs to B_j. Short displacements
// dominate when behaviour is stable; splits appear as one row distributing
// over several columns.

#include "cluster/frame.hpp"
#include "tracking/correlation.hpp"
#include "tracking/scale.hpp"

namespace perftrack::tracking {

struct DisplacementResult {
  CorrelationMatrix a_to_b;  ///< rows: A objects, cols: B objects
  CorrelationMatrix b_to_a;  ///< rows: B objects, cols: A objects
};

/// `outlier_threshold` zeroes cells below it (the paper's 5% rule).
DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const cluster::Frame& frame_b,
                                         const ScaleNormalization& scale,
                                         double outlier_threshold = 0.05);

}  // namespace perftrack::tracking
