#pragma once
// Displacement evaluator (paper §3.1, Fig. 3).
//
// Cross-classifies every clustered burst of frame A into the clusters of
// frame B (nearest neighbour in the common scale-normalised space) and
// vice versa. Cell (i, j) of the A->B matrix is the fraction of A_i's
// bursts whose nearest counterpart belongs to B_j. Short displacements
// dominate when behaviour is stable; splits appear as one row distributing
// over several columns.

#include <memory>
#include <vector>

#include "cluster/frame.hpp"
#include "geom/kdtree.hpp"
#include "tracking/correlation.hpp"
#include "tracking/scale.hpp"

namespace perftrack::tracking {

/// One frame's clustered points in the common scale-normalised space plus
/// the kd-tree over them. An interior frame of a sequence is classified
/// against by both of its adjacent pairs; caching the cloud and tree here
/// (the tracker owns one per frame) builds them once instead of twice.
/// Pinned in memory: the kd-tree references the point storage.
class FrameCloud {
public:
  FrameCloud(const cluster::Frame& frame, const ScaleNormalization& scale);
  FrameCloud(const FrameCloud&) = delete;
  FrameCloud& operator=(const FrameCloud&) = delete;

  const geom::PointSet& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  cluster::ObjectId cluster_of(std::size_t i) const { return cluster_of_[i]; }
  const geom::KdTree& tree() const { return *tree_; }

private:
  geom::PointSet points_;  ///< clustered (non-noise) rows only
  std::vector<cluster::ObjectId> cluster_of_;
  std::unique_ptr<geom::KdTree> tree_;
};

struct DisplacementResult {
  CorrelationMatrix a_to_b;  ///< rows: A objects, cols: B objects
  CorrelationMatrix b_to_a;  ///< rows: B objects, cols: A objects
};

/// `outlier_threshold` zeroes cells below it (the paper's 5% rule).
DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const cluster::Frame& frame_b,
                                         const ScaleNormalization& scale,
                                         double outlier_threshold = 0.05);

/// As above but over pre-built per-frame clouds (the tracker's cache); the
/// clouds must have been built from these frames with the sequence scale.
DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const FrameCloud& cloud_a,
                                         const cluster::Frame& frame_b,
                                         const FrameCloud& cloud_b,
                                         double outlier_threshold = 0.05);

}  // namespace perftrack::tracking
