#pragma once
// Displacement evaluator (paper §3.1, Fig. 3).
//
// Cross-classifies every clustered burst of frame A into the clusters of
// frame B (nearest neighbour in the common scale-normalised space) and
// vice versa. Cell (i, j) of the A->B matrix is the fraction of A_i's
// bursts whose nearest counterpart belongs to B_j. Short displacements
// dominate when behaviour is stable; splits appear as one row distributing
// over several columns.
//
// Engine: the nearest-neighbour sweep runs against a CSR uniform grid
// (geom::GridNn, expanding cell-ring search) when the cloud is
// low-dimensional, falling back to the kd-tree otherwise — the same
// auto/kd/grid selection grid DBSCAN uses, and like there the two engines
// are byte-identical (both break distance ties on the lowest point
// index). The sweep is chunked over the caller's thread pool with a
// deterministic integer-count fold, so the matrices are bit-identical for
// every thread count, including 1.

#include <memory>
#include <span>
#include <vector>

#include "cluster/frame.hpp"
#include "geom/grid_nn.hpp"
#include "geom/kdtree.hpp"
#include "tracking/correlation.hpp"
#include "tracking/scale.hpp"

namespace perftrack {
class ThreadPool;
}

namespace perftrack::tracking {

/// Nearest-neighbour engine selection for FrameCloud, mirroring
/// cluster::DbscanIndex: kAuto builds the grid when it is applicable
/// (1-3 dimensions, cell table within bounds) and otherwise falls back
/// to the kd-tree; kGrid insists on the grid (throws when it cannot be
/// built); kKdTree pins the old engine (the equivalence baseline).
enum class DisplacementIndex { kAuto, kKdTree, kGrid };

/// One frame's clustered points in the common scale-normalised space plus
/// the nearest-neighbour index over them. An interior frame of a sequence
/// is classified against by both of its adjacent pairs; caching the cloud
/// here (the tracker owns one per frame) builds it once instead of twice.
///
/// v2 layout: normalisation and noise filtering are fused into one pass
/// (ScaleNormalization::apply_clustered — no full-frame intermediate),
/// and the grid engine re-groups the coordinates into cell-ordered
/// per-dimension columns, so a classification sweep reads contiguous
/// memory. Pinned in memory: the kd-tree fallback references `points_`.
class FrameCloud {
public:
  FrameCloud(const cluster::Frame& frame, const ScaleNormalization& scale,
             DisplacementIndex index = DisplacementIndex::kAuto);
  FrameCloud(const FrameCloud&) = delete;
  FrameCloud& operator=(const FrameCloud&) = delete;

  const geom::PointSet& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  cluster::ObjectId cluster_of(std::size_t i) const { return cluster_of_[i]; }
  bool uses_grid() const { return grid_ != nullptr; }

  /// Per-cluster geometry, precomputed for the classification sweep's
  /// cluster-level short-circuit: the rows of each cluster, and the
  /// cluster's axis-aligned bounding box (flattened [cluster * dims + d]).
  /// Clusters with no rows have empty lists and inverted boxes.
  std::size_t cluster_count() const { return cluster_rows_.size(); }
  const std::vector<std::uint32_t>& cluster_rows(std::size_t c) const {
    return cluster_rows_[c];
  }
  const std::vector<double>& cluster_lo() const { return cluster_lo_; }
  const std::vector<double>& cluster_hi() const { return cluster_hi_; }

  /// Index of the clustered row nearest to `query`, ties broken by the
  /// lowest row index — identical for both engines. empty() must be false.
  std::size_t nearest(std::span<const double> query) const {
    return grid_ ? grid_->nearest(query) : tree_->nearest(query);
  }

  /// Warm-started variant: `hint` (a previous answer, or GridNn::kNoHint)
  /// seeds the grid engine's search radius. Purely an accelerator — the
  /// result is identical with or without it, on either engine.
  std::size_t nearest(std::span<const double> query, std::size_t hint) const {
    return grid_ ? grid_->nearest(query, hint) : tree_->nearest(query);
  }

private:
  geom::PointSet points_;  ///< clustered (non-noise) rows only
  std::vector<cluster::ObjectId> cluster_of_;
  std::vector<std::vector<std::uint32_t>> cluster_rows_;
  std::vector<double> cluster_lo_, cluster_hi_;  ///< [cluster * dims + d]
  std::unique_ptr<geom::GridNn> grid_;
  std::unique_ptr<geom::KdTree> tree_;  ///< fallback / pinned engine
};

struct DisplacementResult {
  CorrelationMatrix a_to_b;  ///< rows: A objects, cols: B objects
  CorrelationMatrix b_to_a;  ///< rows: B objects, cols: A objects
};

/// `outlier_threshold` zeroes cells below it (the paper's 5% rule).
/// `pool` (optional) parallelises the two directions and chunks each
/// classification sweep; output is bit-identical for any thread count.
DisplacementResult evaluate_displacement(
    const cluster::Frame& frame_a, const cluster::Frame& frame_b,
    const ScaleNormalization& scale, double outlier_threshold = 0.05,
    ThreadPool* pool = nullptr,
    DisplacementIndex index = DisplacementIndex::kAuto);

/// As above but over pre-built per-frame clouds (the tracker's cache); the
/// clouds must have been built from these frames with the sequence scale.
DisplacementResult evaluate_displacement(const cluster::Frame& frame_a,
                                         const FrameCloud& cloud_a,
                                         const cluster::Frame& frame_b,
                                         const FrameCloud& cloud_b,
                                         double outlier_threshold = 0.05,
                                         ThreadPool* pool = nullptr);

}  // namespace perftrack::tracking
