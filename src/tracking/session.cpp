#include "tracking/session.hpp"

#include <cmath>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/telemetry.hpp"
#include "store/serialize.hpp"
#include "tracking/evaluator_displacement.hpp"

namespace perftrack::tracking {

namespace {

/// Order- and length-sensitive fingerprint of a frame's task sequences,
/// used to bucket the session's star-align memo.
std::uint64_t sequences_fingerprint(
    const std::vector<std::vector<align::Symbol>>& sequences) {
  std::uint64_t h = store::fnv1a64(std::string_view{});
  for (const auto& seq : sequences) {
    const std::uint64_t len = seq.size();
    h = store::fnv1a64(
        std::string_view(reinterpret_cast<const char*>(&len), sizeof(len)),
        h);
    h = store::fnv1a64(
        std::string_view(reinterpret_cast<const char*>(seq.data()),
                         seq.size() * sizeof(align::Symbol)),
        h);
  }
  return h;
}

}  // namespace

SessionConfig::SessionConfig() {
  // The paper's default metric space: Instructions x IPC, instruction axis
  // log-scaled (Fig. 1).
  clustering.projection.metrics = {trace::Metric::Instructions,
                                   trace::Metric::Ipc};
  clustering.log_scale = {true, false};
}

std::vector<std::string> SessionConfig::validate() const {
  std::vector<std::string> problems;
  auto in_unit = [](double v) { return std::isfinite(v) && v >= 0.0 && v <= 1.0; };

  const std::size_t dims = clustering.projection.metrics.size();
  if (dims == 0)
    problems.push_back("clustering.projection.metrics must name at least one axis");
  if (!(std::isfinite(clustering.dbscan.eps) && clustering.dbscan.eps > 0.0))
    problems.push_back("clustering.dbscan.eps must be a positive number");
  if (clustering.dbscan.min_pts == 0)
    problems.push_back("clustering.dbscan.min_pts must be at least 1");
  if (!(std::isfinite(clustering.projection.min_duration) &&
        clustering.projection.min_duration >= 0.0))
    problems.push_back("clustering.projection.min_duration must be >= 0");
  if (!in_unit(clustering.projection.time_coverage))
    problems.push_back("clustering.projection.time_coverage must be in [0, 1]");
  if (!clustering.log_scale.empty() && clustering.log_scale.size() != dims)
    problems.push_back("clustering.log_scale must be empty or match the axis count");
  if (!(std::isfinite(clustering.min_cluster_time_fraction) &&
        clustering.min_cluster_time_fraction >= 0.0 &&
        clustering.min_cluster_time_fraction < 1.0))
    problems.push_back("clustering.min_cluster_time_fraction must be in [0, 1)");
  if (!in_unit(tracking.outlier_threshold))
    problems.push_back("tracking.outlier_threshold must be in [0, 1]");
  if (!in_unit(tracking.spmd_threshold))
    problems.push_back("tracking.spmd_threshold must be in [0, 1]");
  if (!in_unit(tracking.sequence_threshold))
    problems.push_back("tracking.sequence_threshold must be in [0, 1]");
  if (!tracking.log_scale.empty() && tracking.log_scale.size() != dims)
    problems.push_back("tracking.log_scale must be empty or match the axis count");
  if (!in_unit(resilience.max_gap_fraction))
    problems.push_back("resilience.max_gap_fraction must be in [0, 1]");
  if (!cache.directory.empty()) {
    std::error_code ec;
    auto status = std::filesystem::status(cache.directory, ec);
    if (!ec && std::filesystem::exists(status) &&
        !std::filesystem::is_directory(status))
      problems.push_back("cache.directory '" + cache.directory +
                         "' exists but is not a directory");
  }
  return problems;
}

void SessionConfig::validate_or_throw() const {
  std::vector<std::string> problems = validate();
  if (problems.empty()) return;
  std::string what = "invalid session configuration (" +
                     std::to_string(problems.size()) + " problem" +
                     (problems.size() == 1 ? "" : "s") + "):";
  for (const std::string& p : problems) what += "\n  - " + p;
  throw Error(what);
}

TrackingSession::TrackingSession(SessionConfig config)
    : config_(std::move(config)), cache_(config_.cache) {
  config_.validate_or_throw();
}

std::size_t TrackingSession::append_experiment(
    std::shared_ptr<const trace::Trace> trace) {
  PT_REQUIRE(trace != nullptr, "experiment trace must not be null");
  Slot slot;
  slot.label = trace->label();
  slot.trace = std::move(trace);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

std::size_t TrackingSession::append_gap(std::string label,
                                        std::string reason) {
  Slot slot;
  slot.label = std::move(label);
  slot.reason = std::move(reason);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

std::size_t TrackingSession::gap_count() const {
  std::size_t n = 0;
  for (const Slot& slot : slots_)
    if (slot.trace == nullptr) ++n;
  return n;
}

void TrackingSession::cluster_new_slots() {
  PT_SPAN("cluster_experiments");

  // Serial pass in slot order: strict-mode gap errors and failpoint
  // evaluation keep their position-dependent semantics ("@i" poisons the
  // i-th clustered experiment) under any thread count, and cache probes
  // stay single-threaded. Already-attempted slots are memoised and consume
  // no failpoint evaluations.
  std::vector<std::size_t> to_build;
  std::map<std::size_t, std::string> pending_key;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.trace == nullptr) {
      if (!config_.resilience.lenient)
        throw Error("experiment '" + slot.label + "' is a gap (" +
                    slot.reason +
                    "); enable lenient resilience to track across it");
      continue;
    }
    if (slot.attempted) {
      if (slot.frame.has_value()) ++stats_.frames_memoized;
      continue;
    }
    try {
      PT_FAILPOINT("cluster_experiment");
    } catch (const Error& error) {
      if (!config_.resilience.lenient) throw;
      slot.attempted = true;
      slot.reason = error.what();
      continue;
    }
    if (cache_.enabled()) {
      std::string key = store::FrameStore::key_for(*slot.trace,
                                                   config_.clustering);
      if (std::optional<cluster::Frame> cached = cache_.load(key, slot.trace)) {
        slot.frame = std::move(cached);
        slot.attempted = true;
        ++stats_.frames_from_cache;
        continue;
      }
      pending_key.emplace(i, std::move(key));
    }
    to_build.push_back(i);
  }

  if (!to_build.empty()) {
    // One clustering task per fresh experiment; outcomes land in their
    // slot, so the frame sequence is identical for any thread count.
    // Everything a task captures is declared before the pool: its
    // destructor drains every submitted task (see pipeline history).
    struct Outcome {
      std::optional<cluster::Frame> frame;
      std::string error;
      std::exception_ptr rethrow;
    };
    std::vector<Outcome> outcomes(to_build.size());
    const std::vector<const char*> here = obs::current_span_path();
    ThreadPool pool(ThreadPool::resolve(config_.tracking.threads));
    pool.parallel_for(0, to_build.size(), [&](std::size_t t) {
      obs::SpanContext ctx(here);
      const Slot& slot = slots_[to_build[t]];
      try {
        outcomes[t].frame =
            cluster::build_frame(slot.trace, config_.clustering);
      } catch (const Error& error) {
        outcomes[t].error = error.what();
        outcomes[t].rethrow = std::current_exception();
      }
    });

    for (std::size_t t = 0; t < to_build.size(); ++t) {
      Slot& slot = slots_[to_build[t]];
      Outcome& outcome = outcomes[t];
      slot.attempted = true;
      if (outcome.frame.has_value()) {
        slot.frame = std::move(outcome.frame);
        ++stats_.frames_clustered;
        auto key = pending_key.find(to_build[t]);
        if (key != pending_key.end()) cache_.store(key->second, *slot.frame);
        continue;
      }
      slot.reason = std::move(outcome.error);
      slot.rethrow = outcome.rethrow;
      if (!config_.resilience.lenient) {
        if (slot.rethrow) std::rethrow_exception(slot.rethrow);
        throw Error(slot.reason);
      }
    }
  }
  stats_.cache = cache_.stats();
}

TrackingResult TrackingSession::retrack() {
  PT_SPAN("session_retrack");
  PT_REQUIRE(slots_.size() >= 2, "tracking needs at least two experiments");
  PT_COUNTER("experiments", static_cast<double>(slots_.size()));

  cluster_new_slots();

  // Fold the memoised outcomes in slot order: surviving frames, gaps and
  // error precedence all match a cold batch run.
  std::vector<std::size_t> live;
  std::vector<ExperimentGap> gaps;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.frame.has_value()) {
      live.push_back(i);
      continue;
    }
    if (slot.trace != nullptr) {
      // A memoised clustering failure; strict mode was rethrown above.
      PT_LOG(Warn) << "experiment '" << slot.label
                   << "' failed to cluster, tracking across the gap: "
                   << slot.reason;
    }
    gaps.push_back({i, slot.label, slot.reason});
  }

  if (!gaps.empty()) {
    double gap_fraction = static_cast<double>(gaps.size()) /
                          static_cast<double>(slots_.size());
    if (gap_fraction > config_.resilience.max_gap_fraction)
      throw Error("gap budget exhausted: " + std::to_string(gaps.size()) +
                  " of " + std::to_string(slots_.size()) +
                  " experiments failed (limit " +
                  std::to_string(static_cast<int>(
                      config_.resilience.max_gap_fraction * 100.0)) +
                  "%)");
    if (live.size() < 2)
      throw Error("tracking needs at least two surviving experiments (" +
                  std::to_string(gaps.size()) + " of " +
                  std::to_string(slots_.size()) + " are gaps)");
    PT_COUNTER("experiment_gaps", static_cast<double>(gaps.size()));
  }
  PT_REQUIRE(live.size() >= 2, "tracking needs at least two experiments");

  TrackingResult result;
  {
    PT_SPAN("track_frames");
    const TrackingParams& params = config_.tracking;
    ThreadPool pool(ThreadPool::resolve(params.threads));
    PT_GAUGE("threads", static_cast<double>(pool.thread_count()));

    std::vector<cluster::Frame> frames;
    frames.reserve(live.size());
    for (std::size_t i : live) frames.push_back(*slots_[i].frame);

    ScaleNormalization scale;
    {
      PT_SPAN("scale_fit");
      scale = ScaleNormalization::fit(frames,
                                      tracking_log_scale(params, frames[0]));
    }

    // The memoised pair relations were computed under pair_scale_; a scale
    // moved by the appended frames invalidates every one of them (the
    // price of bit-identity with the batch path). Frames and alignments
    // stay valid — only the cross-experiment normalisation changed.
    if (!pair_scale_.has_value() || !(*pair_scale_ == scale)) {
      if (!pair_memo_.empty()) {
        ++stats_.scale_invalidations;
        PT_LOG(Debug) << "session: scale moved, re-tracking all "
                      << pair_memo_.size() << " memoised pairs";
      }
      pair_memo_.clear();
      pair_scale_ = scale;
    }

    const std::size_t pair_count = live.size() - 1;
    std::vector<std::size_t> missing;
    for (std::size_t p = 0; p < pair_count; ++p)
      if (!pair_memo_.count({live[p], live[p + 1]})) missing.push_back(p);

    // Per-frame artefacts: alignments are memoised per slot (they depend
    // only on the frame and the fixed alignment scores); displacement
    // clouds depend on the scale, so they are rebuilt, but only for the
    // frames the missing pairs actually touch.
    std::vector<char> needs_cloud(live.size(), 0);
    for (std::size_t p : missing) needs_cloud[p] = needs_cloud[p + 1] = 1;
    std::vector<std::unique_ptr<FrameCloud>> clouds(live.size());
    {
      PT_SPAN("frame_alignments");

      // Serial memo probe in slot order: slots whose task sequences were
      // already star-aligned (any earlier retrack, any slot) share the
      // profile; only genuinely new sequence sets are built, in parallel
      // below, then published to the memo serially in slot order.
      struct Build {
        std::size_t f;
        std::uint64_t fp;
      };
      std::vector<Build> to_align;
      std::vector<std::pair<std::size_t, std::size_t>> duplicate;  // f, build
      std::uint64_t memoized_now = 0;
      for (std::size_t f = 0; f < live.size(); ++f) {
        Slot& slot = slots_[live[f]];
        if (slot.alignment != nullptr) continue;
        const auto& sequences = slot.frame->task_sequences();
        const std::uint64_t fp = sequences_fingerprint(sequences);
        auto bucket = alignment_memo_.find(fp);
        if (bucket != alignment_memo_.end()) {
          bool hit = false;
          for (const AlignmentMemoEntry& entry : bucket->second)
            if (entry.sequences == sequences) {
              slot.alignment = entry.alignment;
              ++stats_.alignments_memoized;
              ++memoized_now;
              hit = true;
              break;
            }
          if (hit) continue;
        }
        bool pending = false;
        for (std::size_t u = 0; u < to_align.size() && !pending; ++u)
          if (to_align[u].fp == fp &&
              slots_[live[to_align[u].f]].frame->task_sequences() ==
                  sequences) {
            duplicate.emplace_back(f, u);
            pending = true;
          }
        if (!pending) to_align.push_back({f, fp});
      }

      std::vector<std::shared_ptr<const FrameAlignment>> built(
          to_align.size());
      const std::vector<const char*> here = obs::current_span_path();
      pool.parallel_for(0, to_align.size() + live.size(), [&](std::size_t t) {
        obs::SpanContext ctx(here);
        if (t < to_align.size()) {
          const Slot& slot = slots_[live[to_align[t].f]];
          built[t] = std::make_shared<FrameAlignment>(
              *slot.frame, params.alignment_scores, params.alignment_engine,
              &pool);
        } else {
          const std::size_t f = t - to_align.size();
          if (params.use_displacement && needs_cloud[f])
            clouds[f] = std::make_unique<FrameCloud>(
                frames[f], scale, params.displacement_index);
        }
      });

      for (std::size_t u = 0; u < to_align.size(); ++u) {
        Slot& slot = slots_[live[to_align[u].f]];
        slot.alignment = built[u];
        alignment_memo_[to_align[u].fp].push_back(
            {slot.frame->task_sequences(), built[u]});
        ++stats_.alignments_computed;
      }
      for (const auto& [f, u] : duplicate) {
        slots_[live[f]].alignment = built[u];
        ++stats_.alignments_memoized;
        ++memoized_now;
      }
      PT_COUNTER("session_alignments_computed",
                 static_cast<double>(to_align.size()));
      PT_COUNTER("session_alignments_memoized",
                 static_cast<double>(memoized_now));
    }

    // Track only the missing pairs; results land in their slot, so the
    // sequence is identical for any thread count.
    std::vector<PairTracking> fresh(missing.size());
    {
      const std::vector<const char*> here = obs::current_span_path();
      pool.parallel_for(0, missing.size(), [&](std::size_t m) {
        obs::SpanContext ctx(here);
        const std::size_t p = missing[m];
        fresh[m] = track_pair(frames[p], *slots_[live[p]].alignment,
                              frames[p + 1], *slots_[live[p + 1]].alignment,
                              scale, params, clouds[p].get(),
                              clouds[p + 1].get(), &pool);
        PT_LOG(Debug) << "pair " << p << ": " << fresh[m].relations.size()
                      << " relations";
      });
    }
    for (std::size_t m = 0; m < missing.size(); ++m)
      pair_memo_[{live[missing[m]], live[missing[m] + 1]}] =
          std::move(fresh[m]);
    stats_.pairs_tracked += missing.size();
    stats_.pairs_memoized += pair_count - missing.size();
    PT_COUNTER("session_pairs_tracked", static_cast<double>(missing.size()));
    PT_COUNTER("session_pairs_memoized",
               static_cast<double>(pair_count - missing.size()));

    std::vector<PairTracking> pairs;
    pairs.reserve(pair_count);
    for (std::size_t p = 0; p < pair_count; ++p)
      pairs.push_back(pair_memo_.at({live[p], live[p + 1]}));

    result = chain_tracking(std::move(frames), std::move(scale),
                            std::move(pairs));
  }
  result.gaps = std::move(gaps);
  return result;
}

}  // namespace perftrack::tracking
