#pragma once
// SPMD-simultaneity evaluator (paper §3.2, Fig. 4).
//
// In an SPMD application every process executes the same phase at the same
// time; if two *different* clusters occupy the same column of the frame's
// global per-task sequence alignment, they are the same code region whose
// performance diverged across processes. The evaluator reports a square
// per-frame matrix: cell (i, j) is the fraction of the columns featuring
// either cluster in which both appear in different tasks.

#include "cluster/frame.hpp"
#include "tracking/correlation.hpp"
#include "tracking/frame_alignment.hpp"

namespace perftrack::tracking {

/// Symmetric object_count x object_count matrix of co-occurrence
/// probabilities. Cells below `outlier_threshold` are zeroed; the diagonal
/// is zero (an object is trivially simultaneous with itself).
CorrelationMatrix evaluate_spmd(const cluster::Frame& frame,
                                const FrameAlignment& alignment,
                                double outlier_threshold = 0.05);

}  // namespace perftrack::tracking
