#include "tracking/trends.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace perftrack::tracking {

namespace {

/// Apply `fn(burst)` over every burst of the region in every frame.
template <typename Fn>
void for_each_region_burst(const TrackingResult& result, int region_id,
                           Fn&& fn) {
  const TrackedRegion& region = result.region(region_id);
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    const cluster::Frame& frame = result.frames[f];
    const auto& bursts = frame.source().bursts();
    for (ObjectId object : region.members[f]) {
      for (std::uint32_t row : frame.object(object).rows) {
        fn(f, bursts[frame.projection().burst_index[row]]);
      }
    }
  }
}

}  // namespace

std::vector<double> region_metric_mean(const TrackingResult& result,
                                       int region_id, trace::Metric metric) {
  std::vector<double> sum(result.frames.size(), 0.0);
  std::vector<std::size_t> count(result.frames.size(), 0);
  for_each_region_burst(result, region_id,
                        [&](std::size_t f, const trace::Burst& b) {
                          sum[f] += trace::evaluate_metric(b, metric);
                          ++count[f];
                        });
  for (std::size_t f = 0; f < sum.size(); ++f)
    if (count[f] > 0) sum[f] /= static_cast<double>(count[f]);
  return sum;
}

std::vector<double> region_counter_total(const TrackingResult& result,
                                         int region_id,
                                         trace::Counter counter) {
  std::vector<double> total(result.frames.size(), 0.0);
  for_each_region_burst(result, region_id,
                        [&](std::size_t f, const trace::Burst& b) {
                          total[f] += b.counters.get(counter);
                        });
  return total;
}

std::vector<double> region_duration_total(const TrackingResult& result,
                                          int region_id) {
  std::vector<double> total(result.frames.size(), 0.0);
  for_each_region_burst(result, region_id,
                        [&](std::size_t f, const trace::Burst& b) {
                          total[f] += b.duration;
                        });
  return total;
}

std::vector<std::size_t> region_burst_count(const TrackingResult& result,
                                            int region_id) {
  std::vector<std::size_t> count(result.frames.size(), 0);
  for_each_region_burst(
      result, region_id,
      [&](std::size_t f, const trace::Burst&) { ++count[f]; });
  return count;
}

std::vector<double> relative_to_first(const std::vector<double>& series) {
  std::vector<double> out(series.size(), 0.0);
  if (series.empty() || series.front() == 0.0) return out;
  for (std::size_t i = 0; i < series.size(); ++i)
    out[i] = series[i] / series.front();
  return out;
}

std::vector<double> relative_to_max(const std::vector<double>& series) {
  std::vector<double> out(series.size(), 0.0);
  double peak = 0.0;
  for (double v : series) peak = std::max(peak, v);
  if (peak == 0.0) return out;
  for (std::size_t i = 0; i < series.size(); ++i) out[i] = series[i] / peak;
  return out;
}

double max_relative_variation(const std::vector<double>& series) {
  if (series.empty() || series.front() == 0.0) return 0.0;
  double worst = 0.0;
  for (double v : series)
    worst = std::max(worst, std::fabs(v / series.front() - 1.0));
  return worst;
}

}  // namespace perftrack::tracking
