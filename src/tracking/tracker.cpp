#include "tracking/tracker.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/telemetry.hpp"
#include "trace/metrics.hpp"

namespace perftrack::tracking {

std::size_t TrackedRegion::frames_present() const {
  std::size_t n = 0;
  for (const auto& frame_members : members)
    if (!frame_members.empty()) ++n;
  return n;
}

double TrackingResult::effective_coverage() const {
  if (frames.empty()) return 0.0;
  return coverage * static_cast<double>(frames.size()) /
         static_cast<double>(sequence_length());
}

const TrackedRegion& TrackingResult::region(int id) const {
  PT_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < regions.size(),
             "region id out of range");
  return regions[static_cast<std::size_t>(id)];
}

namespace {

/// Union-find over (frame, object) nodes across the whole sequence.
class SequenceComponents {
public:
  explicit SequenceComponents(const std::vector<cluster::Frame>& frames) {
    offsets_.reserve(frames.size());
    std::size_t total = 0;
    for (const auto& f : frames) {
      offsets_.push_back(total);
      total += f.object_count();
    }
    parent_.resize(total);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t node(std::size_t frame, ObjectId object) const {
    return offsets_[frame] + static_cast<std::size_t>(object);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t x, std::size_t y) { parent_[find(x)] = find(y); }

private:
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<bool> tracking_log_scale(const TrackingParams& params,
                                     const cluster::Frame& first) {
  if (!params.log_scale.empty()) return params.log_scale;
  const auto& metrics = first.projection().metrics;
  std::vector<bool> log_scale(metrics.size());
  for (std::size_t d = 0; d < metrics.size(); ++d)
    log_scale[d] = trace::metric_scales_with_tasks(metrics[d]);
  return log_scale;
}

TrackingResult track_frames(std::vector<cluster::Frame> frames,
                            const TrackingParams& params) {
  PT_SPAN("track_frames");
  PT_REQUIRE(frames.size() >= 2, "tracking needs at least two frames");

  TrackingResult result;
  result.frames = std::move(frames);
  const std::size_t frame_count = result.frames.size();

  ThreadPool pool(ThreadPool::resolve(params.threads));
  PT_GAUGE("threads", static_cast<double>(pool.thread_count()));

  {
    PT_SPAN("scale_fit");
    result.scale = ScaleNormalization::fit(
        result.frames, tracking_log_scale(params, result.frames[0]));
  }

  // Per-frame artefacts, computed once per frame and shared by both of the
  // frame's adjacent pairs: the sequence alignment, and (for the
  // displacement evaluator) the normalised clustered cloud + kd-tree.
  // Frames are independent, so this stage is one task per frame.
  std::vector<std::optional<FrameAlignment>> alignments(frame_count);
  std::vector<std::unique_ptr<FrameCloud>> clouds(frame_count);
  {
    PT_SPAN("frame_alignments");
    const std::vector<const char*> here = obs::current_span_path();
    pool.parallel_for(0, frame_count, [&](std::size_t f) {
      obs::SpanContext ctx(here);
      alignments[f].emplace(result.frames[f], params.alignment_scores,
                            params.alignment_engine, &pool);
      if (params.use_displacement)
        clouds[f] = std::make_unique<FrameCloud>(result.frames[f],
                                                 result.scale,
                                                 params.displacement_index);
    });
  }

  // Pairwise tracking: adjacent pairs are independent given the per-frame
  // cache, one task per pair. Results land in their slot, so the sequence
  // is identical for any thread count.
  result.pairs.resize(frame_count - 1);
  {
    const std::vector<const char*> here = obs::current_span_path();
    pool.parallel_for(0, frame_count - 1, [&](std::size_t p) {
      obs::SpanContext ctx(here);
      result.pairs[p] = track_pair(result.frames[p], *alignments[p],
                                   result.frames[p + 1], *alignments[p + 1],
                                   result.scale, params, clouds[p].get(),
                                   clouds[p + 1].get(), &pool);
      PT_LOG(Debug) << "pair " << p << ": "
                    << result.pairs[p].relations.size() << " relations";
    });
  }

  return chain_tracking(std::move(result.frames), std::move(result.scale),
                        std::move(result.pairs));
}

TrackingResult chain_tracking(std::vector<cluster::Frame> frames,
                              ScaleNormalization scale,
                              std::vector<PairTracking> pairs) {
  PT_REQUIRE(frames.size() >= 2, "tracking needs at least two frames");
  PT_REQUIRE(pairs.size() + 1 == frames.size(),
             "need exactly one pair tracking per adjacent frame pair");

  TrackingResult result;
  result.frames = std::move(frames);
  result.scale = std::move(scale);
  result.pairs = std::move(pairs);
  const std::size_t frame_count = result.frames.size();

  // Chain relations into whole-sequence regions.
  PT_SPAN("chain_regions");
  SequenceComponents components(result.frames);
  for (std::size_t p = 0; p + 1 < frame_count; ++p) {
    for (const Relation& rel : result.pairs[p].relations) {
      std::size_t anchor = components.node(p, *rel.left.begin());
      for (ObjectId a : rel.left)
        components.unite(anchor, components.node(p, a));
      for (ObjectId b : rel.right)
        components.unite(anchor, components.node(p + 1, b));
    }
  }

  std::map<std::size_t, TrackedRegion> by_root;
  for (std::size_t f = 0; f < frame_count; ++f) {
    for (std::size_t o = 0; o < result.frames[f].object_count(); ++o) {
      auto id = static_cast<ObjectId>(o);
      std::size_t root = components.find(components.node(f, id));
      TrackedRegion& region = by_root[root];
      if (region.members.empty()) region.members.resize(frame_count);
      region.members[f].insert(id);
      region.total_duration += result.frames[f].object(id).total_duration;
    }
  }

  result.regions.reserve(by_root.size());
  for (auto& [root, region] : by_root) {
    region.complete = region.frames_present() == frame_count;
    result.regions.push_back(std::move(region));
  }
  std::sort(result.regions.begin(), result.regions.end(),
            [](const TrackedRegion& x, const TrackedRegion& y) {
              if (x.complete != y.complete) return x.complete;
              return x.total_duration > y.total_duration;
            });
  for (std::size_t r = 0; r < result.regions.size(); ++r)
    result.regions[r].id = static_cast<int>(r);

  result.complete_count = 0;
  for (const TrackedRegion& region : result.regions)
    if (region.complete) ++result.complete_count;

  std::size_t min_objects = result.frames[0].object_count();
  for (const auto& f : result.frames)
    min_objects = std::min(min_objects, f.object_count());
  result.coverage = min_objects == 0
                        ? 0.0
                        : static_cast<double>(result.complete_count) /
                              static_cast<double>(min_objects);

  // Frame-object -> region renaming (for recoloured output, Fig. 6).
  result.renaming.resize(frame_count);
  for (std::size_t f = 0; f < frame_count; ++f)
    result.renaming[f].assign(result.frames[f].object_count(), -1);
  for (const TrackedRegion& region : result.regions)
    for (std::size_t f = 0; f < frame_count; ++f)
      for (ObjectId o : region.members[f])
        result.renaming[f][static_cast<std::size_t>(o)] = region.id;

  if (obs::enabled()) {
    PT_COUNTER("regions_total", static_cast<double>(result.regions.size()));
    PT_COUNTER("regions_complete",
               static_cast<double>(result.complete_count));
    PT_GAUGE("coverage", result.coverage);
  }
  return result;
}

}  // namespace perftrack::tracking
