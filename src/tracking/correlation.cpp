#include "tracking/correlation.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace perftrack::tracking {

void CorrelationMatrix::threshold(double min_value) {
  for (double& v : values_)
    if (v < min_value) v = 0.0;
}

void CorrelationMatrix::normalize_rows() {
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += at(i, j);
    if (sum <= 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) set(i, j, at(i, j) / sum);
  }
}

std::ptrdiff_t CorrelationMatrix::row_argmax(std::size_t i) const {
  std::ptrdiff_t best = -1;
  double best_value = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    if (at(i, j) > best_value) {
      best_value = at(i, j);
      best = static_cast<std::ptrdiff_t>(j);
    }
  }
  return best;
}

std::string CorrelationMatrix::to_text(const std::string& row_prefix,
                                       const std::string& col_prefix) const {
  // Column labels are 1-based to match the paper's numbering.
  std::vector<std::size_t> widths(cols_, 0);
  std::vector<std::string> headers(cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    headers[j] = col_prefix + std::to_string(j + 1);
    widths[j] = headers[j].size();
  }
  std::vector<std::vector<std::string>> cells(rows_,
                                              std::vector<std::string>(cols_));
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      double v = at(i, j);
      cells[i][j] = v == 0.0 ? "." : format_double(v * 100.0, 0) + "%";
      widths[j] = std::max(widths[j], cells[i][j].size());
    }
  }
  std::size_t row_label_width = row_prefix.size() + std::to_string(rows_).size();

  std::string out(row_label_width + 2, ' ');
  for (std::size_t j = 0; j < cols_; ++j) {
    out += std::string(widths[j] - headers[j].size(), ' ') + headers[j];
    out += "  ";
  }
  out += '\n';
  for (std::size_t i = 0; i < rows_; ++i) {
    std::string label = row_prefix + std::to_string(i + 1);
    out += label + std::string(row_label_width - label.size() + 2, ' ');
    for (std::size_t j = 0; j < cols_; ++j) {
      out += std::string(widths[j] - cells[i][j].size(), ' ') + cells[i][j];
      out += "  ";
    }
    out += '\n';
  }
  return out;
}

}  // namespace perftrack::tracking
