#pragma once
// Performance prediction from tracked trends (the paper's §6 future work:
// "build predictive models able to foresee the performance of experiments
// beyond the sample space").
//
// Once a region is tracked across a parametric sweep, its per-frame metric
// series is a function of the scenario parameter (task count, problem
// scale, block size, ...). TrendModel fits the two shapes that cover the
// laws seen in practice — linear (y = a + b·x) and power (y = a·x^b, i.e.
// linear in log-log, covering strong scaling and capacity effects) — and
// fit_trend() picks the better one by R². forecast_regions() applies this
// per tracked region to extrapolate a metric to an unseen scenario value.

#include <span>
#include <string>
#include <vector>

#include "tracking/tracker.hpp"
#include "trace/metrics.hpp"

namespace perftrack::tracking {

struct TrendModel {
  enum class Kind { Linear, PowerLaw };

  Kind kind = Kind::Linear;
  /// Linear: y = a + b x. PowerLaw: y = a * x^b.
  double a = 0.0;
  double b = 0.0;
  /// Coefficient of determination on the fitted points (1 = perfect).
  double r_squared = 0.0;

  double predict(double x) const;

  /// "y = 3.2e6 * x^-0.98 (R2 0.999)" etc.
  std::string describe() const;
};

/// Least-squares line fit; needs >= 2 points.
TrendModel fit_linear(std::span<const double> x, std::span<const double> y);

/// Power-law fit (least squares in log-log space); requires strictly
/// positive x and y.
TrendModel fit_power_law(std::span<const double> x,
                         std::span<const double> y);

/// Fit both shapes (power law only where applicable) and return the one
/// with the higher R².
TrendModel fit_trend(std::span<const double> x, std::span<const double> y);

struct RegionForecast {
  int region_id = 0;
  TrendModel model;
  double predicted = 0.0;
};

/// Fit each complete region's mean `metric` against the per-frame scenario
/// values `x` (one per frame) and predict the value at `x_future`.
std::vector<RegionForecast> forecast_regions(const TrackingResult& result,
                                             std::span<const double> x,
                                             trace::Metric metric,
                                             double x_future);

}  // namespace perftrack::tracking
