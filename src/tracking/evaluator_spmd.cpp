#include "tracking/evaluator_spmd.hpp"

#include <algorithm>
#include <set>

#include "common/failpoint.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

CorrelationMatrix evaluate_spmd(const cluster::Frame& frame,
                                const FrameAlignment& alignment,
                                double outlier_threshold) {
  PT_SPAN("evaluator_spmd");
  PT_FAILPOINT("evaluator_spmd");
  const std::size_t n = frame.object_count();
  CorrelationMatrix m(n, n);
  const align::MultipleAlignment& msa = alignment.alignment();

  std::vector<std::size_t> occurrences(n, 0);
  std::vector<std::vector<std::size_t>> pair_count(
      n, std::vector<std::size_t>(n, 0));

  for (std::size_t c = 0; c < msa.column_count(); ++c) {
    std::set<align::Symbol> present;
    for (std::size_t s = 0; s < msa.sequence_count(); ++s) {
      align::Symbol sym = msa.row(s)[c];
      if (sym != align::kGap) present.insert(sym);
    }
    for (align::Symbol sym : present)
      if (sym >= 0 && static_cast<std::size_t>(sym) < n)
        ++occurrences[static_cast<std::size_t>(sym)];
    for (auto it = present.begin(); it != present.end(); ++it) {
      for (auto jt = std::next(it); jt != present.end(); ++jt) {
        auto i = static_cast<std::size_t>(*it);
        auto j = static_cast<std::size_t>(*jt);
        if (i < n && j < n) {
          ++pair_count[i][j];
          ++pair_count[j][i];
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Columns featuring either object; co-occurrence relative to the
      // rarer one so a small split still registers strongly.
      std::size_t denom = std::min(occurrences[i], occurrences[j]);
      if (denom == 0) continue;
      m.set(i, j,
            static_cast<double>(pair_count[i][j]) /
                static_cast<double>(denom));
    }
  }
  m.threshold(outlier_threshold);
  if (obs::enabled()) {
    double pairs = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (m.at(i, j) > 0.0) ++pairs;
    PT_COUNTER("spmd_simultaneous_pairs", pairs);
  }
  return m;
}

}  // namespace perftrack::tracking
