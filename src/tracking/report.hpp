#pragma once
// Report rendering: trend charts, tracked scatter plots, relation listings.
//
// The paper communicates its results as trend-line charts (Figs. 7, 10-12),
// recoloured scatter sequences (Fig. 6) and relation/correlation listings
// (Fig. 3, Table 1). These helpers render all three as terminal text; CSV
// variants feed external plotting.

#include <string>
#include <vector>

#include "common/table.hpp"
#include "tracking/tracker.hpp"
#include "tracking/trends.hpp"

namespace perftrack::tracking {

/// One labelled series of a trend chart.
struct TrendSeries {
  std::string label;
  std::vector<double> values;  ///< one value per frame
};

/// ASCII line chart: one column per frame, one glyph per series
/// (Fig. 7-style). Y range is derived from the data unless fixed.
struct TrendChartOptions {
  int width = 72;
  int height = 16;
  double y_min = __builtin_nan("");
  double y_max = __builtin_nan("");
  std::string y_label;
};

std::string trend_chart(const std::vector<TrendSeries>& series,
                        const std::vector<std::string>& frame_labels,
                        const TrendChartOptions& options = {});

/// Table of one metric's per-frame means for every complete region.
Table trend_table(const TrackingResult& result, trace::Metric metric);

/// The tracked sequence as recoloured ASCII scatter plots on common axes
/// (Fig. 6): every region keeps its number along the whole sequence.
std::string tracked_scatters(const TrackingResult& result, int width = 72,
                             int height = 18);

/// Human-readable listing of every pair's relations and the final regions.
std::string describe_tracking(const TrackingResult& result);

/// CSV with one row per (region, frame) and the standard metric columns.
std::string trends_csv(const TrackingResult& result);

}  // namespace perftrack::tracking
