#pragma once
// Cross-experiment scale normalisation (paper §2, Fig. 1c).
//
// Frames from different experiments live on incomparable scales: doubling
// the process count halves per-task instruction counts without any change
// of behaviour. Before tracking, metrics that are correlated with the
// process count (Instructions, Cycles, Duration) are weighted by the
// number of tasks — turning per-task totals into application totals — and
// every axis is then min-max adjusted over ALL experiments of the sequence,
// so displacements measured by the tracking evaluators reflect behavioural
// change, not scale change.

#include <span>
#include <vector>

#include "cluster/frame.hpp"
#include "geom/pointset.hpp"

namespace perftrack::tracking {

class ScaleNormalization {
public:
  /// Fit over every frame of the sequence. `log_scale[d]` applies log10 to
  /// dimension d before the min-max step (instruction-like axes span
  /// decades); empty = none. All frames must share the same metric axes.
  /// `task_weighting` disables the per-task-total weighting when false
  /// (used by the normalisation ablation bench).
  static ScaleNormalization fit(std::span<const cluster::Frame> frames,
                                const std::vector<bool>& log_scale = {},
                                bool task_weighting = true);

  /// Normalised coordinates for every projection row of `frame`
  /// (same row indexing as frame.projection()).
  geom::PointSet apply(const cluster::Frame& frame) const;

  /// Normalised coordinates of the clustered (non-noise) rows only, with
  /// `cluster_of` filled with the matching labels (same order as the
  /// returned rows). One pass, no full-frame intermediate — the noise
  /// filter every tracking consumer applied after apply() is fused in.
  geom::PointSet apply_clustered(
      const cluster::Frame& frame,
      std::vector<cluster::ObjectId>& cluster_of) const;

  /// Normalise one raw coordinate vector from a frame with `num_tasks`.
  std::vector<double> apply_one(std::span<const double> coords,
                                std::uint32_t num_tasks) const;

  std::size_t dims() const { return lo_.size(); }

  /// True if dimension d is weighted by the task count.
  bool task_weighted(std::size_t d) const { return weighted_[d]; }

  /// Two normalisations are equal iff they map every coordinate
  /// identically. The session engine compares the freshly fitted scale
  /// against the one its memoised pair relations were computed under: any
  /// difference (an appended frame extended a min/max range) invalidates
  /// them, which is what keeps incremental retracks bit-identical to a
  /// cold batch run.
  friend bool operator==(const ScaleNormalization&,
                         const ScaleNormalization&) = default;

private:
  std::vector<trace::Metric> metrics_;
  std::vector<bool> weighted_;
  std::vector<bool> log_;
  std::vector<double> lo_, hi_;
};

}  // namespace perftrack::tracking
