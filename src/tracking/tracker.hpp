#pragma once
// Whole-sequence tracking (paper §3.5).
//
// Runs the pair combiner over every consecutive frame pair and chains the
// relations into tracked regions: sets of objects, one (or a group) per
// frame, that are the same behavioural entity along the whole sequence.
// Regions present in every frame are "complete"; the coverage score is
// complete regions / the maximum number of identifiable objects (the
// smallest per-frame object count — a pairwise relation count can never
// exceed min(n, m), so this is the best any tracker could do).

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cluster/frame.hpp"
#include "tracking/combiner.hpp"
#include "tracking/scale.hpp"

namespace perftrack::tracking {

/// A sequence slot whose experiment failed to load or cluster. The frames
/// around a gap are paired directly (the gap is bridged, not interpolated),
/// and every report renders the gap so a degraded run is never mistaken
/// for a shorter healthy one.
struct ExperimentGap {
  std::size_t slot = 0;  ///< position in the full experiment sequence
  std::string label;     ///< experiment label or file path
  std::string reason;    ///< what failed (exception message)
};

struct TrackedRegion {
  /// Dense region index; display numbering is id + 1.
  int id = 0;

  /// Objects of this region in each frame (empty set = not present there).
  std::vector<std::set<ObjectId>> members;

  /// Present in every frame of the sequence.
  bool complete = false;

  /// Sum of the member objects' total burst durations across all frames.
  double total_duration = 0.0;

  std::size_t frames_present() const;
};

struct TrackingResult {
  std::vector<cluster::Frame> frames;
  ScaleNormalization scale;

  /// Pairwise artefacts: pairs[p] tracks frames[p] -> frames[p+1].
  std::vector<PairTracking> pairs;

  /// All regions: complete ones first (ordered by decreasing duration),
  /// then partial ones.
  std::vector<TrackedRegion> regions;

  std::size_t complete_count = 0;

  /// complete_count / min over frames of the object count. Computed over
  /// the *surviving* frames only; see effective_coverage() for the score
  /// that charges gaps.
  double coverage = 0.0;

  /// renaming[f][object] = region id, or -1 for objects in no region.
  std::vector<std::vector<std::int32_t>> renaming;

  /// Sequence slots lost to load/cluster failures (degraded runs only).
  /// Filled by TrackingPipeline; track_frames itself never creates gaps.
  std::vector<ExperimentGap> gaps;

  /// Experiments originally in the sequence: surviving frames plus gaps.
  std::size_t sequence_length() const { return frames.size() + gaps.size(); }

  bool degraded() const { return !gaps.empty(); }

  /// Coverage discounted by the surviving fraction of the sequence, so a
  /// degraded run cannot silently report the score of a shorter healthy
  /// one (Table 2 accounting).
  double effective_coverage() const;

  const TrackedRegion& region(int id) const;
};

/// Track a sequence of >= 2 frames built over the same metric axes.
TrackingResult track_frames(std::vector<cluster::Frame> frames,
                            const TrackingParams& params = {});

/// Per-axis log flags the scale fit uses: params.log_scale when set,
/// otherwise log on every task-weighted axis of `first`'s metric space.
/// Shared by track_frames and the incremental TrackingSession so the two
/// paths cannot drift.
std::vector<bool> tracking_log_scale(const TrackingParams& params,
                                     const cluster::Frame& first);

/// Chain already-computed pair relations into whole-sequence regions:
/// the final stage of track_frames, split out so TrackingSession can feed
/// it memoised pairs. `pairs[p]` must track `frames[p] -> frames[p+1]`
/// and the scale must be the one the pairs were computed under.
TrackingResult chain_tracking(std::vector<cluster::Frame> frames,
                              ScaleNormalization scale,
                              std::vector<PairTracking> pairs);

}  // namespace perftrack::tracking
