#include "tracking/scale.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "trace/metrics.hpp"

namespace perftrack::tracking {

namespace {
constexpr double kLogFloor = 1e-12;

double transform_value(double raw, bool weighted, std::uint32_t num_tasks,
                       bool log_scale) {
  double v = weighted ? raw * static_cast<double>(num_tasks) : raw;
  return log_scale ? std::log10(std::max(v, kLogFloor)) : v;
}
}  // namespace

ScaleNormalization ScaleNormalization::fit(
    std::span<const cluster::Frame> frames,
    const std::vector<bool>& log_scale, bool task_weighting) {
  PT_REQUIRE(!frames.empty(), "need at least one frame to fit scales");
  const auto& metrics = frames.front().projection().metrics;
  for (const cluster::Frame& f : frames)
    PT_REQUIRE(f.projection().metrics == metrics,
               "all frames must share the same metric axes");
  PT_REQUIRE(log_scale.empty() || log_scale.size() == metrics.size(),
             "log_scale length must match dimensionality");

  ScaleNormalization s;
  s.metrics_ = metrics;
  s.weighted_.resize(metrics.size());
  for (std::size_t d = 0; d < metrics.size(); ++d)
    s.weighted_[d] =
        task_weighting && trace::metric_scales_with_tasks(metrics[d]);
  s.log_.assign(metrics.size(), false);
  for (std::size_t d = 0; d < log_scale.size(); ++d) s.log_[d] = log_scale[d];

  s.lo_.assign(metrics.size(), std::numeric_limits<double>::infinity());
  s.hi_.assign(metrics.size(), -std::numeric_limits<double>::infinity());
  for (const cluster::Frame& f : frames) {
    const auto& points = f.projection().points;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (f.labels()[i] == cluster::kNoise) continue;
      auto p = points[i];
      for (std::size_t d = 0; d < metrics.size(); ++d) {
        double v = transform_value(p[d], s.weighted_[d], f.num_tasks(),
                                   s.log_[d]);
        s.lo_[d] = std::min(s.lo_[d], v);
        s.hi_[d] = std::max(s.hi_[d], v);
      }
    }
  }
  for (std::size_t d = 0; d < metrics.size(); ++d) {
    if (s.lo_[d] > s.hi_[d]) {  // no clustered points anywhere
      s.lo_[d] = 0.0;
      s.hi_[d] = 1.0;
    }
  }
  return s;
}

geom::PointSet ScaleNormalization::apply(const cluster::Frame& frame) const {
  const auto& points = frame.projection().points;
  PT_REQUIRE(points.dims() == dims(), "dimensionality mismatch");
  geom::PointSet out(dims());
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    out.add(apply_one(points[i], frame.num_tasks()));
  return out;
}

geom::PointSet ScaleNormalization::apply_clustered(
    const cluster::Frame& frame,
    std::vector<cluster::ObjectId>& cluster_of) const {
  const auto& points = frame.projection().points;
  PT_REQUIRE(points.dims() == dims(), "dimensionality mismatch");
  geom::PointSet out(dims());
  cluster_of.clear();
  std::vector<double> row(dims());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const cluster::ObjectId id = frame.labels()[i];
    if (id == cluster::kNoise) continue;
    auto p = points[i];
    for (std::size_t d = 0; d < dims(); ++d) {
      double v = transform_value(p[d], weighted_[d], frame.num_tasks(),
                                 log_[d]);
      double range = hi_[d] - lo_[d];
      row[d] = range > 0.0 ? (v - lo_[d]) / range : 0.5;
    }
    out.add(row);
    cluster_of.push_back(id);
  }
  return out;
}

std::vector<double> ScaleNormalization::apply_one(
    std::span<const double> coords, std::uint32_t num_tasks) const {
  PT_REQUIRE(coords.size() == dims(), "dimensionality mismatch");
  std::vector<double> out(coords.size());
  for (std::size_t d = 0; d < coords.size(); ++d) {
    double v = transform_value(coords[d], weighted_[d], num_tasks, log_[d]);
    double range = hi_[d] - lo_[d];
    out[d] = range > 0.0 ? (v - lo_[d]) / range : 0.5;
  }
  return out;
}

}  // namespace perftrack::tracking
