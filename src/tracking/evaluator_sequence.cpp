#include "tracking/evaluator_sequence.hpp"

#include <vector>

#include "align/nw.hpp"
#include "common/failpoint.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::tracking {

CorrelationMatrix evaluate_sequence(const cluster::Frame& frame_a,
                                    const FrameAlignment& alignment_a,
                                    const cluster::Frame& frame_b,
                                    const FrameAlignment& alignment_b,
                                    const RelationSet& pivots,
                                    double outlier_threshold,
                                    align::AlignmentEngine engine) {
  PT_SPAN("evaluator_sequence");
  PT_FAILPOINT("evaluator_sequence");
  const std::size_t n = frame_a.object_count();
  const std::size_t m = frame_b.object_count();
  CorrelationMatrix out(n, m);

  const std::vector<align::Symbol>& seq_a = alignment_a.consensus();
  const std::vector<align::Symbol>& seq_b = alignment_b.consensus();
  if (seq_a.empty() || seq_b.empty()) return out;

  // Which symbols participate in any pivot relation.
  std::vector<bool> pivot_left(n, false), pivot_right(m, false);
  for (const Relation& rel : pivots.relations) {
    for (ObjectId a : rel.left)
      if (a >= 0 && static_cast<std::size_t>(a) < n)
        pivot_left[static_cast<std::size_t>(a)] = true;
    for (ObjectId b : rel.right)
      if (b >= 0 && static_cast<std::size_t>(b) < m)
        pivot_right[static_cast<std::size_t>(b)] = true;
  }

  auto score = [&](align::Symbol a, align::Symbol b) -> double {
    bool known_a = a >= 0 && static_cast<std::size_t>(a) < n &&
                   pivot_left[static_cast<std::size_t>(a)];
    bool known_b = b >= 0 && static_cast<std::size_t>(b) < m &&
                   pivot_right[static_cast<std::size_t>(b)];
    if (known_a && known_b)
      return pivots.related(a, b) ? 3.0 : -2.0;
    if (known_a || known_b) return -1.0;  // known against unknown: unlikely
    return 0.5;  // two unknowns: alignable, mild reward
  };
  // The pivot score above never exceeds the pivot-match reward, which makes
  // 3.0 a sound per-cell bound for the banded identity certificate.
  align::PairAlignment pa = align::needleman_wunsch(
      seq_a, seq_b, score, /*gap_penalty=*/-1.0, engine,
      /*max_pair_score=*/3.0);

  std::vector<std::size_t> occurrences(n, 0);
  for (std::size_t c = 0; c < pa.length(); ++c) {
    align::Symbol a = pa.a[c];
    align::Symbol b = pa.b[c];
    if (a == align::kGap || b == align::kGap) continue;
    if (a < 0 || static_cast<std::size_t>(a) >= n) continue;
    if (b < 0 || static_cast<std::size_t>(b) >= m) continue;
    out.add(static_cast<std::size_t>(a), static_cast<std::size_t>(b), 1.0);
    ++occurrences[static_cast<std::size_t>(a)];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (occurrences[i] == 0) continue;
    for (std::size_t j = 0; j < m; ++j)
      out.set(i, j, out.at(i, j) / static_cast<double>(occurrences[i]));
  }
  out.threshold(outlier_threshold);
  if (obs::enabled()) {
    double links = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j)
        if (out.at(i, j) > 0.0) ++links;
    PT_COUNTER("sequence_links", links);
  }
  return out;
}

}  // namespace perftrack::tracking
