#include "tracking/prediction.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "tracking/trends.hpp"

namespace perftrack::tracking {

namespace {

struct LeastSquares {
  double slope = 0.0, intercept = 0.0, r_squared = 0.0;
};

LeastSquares least_squares(std::span<const double> x,
                           std::span<const double> y) {
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LeastSquares fit;
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) {  // all x equal: flat line through the mean
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace

double TrendModel::predict(double x) const {
  switch (kind) {
    case Kind::Linear:
      return a + b * x;
    case Kind::PowerLaw:
      PT_REQUIRE(x > 0.0, "power-law prediction needs positive x");
      return a * std::pow(x, b);
  }
  throw PreconditionError("invalid trend model kind");
}

std::string TrendModel::describe() const {
  std::string formula =
      kind == Kind::Linear
          ? "y = " + format_si(a, 3) + " + " + format_si(b, 3) + " * x"
          : "y = " + format_si(a, 3) + " * x^" + format_double(b, 3);
  return formula + " (R2 " + format_double(r_squared, 4) + ")";
}

TrendModel fit_linear(std::span<const double> x, std::span<const double> y) {
  PT_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  PT_REQUIRE(x.size() >= 2, "fit needs at least two points");
  LeastSquares fit = least_squares(x, y);
  TrendModel model;
  model.kind = TrendModel::Kind::Linear;
  model.a = fit.intercept;
  model.b = fit.slope;
  model.r_squared = fit.r_squared;
  return model;
}

TrendModel fit_power_law(std::span<const double> x,
                         std::span<const double> y) {
  PT_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  PT_REQUIRE(x.size() >= 2, "fit needs at least two points");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PT_REQUIRE(x[i] > 0.0 && y[i] > 0.0,
               "power-law fit needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  LeastSquares fit = least_squares(lx, ly);
  TrendModel model;
  model.kind = TrendModel::Kind::PowerLaw;
  model.a = std::exp(fit.intercept);
  model.b = fit.slope;
  // Report R² in the original space for comparability with the linear fit.
  double sy = 0.0;
  for (double v : y) sy += v;
  double mean = sy / static_cast<double>(y.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double e = y[i] - model.predict(x[i]);
    ss_res += e * e;
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  model.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return model;
}

TrendModel fit_trend(std::span<const double> x, std::span<const double> y) {
  TrendModel best = fit_linear(x, y);
  bool power_applicable = true;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] <= 0.0 || y[i] <= 0.0) power_applicable = false;
  if (power_applicable) {
    TrendModel power = fit_power_law(x, y);
    // Ties (e.g. two samples, where both fits are exact) go to the power
    // law: it stays positive under extrapolation, which is the sane
    // default for positive performance data.
    if (power.r_squared >= best.r_squared - 1e-12) best = power;
  }
  return best;
}

std::vector<RegionForecast> forecast_regions(const TrackingResult& result,
                                             std::span<const double> x,
                                             trace::Metric metric,
                                             double x_future) {
  PT_REQUIRE(x.size() == result.frames.size(),
             "need one scenario value per frame");
  std::vector<RegionForecast> out;
  for (const TrackedRegion& region : result.regions) {
    if (!region.complete) continue;
    std::vector<double> series = region_metric_mean(result, region.id,
                                                    metric);
    RegionForecast forecast;
    forecast.region_id = region.id;
    forecast.model = fit_trend(x, series);
    forecast.predicted = forecast.model.predict(x_future);
    out.push_back(forecast);
  }
  return out;
}

}  // namespace perftrack::tracking
