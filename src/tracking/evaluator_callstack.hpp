#pragma once
// Call-stack evaluator (paper §3.3, Table 1).
//
// Every burst carries the source location where its computation starts.
// Cell (i, j) is the fraction of A_i's bursts whose location also appears
// among B_j's locations. A zero cell proves the two objects cannot be the
// same code — the combiner uses this to prune relations; non-zero cells
// reduce the combinatorial search space but cannot discriminate on their
// own (several code points may behave identically, and one code point may
// behave multimodally).

#include "cluster/frame.hpp"
#include "tracking/correlation.hpp"

namespace perftrack::tracking {

/// A objects x B objects shared-reference fractions. Locations are
/// compared structurally (function/file/line), not by per-trace id.
CorrelationMatrix evaluate_callstack(const cluster::Frame& frame_a,
                                     const cluster::Frame& frame_b,
                                     double outlier_threshold = 0.05);

/// Convenience for the combiner: true if the two objects share at least
/// one source location above the threshold.
bool share_code_reference(const cluster::Frame& frame_a,
                          cluster::ObjectId object_a,
                          const cluster::Frame& frame_b,
                          cluster::ObjectId object_b,
                          double outlier_threshold = 0.05);

}  // namespace perftrack::tracking
