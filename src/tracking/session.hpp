#pragma once
// Incremental tracking sessions (the append-only analyst workflow).
//
// The paper's tool is used one experiment at a time: run a new core count
// or input deck, append its trace, re-examine the tracked sequence. A
// TrackingSession makes that loop cheap by only doing new work on each
// call: per-experiment frames and adjacent-pair tracking relations are
// memoised, so appending experiment N+1 clusters one trace and — when the
// cross-experiment scale is unchanged — tracks one new pair instead of N.
//
//   TrackingSession session(config);
//   session.append_experiment(trace_128);
//   session.append_experiment(trace_256);
//   TrackingResult r1 = session.retrack();
//   session.append_experiment(trace_512);   // one clustering, one new pair
//   TrackingResult r2 = session.retrack();
//
// Equivalence guarantee: retrack() is bit-identical to a cold
// track_frames/TrackingPipeline::run over the same experiments and
// configuration — memoised artefacts are only reused when every input that
// determines them is unchanged. In particular the min-max scale fitted
// over ALL experiments guards the pair memo: an appended frame that
// extends a range invalidates every memoised pair (they are re-tracked
// from the memoised frames, which is still cheap next to re-clustering).
//
// Frames can additionally be cached on disk through the content-addressed
// store (SessionConfig::cache), so even a brand-new session — a fresh
// process re-running an analysis script — skips the clustering of every
// experiment it has seen before. docs/SESSIONS.md covers the full model.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/frame.hpp"
#include "store/frame_store.hpp"
#include "tracking/frame_alignment.hpp"
#include "tracking/tracker.hpp"

namespace perftrack::tracking {

/// Degraded-mode policy for a tracking run.
struct ResilienceParams {
  /// Convert per-experiment clustering failures into gaps instead of
  /// rethrowing. Off = fail-fast.
  bool lenient = false;

  /// Error budget: abort when more than this fraction of the experiment
  /// sequence is gaps (counting append_gap slots). The run also always
  /// needs at least two surviving frames.
  double max_gap_fraction = 0.5;
};

/// The complete, validated configuration of a tracking run — clustering,
/// tracking, resilience and caching in one aggregate (replacing the old
/// grab-bag of pipeline setters). Defaults reproduce the paper's setup:
/// Instructions x IPC metric space with a log-scaled instruction axis.
struct SessionConfig {
  SessionConfig();

  cluster::ClusteringParams clustering;
  TrackingParams tracking;
  ResilienceParams resilience;
  store::StoreConfig cache;

  /// Every problem with this configuration, one message each — empty means
  /// valid. Reports all problems at once rather than failing on the first.
  std::vector<std::string> validate() const;

  /// Throws Error listing every validate() problem; no-op when valid.
  void validate_or_throw() const;
};

/// Work/reuse accounting for one session (cumulative across retracks).
struct SessionStats {
  std::uint64_t frames_clustered = 0;  ///< built by running the pipeline
  std::uint64_t frames_from_cache = 0; ///< loaded from the disk store
  std::uint64_t frames_memoized = 0;   ///< reused in-memory across retracks
  std::uint64_t pairs_tracked = 0;     ///< track_pair executions
  std::uint64_t pairs_memoized = 0;    ///< pair relations reused
  std::uint64_t scale_invalidations = 0;  ///< pair memo flushes (scale moved)
  std::uint64_t alignments_computed = 0;  ///< star alignments actually run
  std::uint64_t alignments_memoized = 0;  ///< profiles shared across slots
  store::StoreStats cache;             ///< disk store counters
};

class TrackingSession {
public:
  /// Validates `config` (throws Error listing every problem). The
  /// configuration is fixed for the session's lifetime — memoised work is
  /// only reusable because nothing that determines it can change.
  explicit TrackingSession(SessionConfig config = {});

  const SessionConfig& config() const { return config_; }

  /// Append one experiment; sequence order is insertion order. Returns the
  /// slot index. No work happens until retrack().
  std::size_t append_experiment(std::shared_ptr<const trace::Trace> trace);

  /// Append a slot for an experiment that already failed upstream (e.g. an
  /// unreadable trace file). Participates in gap accounting and reporting
  /// but contributes no frame.
  std::size_t append_gap(std::string label, std::string reason);

  /// Sequence slots added so far (experiments plus pre-declared gaps).
  std::size_t experiment_count() const { return slots_.size(); }
  std::size_t gap_count() const;

  /// Cluster what is new, track what changed, and chain the full sequence.
  /// Requires >= 2 slots and >= 2 surviving frames after gap handling;
  /// throws Error when the gap budget is exhausted. Bit-identical to a
  /// cold batch run over the same inputs.
  TrackingResult retrack();

  const SessionStats& stats() const { return stats_; }

private:
  struct Slot {
    std::shared_ptr<const trace::Trace> trace;  ///< null for gap slots
    std::string label;
    std::string reason;      ///< gap reason (append_gap or failed build)
    bool attempted = false;  ///< clustering tried (memoised outcome below)
    std::optional<cluster::Frame> frame;
    std::shared_ptr<const FrameAlignment> alignment;  ///< from alignment_memo_
    std::exception_ptr rethrow;  ///< original failure, for strict mode
  };

  void cluster_new_slots();

  SessionConfig config_;
  store::FrameStore cache_;
  std::vector<Slot> slots_;

  /// Pair memo: (left slot, right slot) of consecutive surviving frames ->
  /// relations, valid only under pair_scale_.
  std::map<std::pair<std::size_t, std::size_t>, PairTracking> pair_memo_;
  std::optional<ScaleNormalization> pair_scale_;

  /// Star-align memo: fingerprint of a frame's task sequences -> profiles
  /// computed for that fingerprint (a bucket, probed with an exact sequence
  /// comparison, so hash collisions cannot alias two frames). Slots whose
  /// frames share task sequences — re-appended experiments, symmetric runs
  /// — share one immutable FrameAlignment. Never invalidated: a profile
  /// depends only on the sequences and the session-fixed scores/engine.
  struct AlignmentMemoEntry {
    std::vector<std::vector<align::Symbol>> sequences;
    std::shared_ptr<const FrameAlignment> alignment;
  };
  std::map<std::uint64_t, std::vector<AlignmentMemoEntry>> alignment_memo_;

  SessionStats stats_;
};

}  // namespace perftrack::tracking
