#pragma once
// Self-contained HTML report of a tracking result.
//
// The paper presents the tracked sequence as "a simple animation" of
// recoloured scatter plots (Fig. 6) plus per-region trend charts
// (Fig. 7). This generator emits one dependency-free HTML file with:
//   * an animated scatter view (canvas) stepping through the frames, with
//     tracked regions keeping their colour across the whole sequence,
//   * per-region IPC and instructions trend charts,
//   * the relation listing and coverage summary.
// Open the file in any browser; no network access needed.

#include <string>

#include "tracking/tracker.hpp"

namespace perftrack::tracking {

struct HtmlReportOptions {
  std::string title = "perftrack report";
  /// Subsample cap per (frame, region) for the scatter payload; keeps the
  /// file small for big traces. 0 = keep everything.
  std::size_t max_points_per_object = 400;
};

/// Render the report as a single HTML document.
std::string html_report(const TrackingResult& result,
                        const HtmlReportOptions& options = {});

/// Write html_report() to a file; throws IoError on failure.
void save_html_report(const std::string& path, const TrackingResult& result,
                      const HtmlReportOptions& options = {});

}  // namespace perftrack::tracking
