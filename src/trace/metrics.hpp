#pragma once
// Performance metrics derived from bursts.
//
// The clustering/tracking pipeline works in an arbitrary metric space; a
// Metric names one axis of that space and knows how to evaluate itself on a
// Burst. Metrics also carry the metadata the paper's scale-normalisation
// step needs: whether the metric scales with the number of processes
// (totals such as Instructions shrink per-task as tasks grow and are
// re-weighted by the task count before frames are compared) or not (rates
// such as IPC, which are min-max adjusted over all experiments instead).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace perftrack::trace {

enum class Metric : std::uint8_t {
  Duration = 0,      ///< burst duration, seconds
  Instructions,      ///< raw instruction count
  Ipc,               ///< instructions / cycles
  Cycles,            ///< raw cycle count
  L1MissesPerKi,     ///< L1D misses per 1000 instructions
  L2MissesPerKi,     ///< L2 misses per 1000 instructions
  TlbMissesPerKi,    ///< TLB misses per 1000 instructions
};

inline constexpr std::size_t kMetricCount = 7;

/// Human-readable metric name ("IPC", "Instructions", ...).
std::string_view metric_name(Metric m);

/// Parse a name produced by metric_name; throws ParseError on unknown.
Metric metric_from_name(std::string_view name);

/// True for per-process totals that scale with the process count
/// (instructions, cycles, duration, misses); false for rates (IPC, per-Ki
/// ratios). The tracking scale-normalisation weights the former by the
/// number of tasks so experiments with different core counts are comparable.
bool metric_scales_with_tasks(Metric m);

/// Evaluate a metric on one burst. Rates guard against division by zero
/// (a zero-cycle burst reports IPC 0).
double evaluate_metric(const Burst& burst, Metric m);

/// Evaluate a metric on every burst of a trace, in bursts() order.
std::vector<double> evaluate_metric(const Trace& trace, Metric m);

}  // namespace perftrack::trace
