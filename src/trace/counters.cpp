#include "trace/counters.hpp"

#include "common/error.hpp"

namespace perftrack::trace {

std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::Instructions: return "INSTR";
    case Counter::Cycles: return "CYC";
    case Counter::L1DMisses: return "L1DM";
    case Counter::L2Misses: return "L2M";
    case Counter::TlbMisses: return "TLBM";
  }
  throw PreconditionError("invalid counter enum value");
}

Counter counter_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    auto c = static_cast<Counter>(i);
    if (counter_name(c) == name) return c;
  }
  throw ParseError("unknown counter name: " + std::string(name));
}

}  // namespace perftrack::trace
