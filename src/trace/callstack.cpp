#include "trace/callstack.hpp"

#include <functional>

#include "common/error.hpp"

namespace perftrack::trace {

std::size_t CallstackTable::KeyHash::operator()(const Key& k) const {
  std::size_t h = std::hash<std::string>{}(k.function);
  h ^= std::hash<std::string>{}(k.file) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= std::hash<std::uint32_t>{}(k.line) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h;
}

CallstackTable::CallstackTable() {
  // Slot 0: the unknown location.
  locations_.push_back(SourceLocation{"<unknown>", "<unknown>", 0});
}

CallstackId CallstackTable::intern(const SourceLocation& loc) {
  Key key{loc.function, loc.file, loc.line};
  auto it = by_location_.find(key);
  if (it != by_location_.end()) return it->second;
  auto id = static_cast<CallstackId>(locations_.size());
  locations_.push_back(loc);
  by_location_.emplace(std::move(key), id);
  return id;
}

const SourceLocation& CallstackTable::resolve(CallstackId id) const {
  PT_REQUIRE(id < locations_.size(), "callstack id out of range");
  return locations_[id];
}

std::string CallstackTable::describe(CallstackId id) const {
  const SourceLocation& loc = resolve(id);
  if (id == kUnknownCallstack) return "<unknown>";
  return loc.function + " (" + loc.file + ":" + std::to_string(loc.line) + ")";
}

}  // namespace perftrack::trace
