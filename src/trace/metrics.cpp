#include "trace/metrics.hpp"

#include "common/error.hpp"

namespace perftrack::trace {

std::string_view metric_name(Metric m) {
  switch (m) {
    case Metric::Duration: return "Duration";
    case Metric::Instructions: return "Instructions";
    case Metric::Ipc: return "IPC";
    case Metric::Cycles: return "Cycles";
    case Metric::L1MissesPerKi: return "L1_misses_per_ki";
    case Metric::L2MissesPerKi: return "L2_misses_per_ki";
    case Metric::TlbMissesPerKi: return "TLB_misses_per_ki";
  }
  throw PreconditionError("invalid metric enum value");
}

Metric metric_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    auto m = static_cast<Metric>(i);
    if (metric_name(m) == name) return m;
  }
  throw ParseError("unknown metric name: " + std::string(name));
}

bool metric_scales_with_tasks(Metric m) {
  switch (m) {
    case Metric::Duration:
    case Metric::Instructions:
    case Metric::Cycles:
      return true;
    case Metric::Ipc:
    case Metric::L1MissesPerKi:
    case Metric::L2MissesPerKi:
    case Metric::TlbMissesPerKi:
      return false;
  }
  throw PreconditionError("invalid metric enum value");
}

double evaluate_metric(const Burst& burst, Metric m) {
  const CounterSet& c = burst.counters;
  double instr = c.get(Counter::Instructions);
  switch (m) {
    case Metric::Duration:
      return burst.duration;
    case Metric::Instructions:
      return instr;
    case Metric::Ipc: {
      double cyc = c.get(Counter::Cycles);
      return cyc > 0.0 ? instr / cyc : 0.0;
    }
    case Metric::Cycles:
      return c.get(Counter::Cycles);
    case Metric::L1MissesPerKi:
      return instr > 0.0 ? c.get(Counter::L1DMisses) / instr * 1000.0 : 0.0;
    case Metric::L2MissesPerKi:
      return instr > 0.0 ? c.get(Counter::L2Misses) / instr * 1000.0 : 0.0;
    case Metric::TlbMissesPerKi:
      return instr > 0.0 ? c.get(Counter::TlbMisses) / instr * 1000.0 : 0.0;
  }
  throw PreconditionError("invalid metric enum value");
}

std::vector<double> evaluate_metric(const Trace& trace, Metric m) {
  std::vector<double> out;
  out.reserve(trace.burst_count());
  for (const Burst& b : trace.bursts()) out.push_back(evaluate_metric(b, m));
  return out;
}

}  // namespace perftrack::trace
