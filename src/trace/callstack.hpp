#pragma once
// Call-stack references.
//
// Each CPU burst carries a reference to the source location where the
// computation begins (function, file, line) — the information Extrae obtains
// by unwinding at the MPI entry. References are interned into a per-trace
// CallstackTable so bursts store a compact integer id and identical
// locations compare by id.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace perftrack::trace {

/// Interned identifier of a source location. 0 is always "unknown".
using CallstackId = std::uint32_t;

inline constexpr CallstackId kUnknownCallstack = 0;

struct SourceLocation {
  std::string function;
  std::string file;
  std::uint32_t line = 0;

  bool operator==(const SourceLocation&) const = default;
};

/// Bidirectional map between SourceLocation values and CallstackIds.
/// Id 0 is reserved for the unknown location.
class CallstackTable {
public:
  CallstackTable();

  /// Intern a location; returns an existing id if already present.
  CallstackId intern(const SourceLocation& loc);

  const SourceLocation& resolve(CallstackId id) const;

  std::size_t size() const { return locations_.size(); }

  /// "function (file:line)" or "<unknown>".
  std::string describe(CallstackId id) const;

private:
  struct Key {
    std::string function, file;
    std::uint32_t line;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  std::vector<SourceLocation> locations_;
  std::unordered_map<Key, CallstackId, KeyHash> by_location_;
};

}  // namespace perftrack::trace
