#include "trace/slice.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace perftrack::trace {

std::vector<std::shared_ptr<const Trace>> split_into_intervals(
    const Trace& trace, std::size_t intervals) {
  PT_REQUIRE(intervals >= 1, "need at least one interval");

  const double end = trace.end_time();
  const double width = end > 0.0 ? end / static_cast<double>(intervals) : 1.0;

  std::vector<std::shared_ptr<Trace>> slices;
  slices.reserve(intervals);
  for (std::size_t i = 0; i < intervals; ++i) {
    auto slice = std::make_shared<Trace>(trace.application(),
                                         trace.num_tasks());
    slice->set_label(trace.label() + " [" + std::to_string(i + 1) + "/" +
                     std::to_string(intervals) + "]");
    for (const auto& [key, value] : trace.attributes())
      slice->set_attribute(key, value);
    slice->set_attribute("interval", std::to_string(i + 1));
    slices.push_back(std::move(slice));
  }

  for (const Burst& burst : trace.bursts()) {
    double midpoint = burst.begin_time + burst.duration / 2.0;
    auto index = static_cast<std::size_t>(midpoint / width);
    index = std::min(index, intervals - 1);
    Burst copy = burst;
    copy.callstack = slices[index]->callstacks().intern(
        trace.callstacks().resolve(burst.callstack));
    slices[index]->add_burst(copy);
  }

  std::vector<std::shared_ptr<const Trace>> out(slices.begin(), slices.end());
  return out;
}

}  // namespace perftrack::trace
