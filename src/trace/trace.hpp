#pragma once
// Burst-level trace model.
//
// A Trace is what library interposition (Extrae-style) would record for one
// execution of a parallel application: for every task, the time-ordered
// sequence of CPU bursts — sequential computations between calls into the
// parallel runtime — each with its duration, hardware counters and the
// call-stack reference of the code region it executes. A Trace also carries
// the experiment metadata (application, number of tasks, free-form scenario
// attributes) the tracking stage uses for labelling and scale weighting.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "trace/callstack.hpp"
#include "trace/counters.hpp"

namespace perftrack::trace {

using TaskId = std::uint32_t;

/// One sequential computation between two parallel-runtime calls.
struct Burst {
  TaskId task = 0;
  double begin_time = 0.0;  ///< seconds since application start
  double duration = 0.0;    ///< seconds
  CallstackId callstack = kUnknownCallstack;
  CounterSet counters;

  double end_time() const { return begin_time + duration; }
};

class Trace {
public:
  Trace(std::string application, std::uint32_t num_tasks);

  const std::string& application() const { return application_; }
  std::uint32_t num_tasks() const { return num_tasks_; }

  /// Short label identifying the experiment in reports ("WRF-128",
  /// "CGPOP MN/xlf", "BT class A", ...). Defaults to the application name.
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Free-form scenario attributes (platform, compiler, problem class, ...).
  const std::map<std::string, std::string>& attributes() const {
    return attributes_;
  }
  void set_attribute(const std::string& key, const std::string& value) {
    attributes_[key] = value;
  }
  /// Value for `key`, or `fallback` if absent.
  std::string attribute_or(const std::string& key,
                           const std::string& fallback) const;

  CallstackTable& callstacks() { return callstacks_; }
  const CallstackTable& callstacks() const { return callstacks_; }

  /// Append a burst. Bursts of one task must be added in time order.
  void add_burst(Burst burst);

  std::span<const Burst> bursts() const { return bursts_; }
  std::size_t burst_count() const { return bursts_.size(); }

  /// Indices (into bursts()) of the given task's bursts, in time order.
  std::span<const std::uint32_t> task_bursts(TaskId task) const;

  /// Sum of all burst durations (total computation time across tasks).
  double total_computation_time() const;

  /// Wall-clock end of the last burst.
  double end_time() const;

  /// Check structural invariants (task ids in range, non-negative times,
  /// per-task time ordering, callstack ids resolvable).
  /// Throws PreconditionError on violation.
  void validate() const;

private:
  std::string application_;
  std::string label_;
  std::uint32_t num_tasks_;
  std::map<std::string, std::string> attributes_;
  CallstackTable callstacks_;
  std::vector<Burst> bursts_;
  std::vector<std::vector<std::uint32_t>> per_task_;
};

}  // namespace perftrack::trace
