#pragma once
// Text serialisation of traces (.ptt — "perftrack trace").
//
// A deliberately simple line format in the spirit of Paraver's textual
// traces, so that fixtures can be versioned, diffed, and produced by other
// tools. Layout:
//
//   #PTT 1
//   app <application name>
//   label <experiment label>
//   tasks <count>
//   attr <key> <value>
//   callstack <id> <line> <file> <function...>
//   burst <task> <begin> <duration> <callstack-id> <INSTR> <CYC> <L1DM> <L2M> <TLBM>
//
// `function` is the final field of a callstack line and may contain spaces;
// `file` may not. Burst lines must appear in per-task time order (the same
// invariant Trace::add_burst enforces). Blank lines and lines starting with
// '#' (after the magic) are ignored.

#include <iosfwd>
#include <string>

#include "common/diagnostics.hpp"
#include "trace/trace.hpp"

namespace perftrack::trace {

/// Serialise `trace` to the stream. Throws IoError on stream failure.
void write_trace(std::ostream& out, const Trace& trace);

/// Serialise to a file; throws IoError on failure.
void save_trace(const std::string& path, const Trace& trace);

/// Parse a trace from the stream, reporting malformed records to `diags`.
/// With a strict collector the first error throws ParseError (the
/// historical behaviour); with a lenient one bad records are skipped or
/// repaired and parsing aborts only once the error budget is exhausted.
/// Throws IoError on stream failure in either mode.
Trace read_trace(std::istream& in, Diagnostics& diags);

/// Strict-mode convenience overload.
Trace read_trace(std::istream& in);

/// Parse from a file; stamps the path onto `diags` for its diagnostics.
Trace load_trace(const std::string& path, Diagnostics& diags);

/// Strict-mode convenience overload.
Trace load_trace(const std::string& path);

}  // namespace perftrack::trace
