#pragma once
// Slicing one experiment into time intervals.
//
// The paper's technique applies equally to "different time intervals within
// the same experiment" (§1, §6): each interval becomes one frame of the
// sequence, and tracking shows how the application's behaviour evolves over
// the run. split_into_intervals cuts a trace into N equal wall-clock
// windows; a burst belongs to the window containing its midpoint, so every
// burst lands in exactly one interval.

#include <memory>
#include <vector>

#include "trace/trace.hpp"

namespace perftrack::trace {

/// Cut `trace` into `intervals` equal wall-clock windows. Burst begin times
/// are kept absolute (per-task ordering within each slice is preserved).
/// Labels become "<label> [i/N]". Slices may be empty of bursts if the
/// application was idle in a window; they still carry all metadata.
std::vector<std::shared_ptr<const Trace>> split_into_intervals(
    const Trace& trace, std::size_t intervals);

}  // namespace perftrack::trace
