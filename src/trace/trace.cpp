#include "trace/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace perftrack::trace {

Trace::Trace(std::string application, std::uint32_t num_tasks)
    : application_(std::move(application)),
      label_(application_),
      num_tasks_(num_tasks),
      per_task_(num_tasks) {
  PT_REQUIRE(num_tasks > 0, "trace needs at least one task");
}

std::string Trace::attribute_or(const std::string& key,
                                const std::string& fallback) const {
  auto it = attributes_.find(key);
  return it == attributes_.end() ? fallback : it->second;
}

void Trace::add_burst(Burst burst) {
  PT_REQUIRE(burst.task < num_tasks_, "burst task id out of range");
  PT_REQUIRE(burst.duration >= 0.0, "burst duration must be non-negative");
  auto& seq = per_task_[burst.task];
  if (!seq.empty()) {
    const Burst& prev = bursts_[seq.back()];
    PT_REQUIRE(burst.begin_time >= prev.begin_time,
               "bursts of a task must be added in time order");
  }
  seq.push_back(static_cast<std::uint32_t>(bursts_.size()));
  bursts_.push_back(burst);
}

std::span<const std::uint32_t> Trace::task_bursts(TaskId task) const {
  PT_REQUIRE(task < num_tasks_, "task id out of range");
  return per_task_[task];
}

double Trace::total_computation_time() const {
  double s = 0.0;
  for (const Burst& b : bursts_) s += b.duration;
  return s;
}

double Trace::end_time() const {
  double t = 0.0;
  for (const Burst& b : bursts_) t = std::max(t, b.end_time());
  return t;
}

void Trace::validate() const {
  for (std::uint32_t task = 0; task < num_tasks_; ++task) {
    double prev_begin = -1.0;
    for (std::uint32_t idx : per_task_[task]) {
      PT_REQUIRE(idx < bursts_.size(), "burst index out of range");
      const Burst& b = bursts_[idx];
      PT_REQUIRE(b.task == task, "per-task index lists a foreign burst");
      PT_REQUIRE(b.begin_time >= 0.0, "negative begin time");
      PT_REQUIRE(b.duration >= 0.0, "negative duration");
      PT_REQUIRE(b.begin_time >= prev_begin, "per-task bursts out of order");
      prev_begin = b.begin_time;
      // resolve() throws if the id is unknown to the table.
      callstacks_.resolve(b.callstack);
    }
  }
}

}  // namespace perftrack::trace
