#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::trace {

namespace {

constexpr std::string_view kMagic = "#PTT 1";

double parse_double(std::string_view text, int line_no) {
  // std::from_chars for double is available in GCC 11+.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParseError("line " + std::to_string(line_no) +
                     ": bad number: " + std::string(text));
  return value;
}

std::uint64_t parse_uint(std::string_view text, int line_no) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParseError("line " + std::to_string(line_no) +
                     ": bad unsigned integer: " + std::string(text));
  return value;
}

/// Split `text` into at most `max_fields` whitespace-separated fields; the
/// last field absorbs the remainder (so function names may contain spaces).
std::vector<std::string_view> fields_of(std::string_view text,
                                        std::size_t max_fields) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size() && out.size() + 1 < max_fields) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    std::size_t end = text.find(' ', pos);
    if (end == std::string_view::npos) end = text.size();
    out.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos < text.size()) out.push_back(trim(text.substr(pos)));
  return out;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  out << kMagic << '\n';
  out << "app " << trace.application() << '\n';
  out << "label " << trace.label() << '\n';
  out << "tasks " << trace.num_tasks() << '\n';
  for (const auto& [key, value] : trace.attributes())
    out << "attr " << key << ' ' << value << '\n';

  const CallstackTable& cs = trace.callstacks();
  for (CallstackId id = 1; id < cs.size(); ++id) {
    const SourceLocation& loc = cs.resolve(id);
    out << "callstack " << id << ' ' << loc.line << ' ' << loc.file << ' '
        << loc.function << '\n';
  }

  out.precision(17);
  for (const Burst& b : trace.bursts()) {
    out << "burst " << b.task << ' ' << b.begin_time << ' ' << b.duration
        << ' ' << b.callstack;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      out << ' ' << b.counters.get(static_cast<Counter>(i));
    out << '\n';
  }
  if (!out) throw IoError("trace write failed");
}

void save_trace(const std::string& path, const Trace& trace) {
  PT_SPAN("save_trace");
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  write_trace(out, trace);
}

Trace read_trace(std::istream& in) {
  std::string line;
  int line_no = 0;

  if (!std::getline(in, line) || trim(line) != kMagic)
    throw ParseError("missing #PTT 1 magic header");
  ++line_no;

  std::optional<std::string> app;
  std::optional<std::string> label;
  std::optional<std::uint32_t> tasks;
  std::map<std::string, std::string> attrs;
  // Callstack ids in the file are remapped through interning on load.
  std::map<std::uint64_t, SourceLocation> file_callstacks;

  struct RawBurst {
    std::uint32_t task;
    double begin, duration;
    std::uint64_t callstack;
    std::array<double, kCounterCount> counters;
  };
  std::vector<RawBurst> raw_bursts;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;

    if (starts_with(text, "app ")) {
      app = std::string(trim(text.substr(4)));
    } else if (starts_with(text, "label ")) {
      label = std::string(trim(text.substr(6)));
    } else if (starts_with(text, "tasks ")) {
      tasks = static_cast<std::uint32_t>(parse_uint(trim(text.substr(6)),
                                                    line_no));
    } else if (starts_with(text, "attr ")) {
      auto f = fields_of(text.substr(5), 2);
      if (f.size() != 2)
        throw ParseError("line " + std::to_string(line_no) + ": bad attr");
      attrs[std::string(f[0])] = std::string(f[1]);
    } else if (starts_with(text, "callstack ")) {
      auto f = fields_of(text.substr(10), 4);
      if (f.size() != 4)
        throw ParseError("line " + std::to_string(line_no) +
                         ": bad callstack record");
      SourceLocation loc;
      std::uint64_t id = parse_uint(f[0], line_no);
      loc.line = static_cast<std::uint32_t>(parse_uint(f[1], line_no));
      loc.file = std::string(f[2]);
      loc.function = std::string(f[3]);
      file_callstacks[id] = std::move(loc);
    } else if (starts_with(text, "burst ")) {
      auto f = fields_of(text.substr(6), 4 + kCounterCount);
      if (f.size() != 4 + kCounterCount)
        throw ParseError("line " + std::to_string(line_no) +
                         ": bad burst record (expected " +
                         std::to_string(4 + kCounterCount) + " fields)");
      RawBurst rb;
      rb.task = static_cast<std::uint32_t>(parse_uint(f[0], line_no));
      rb.begin = parse_double(f[1], line_no);
      rb.duration = parse_double(f[2], line_no);
      rb.callstack = parse_uint(f[3], line_no);
      for (std::size_t i = 0; i < kCounterCount; ++i)
        rb.counters[i] = parse_double(f[4 + i], line_no);
      raw_bursts.push_back(rb);
    } else {
      throw ParseError("line " + std::to_string(line_no) +
                       ": unknown record: " + std::string(text));
    }
  }
  if (in.bad()) throw IoError("trace read failed");

  if (!app) throw ParseError("trace missing 'app' record");
  if (!tasks) throw ParseError("trace missing 'tasks' record");

  Trace trace(*app, *tasks);
  if (label) trace.set_label(*label);
  for (const auto& [key, value] : attrs) trace.set_attribute(key, value);

  std::map<std::uint64_t, CallstackId> id_map;
  id_map[0] = kUnknownCallstack;
  for (const auto& [file_id, loc] : file_callstacks)
    id_map[file_id] = trace.callstacks().intern(loc);

  for (const RawBurst& rb : raw_bursts) {
    auto it = id_map.find(rb.callstack);
    if (it == id_map.end())
      throw ParseError("burst references undeclared callstack id " +
                       std::to_string(rb.callstack));
    Burst b;
    b.task = rb.task;
    b.begin_time = rb.begin;
    b.duration = rb.duration;
    b.callstack = it->second;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      b.counters.set(static_cast<Counter>(i), rb.counters[i]);
    trace.add_burst(b);
  }
  trace.validate();
  return trace;
}

Trace load_trace(const std::string& path) {
  PT_SPAN("load_trace");
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  Trace trace = read_trace(in);
  PT_COUNTER("traces_loaded", 1.0);
  PT_COUNTER("bursts_loaded", static_cast<double>(trace.burst_count()));
  return trace;
}

}  // namespace perftrack::trace
