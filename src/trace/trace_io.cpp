#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::trace {

namespace {

constexpr std::string_view kMagic = "#PTT 1";

std::optional<double> parse_double(std::string_view text) {
  // std::from_chars for double is available in GCC 11+.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

/// Split `text` into at most `max_fields` whitespace-separated fields; the
/// last field absorbs the remainder (so function names may contain spaces).
std::vector<std::string_view> fields_of(std::string_view text,
                                        std::size_t max_fields) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size() && out.size() + 1 < max_fields) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    std::size_t end = text.find(' ', pos);
    if (end == std::string_view::npos) end = text.size();
    out.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos < text.size()) out.push_back(trim(text.substr(pos)));
  return out;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  out << kMagic << '\n';
  out << "app " << trace.application() << '\n';
  out << "label " << trace.label() << '\n';
  out << "tasks " << trace.num_tasks() << '\n';
  for (const auto& [key, value] : trace.attributes())
    out << "attr " << key << ' ' << value << '\n';

  const CallstackTable& cs = trace.callstacks();
  for (CallstackId id = 1; id < cs.size(); ++id) {
    const SourceLocation& loc = cs.resolve(id);
    out << "callstack " << id << ' ' << loc.line << ' ' << loc.file << ' '
        << loc.function << '\n';
  }

  out.precision(17);
  for (const Burst& b : trace.bursts()) {
    out << "burst " << b.task << ' ' << b.begin_time << ' ' << b.duration
        << ' ' << b.callstack;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      out << ' ' << b.counters.get(static_cast<Counter>(i));
    out << '\n';
  }
  if (!out) throw io_error("trace write failed", "<stream>");
}

void save_trace(const std::string& path, const Trace& trace) {
  PT_SPAN("save_trace");
  PT_FAILPOINT("save_trace");
  errno = 0;
  std::ofstream out(path);
  if (!out) throw io_error("cannot open for writing", path);
  try {
    write_trace(out, trace);
  } catch (const IoError&) {
    // Rethrow with the path (the stream writer cannot know it).
    throw io_error("trace write failed", path);
  }
  out.close();
  if (!out) throw io_error("trace write failed", path);
}

Trace read_trace(std::istream& in, Diagnostics& diags) {
  std::string line;
  int line_no = 0;

  std::optional<std::string> app;
  std::optional<std::string> label;
  std::optional<std::uint32_t> tasks;
  std::map<std::string, std::string> attrs;
  // Callstack ids in the file are remapped through interning on load.
  std::map<std::uint64_t, SourceLocation> file_callstacks;

  struct RawBurst {
    std::uint32_t task;
    double begin, duration;
    std::uint64_t callstack;
    std::array<double, kCounterCount> counters;
    int line_no;
  };
  std::vector<RawBurst> raw_bursts;

  // In lenient mode a record that fails to parse is reported and skipped;
  // in strict mode diags.error() throws at the first report.
  auto handle_record = [&](std::string_view text) {
    diags.count_record();
    if (starts_with(text, "app ")) {
      if (app) {
        diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error,
                     line_no, "duplicate-record",
                     "duplicate 'app' record (keeping the first)");
        return;
      }
      app = std::string(trim(text.substr(4)));
    } else if (starts_with(text, "label ")) {
      if (label) {
        diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error,
                     line_no, "duplicate-record",
                     "duplicate 'label' record (keeping the first)");
        return;
      }
      label = std::string(trim(text.substr(6)));
    } else if (starts_with(text, "tasks ")) {
      if (tasks) {
        diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error,
                     line_no, "duplicate-record",
                     "duplicate 'tasks' record (keeping the first)");
        return;
      }
      auto value = parse_uint(trim(text.substr(6)));
      if (!value) {
        diags.error(line_no, "bad-number",
                    "bad task count: " + std::string(trim(text.substr(6))));
        return;
      }
      tasks = static_cast<std::uint32_t>(*value);
    } else if (starts_with(text, "attr ")) {
      auto f = fields_of(text.substr(5), 2);
      if (f.size() != 2) {
        diags.error(line_no, "bad-attr", "bad attr");
        return;
      }
      std::string key(f[0]);
      if (attrs.count(key) != 0) {
        diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error,
                     line_no, "duplicate-attr",
                     "duplicate attr '" + key + "' (keeping the first)");
        return;
      }
      attrs[key] = std::string(f[1]);
    } else if (starts_with(text, "callstack ")) {
      auto f = fields_of(text.substr(10), 4);
      if (f.size() != 4) {
        diags.error(line_no, "bad-callstack", "bad callstack record");
        return;
      }
      auto id = parse_uint(f[0]);
      auto loc_line = parse_uint(f[1]);
      if (!id || !loc_line) {
        diags.error(line_no, "bad-callstack",
                    "bad number in callstack record");
        return;
      }
      if (file_callstacks.count(*id) != 0) {
        diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error,
                     line_no, "duplicate-callstack",
                     "duplicate callstack id " + std::to_string(*id) +
                         " (keeping the first)");
        return;
      }
      SourceLocation loc;
      loc.line = static_cast<std::uint32_t>(*loc_line);
      loc.file = std::string(f[2]);
      loc.function = std::string(f[3]);
      file_callstacks[*id] = std::move(loc);
    } else if (starts_with(text, "burst ")) {
      auto f = fields_of(text.substr(6), 4 + kCounterCount);
      if (f.size() != 4 + kCounterCount) {
        diags.error(line_no, "bad-burst",
                    "bad burst record (expected " +
                        std::to_string(4 + kCounterCount) + " fields)");
        return;
      }
      RawBurst rb;
      rb.line_no = line_no;
      auto task = parse_uint(f[0]);
      auto begin = parse_double(f[1]);
      auto duration = parse_double(f[2]);
      auto callstack = parse_uint(f[3]);
      bool ok = task && begin && duration && callstack;
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        auto value = parse_double(f[4 + i]);
        if (!value) ok = false;
        else rb.counters[i] = *value;
      }
      if (!ok) {
        diags.error(line_no, "bad-burst", "bad number in burst record");
        return;
      }
      rb.task = static_cast<std::uint32_t>(*task);
      rb.begin = *begin;
      rb.duration = *duration;
      rb.callstack = *callstack;
      raw_bursts.push_back(rb);
    } else {
      diags.error(line_no, "unknown-record",
                  "unknown record: " + std::string(text));
    }
  };

  if (!std::getline(in, line)) {
    diags.error(0, "bad-magic", "missing #PTT 1 magic header");
    throw ParseError("empty trace stream");
  }
  ++line_no;
  if (trim(line) != kMagic) {
    diags.error(line_no, "bad-magic", "missing #PTT 1 magic header");
    // Lenient: the first line may still be a payload record; feed it to the
    // dispatcher unless it reads as a comment.
    std::string_view text = trim(line);
    if (!text.empty() && text.front() != '#') handle_record(text);
  }

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    handle_record(text);
  }
  if (in.bad()) throw io_error("trace read failed", diags.file());

  if (!app) {
    diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error, 0,
                 "missing-app", "trace missing 'app' record");
    app = "unknown";
  }
  if (!tasks) {
    // Repairable when bursts tell us how many tasks there are.
    std::uint32_t max_task = 0;
    for (const RawBurst& rb : raw_bursts)
      max_task = std::max(max_task, rb.task);
    if (raw_bursts.empty()) {
      diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error,
                   0, "missing-tasks", "trace missing 'tasks' record");
      throw ParseError("trace unusable: no 'tasks' record and no bursts to "
                       "infer the task count from");
    }
    diags.report(diags.is_lenient() ? Severity::Warning : Severity::Error, 0,
                 "missing-tasks",
                 "trace missing 'tasks' record (inferred " +
                     std::to_string(max_task + 1) + " from bursts)");
    tasks = max_task + 1;
  }

  Trace trace(*app, *tasks);
  if (label) trace.set_label(*label);
  for (const auto& [key, value] : attrs) trace.set_attribute(key, value);

  std::map<std::uint64_t, CallstackId> id_map;
  id_map[0] = kUnknownCallstack;
  for (const auto& [file_id, loc] : file_callstacks)
    id_map[file_id] = trace.callstacks().intern(loc);

  for (const RawBurst& rb : raw_bursts) {
    auto it = id_map.find(rb.callstack);
    if (it == id_map.end()) {
      diags.error(rb.line_no, "dangling-callstack",
                  "burst references undeclared callstack id " +
                      std::to_string(rb.callstack));
      continue;
    }
    Burst b;
    b.task = rb.task;
    b.begin_time = rb.begin;
    b.duration = rb.duration;
    b.callstack = it->second;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      b.counters.set(static_cast<Counter>(i), rb.counters[i]);
    try {
      trace.add_burst(b);
    } catch (const PreconditionError& error) {
      // Out-of-range task, negative duration or per-task time disorder.
      diags.error(rb.line_no, "bad-burst", error.what());
    }
  }
  diags.finish();
  trace.validate();
  return trace;
}

Trace read_trace(std::istream& in) {
  Diagnostics diags;
  return read_trace(in, diags);
}

Trace load_trace(const std::string& path, Diagnostics& diags) {
  PT_SPAN("load_trace");
  PT_FAILPOINT("load_trace");
  diags.set_file(path);
  errno = 0;
  std::ifstream in(path);
  if (!in) throw io_error("cannot open for reading", path);
  Trace trace = read_trace(in, diags);
  PT_COUNTER("traces_loaded", 1.0);
  PT_COUNTER("bursts_loaded", static_cast<double>(trace.burst_count()));
  return trace;
}

Trace load_trace(const std::string& path) {
  Diagnostics diags;
  return load_trace(path, diags);
}

}  // namespace perftrack::trace
