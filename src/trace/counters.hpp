#pragma once
// Hardware counter vectors.
//
// Every CPU burst carries the raw counters a PAPI-style measurement layer
// would attach: instructions, cycles and the cache/TLB miss counts used by
// the paper's case studies. The set is a fixed enum rather than an open map:
// the pipeline iterates counters in hot loops and a flat array keeps that
// branch-free and cache-friendly.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace perftrack::trace {

enum class Counter : std::uint8_t {
  Instructions = 0,
  Cycles,
  L1DMisses,
  L2Misses,
  TlbMisses,
};

inline constexpr std::size_t kCounterCount = 5;

/// Stable short mnemonic ("PAPI-like") for a counter.
std::string_view counter_name(Counter c);

/// Parse a mnemonic produced by counter_name; throws ParseError on unknown.
Counter counter_from_name(std::string_view name);

/// Fixed-size vector of raw counter values for one burst.
class CounterSet {
public:
  CounterSet() { values_.fill(0.0); }

  double get(Counter c) const { return values_[index(c)]; }
  void set(Counter c, double value) { values_[index(c)] = value; }
  void add(Counter c, double delta) { values_[index(c)] += delta; }

  /// Element-wise sum, used when aggregating bursts into clusters.
  CounterSet& operator+=(const CounterSet& other) {
    for (std::size_t i = 0; i < kCounterCount; ++i)
      values_[i] += other.values_[i];
    return *this;
  }

  bool operator==(const CounterSet&) const = default;

private:
  static std::size_t index(Counter c) { return static_cast<std::size_t>(c); }
  std::array<double, kCounterCount> values_;
};

}  // namespace perftrack::trace
