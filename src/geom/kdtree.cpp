#include "geom/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace perftrack::geom {

KdTree::KdTree(const PointSet& points, std::size_t leaf_size)
    : points_(points), leaf_size_(std::max<std::size_t>(1, leaf_size)) {
  index_.resize(points.size());
  std::iota(index_.begin(), index_.end(), 0);
  if (!index_.empty()) {
    nodes_.reserve(2 * index_.size() / leaf_size_ + 2);
    root_ = build(0, index_.size());
  }
}

std::int32_t KdTree::build(std::size_t begin, std::size_t end) {
  Node node;
  node.begin = static_cast<std::uint32_t>(begin);
  node.end = static_cast<std::uint32_t>(end);

  if (end - begin <= leaf_size_) {
    // Deterministic leaf ordering makes query results reproducible.
    std::sort(index_.begin() + static_cast<std::ptrdiff_t>(begin),
              index_.begin() + static_cast<std::ptrdiff_t>(end));
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  // Split along the dimension with the widest spread in this range.
  const std::size_t dims = points_.dims();
  std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
  for (std::size_t i = begin; i < end; ++i) {
    auto p = points_[index_[i]];
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  std::size_t split_dim = 0;
  double best_spread = -1.0;
  for (std::size_t d = 0; d < dims; ++d) {
    double spread = hi[d] - lo[d];
    if (spread > best_spread) {
      best_spread = spread;
      split_dim = d;
    }
  }
  if (best_spread <= 0.0) {
    // All points identical in every dimension; keep as one leaf.
    std::sort(index_.begin() + static_cast<std::ptrdiff_t>(begin),
              index_.begin() + static_cast<std::ptrdiff_t>(end));
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(index_.begin() + static_cast<std::ptrdiff_t>(begin),
                   index_.begin() + static_cast<std::ptrdiff_t>(mid),
                   index_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return points_[a][split_dim] < points_[b][split_dim];
                   });

  node.split_dim = static_cast<std::uint16_t>(split_dim);
  node.split_value = points_[index_[mid]][split_dim];

  // Reserve our slot before recursing so children get stable indices.
  nodes_.push_back(node);
  std::int32_t self = static_cast<std::int32_t>(nodes_.size() - 1);
  std::int32_t left = build(begin, mid);
  std::int32_t right = build(mid, end);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

std::size_t KdTree::nearest(std::span<const double> query) const {
  PT_REQUIRE(size() > 0, "nearest() on empty tree");
  PT_REQUIRE(query.size() == points_.dims(), "query dimension mismatch");
  double best_sq = std::numeric_limits<double>::infinity();
  std::size_t best_idx = index_[0];
  search_nearest(root_, query, best_sq, best_idx);
  return best_idx;
}

double KdTree::nearest_squared_distance(std::span<const double> query) const {
  return squared_distance(query, points_[nearest(query)]);
}

void KdTree::search_nearest(std::int32_t node_id, std::span<const double> query,
                            double& best_sq, std::size_t& best_idx) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf()) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      std::size_t idx = index_[i];
      double d2 = squared_distance(query, points_[idx]);
      if (d2 < best_sq || (d2 == best_sq && idx < best_idx)) {
        best_sq = d2;
        best_idx = idx;
      }
    }
    return;
  }
  double diff = query[node.split_dim] - node.split_value;
  std::int32_t near = diff < 0.0 ? node.left : node.right;
  std::int32_t far = diff < 0.0 ? node.right : node.left;
  search_nearest(near, query, best_sq, best_idx);
  if (diff * diff <= best_sq) search_nearest(far, query, best_sq, best_idx);
}

// Bounded max-heap of (squared distance, index) candidates.
struct KdTree::KnnHeap {
  explicit KnnHeap(std::size_t k) : capacity(k) {}

  std::size_t capacity;
  // (distance², index); the root is the worst kept candidate.
  std::vector<std::pair<double, std::size_t>> items;

  double worst() const {
    return items.size() < capacity ? std::numeric_limits<double>::infinity()
                                   : items.front().first;
  }

  void offer(double dist_sq, std::size_t idx) {
    std::pair<double, std::size_t> candidate{dist_sq, idx};
    if (items.size() < capacity) {
      items.push_back(candidate);
      std::push_heap(items.begin(), items.end());
      return;
    }
    if (candidate < items.front()) {
      std::pop_heap(items.begin(), items.end());
      items.back() = candidate;
      std::push_heap(items.begin(), items.end());
    }
  }
};

std::vector<std::size_t> KdTree::k_nearest(std::span<const double> query,
                                           std::size_t k) const {
  PT_REQUIRE(query.size() == points_.dims(), "query dimension mismatch");
  k = std::min(k, size());
  std::vector<std::size_t> out;
  if (k == 0) return out;
  KnnHeap heap(k);
  search_knn(root_, query, heap);
  std::sort(heap.items.begin(), heap.items.end());
  out.reserve(heap.items.size());
  for (const auto& [dist_sq, idx] : heap.items) out.push_back(idx);
  return out;
}

void KdTree::search_knn(std::int32_t node_id, std::span<const double> query,
                        KnnHeap& heap) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf()) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      std::size_t idx = index_[i];
      heap.offer(squared_distance(query, points_[idx]), idx);
    }
    return;
  }
  double diff = query[node.split_dim] - node.split_value;
  std::int32_t near = diff < 0.0 ? node.left : node.right;
  std::int32_t far = diff < 0.0 ? node.right : node.left;
  search_knn(near, query, heap);
  if (diff * diff <= heap.worst()) search_knn(far, query, heap);
}

std::vector<std::size_t> KdTree::radius_query(std::span<const double> query,
                                              double radius) const {
  std::vector<std::size_t> out;
  radius_query(query, radius, out);
  return out;
}

void KdTree::radius_query(std::span<const double> query, double radius,
                          std::vector<std::size_t>& out) const {
  PT_REQUIRE(query.size() == points_.dims(), "query dimension mismatch");
  PT_REQUIRE(radius >= 0.0, "radius must be non-negative");
  out.clear();
  if (root_ < 0) return;
  search_radius(root_, query, radius * radius, out);
  std::sort(out.begin(), out.end());
}

void KdTree::search_radius(std::int32_t node_id, std::span<const double> query,
                           double radius_sq,
                           std::vector<std::size_t>& out) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf()) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      std::size_t idx = index_[i];
      if (squared_distance(query, points_[idx]) <= radius_sq)
        out.push_back(idx);
    }
    return;
  }
  double diff = query[node.split_dim] - node.split_value;
  if (diff < 0.0) {
    search_radius(node.left, query, radius_sq, out);
    if (diff * diff <= radius_sq) search_radius(node.right, query, radius_sq, out);
  } else {
    search_radius(node.right, query, radius_sq, out);
    if (diff * diff <= radius_sq) search_radius(node.left, query, radius_sq, out);
  }
}

}  // namespace perftrack::geom
