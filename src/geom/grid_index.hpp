#pragma once
// Uniform-grid spatial index over a PointSet.
//
// DBSCAN's hot query is "everything within eps of this point". A kd-tree
// answers it in O(log n + k) with scattered memory traffic; a uniform grid
// with cell edge on the order of eps answers it by scanning the few cells
// around the query's cell — a bounded, contiguous candidate set, which is
// the standard acceleration for dense low-dimensional DBSCAN (dbscan uses
// edge eps / sqrt(d), so points sharing a cell are always neighbours).
// Cells are stored CSR-style (one offset table plus one point-index array
// grouped by cell), built in two counting passes with no per-cell
// allocations.
//
// The cell table grows with prod over dims of (extent_d / cell + 1), so the
// structure only makes sense in low dimensions over bounded data (the
// pipeline's normalised metric spaces are 2-D or 3-D in [0,1]^d). Callers
// should veto degenerate configurations with plan_cells() and fall back to
// the kd-tree — dbscan() does exactly that.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::geom {

class GridIndex {
public:
  /// Hard ceiling on the cell table, enforced by the constructor (cell ids
  /// are stored as uint32). Callers wanting a graceful fallback instead of
  /// an error should veto with plan_cells() first.
  static constexpr std::size_t kMaxCellCount = std::size_t{1} << 32;

  /// Build over `points` with cubic cells of edge `cell_size` (> 0); the
  /// PointSet must outlive the index. Throws when the data spread and cell
  /// size would need more than kMaxCellCount cells.
  GridIndex(const PointSet& points, double cell_size);

  std::size_t size() const { return cell_of_point_.size(); }
  std::size_t cell_count() const { return cells_; }

  /// Cells a grid over `points` with `cell_size` would allocate, or 0 when
  /// that exceeds `limit` (or the point set is degenerate) — a cheap veto
  /// before committing to the build.
  static std::size_t plan_cells(const PointSet& points, double cell_size,
                                std::size_t limit);

  /// All point indices within Euclidean `radius` of `query` (inclusive
  /// boundary), ascending — the same contract as KdTree::radius_query.
  std::vector<std::size_t> radius_query(std::span<const double> query,
                                        double radius) const;

  /// As radius_query but appends into `out` (cleared first).
  void radius_query(std::span<const double> query, double radius,
                    std::vector<std::size_t>& out) const;

  /// Visit every unordered point pair (i, j), i < j, whose distance is
  /// <= radius, exactly once. This is the symmetric bulk form DBSCAN uses
  /// to compute every neighbourhood once: cells are paired with their
  /// lexicographically-forward neighbours only, so each pair of points is
  /// tested against the radius a single time.
  void for_each_pair_within(
      double radius,
      const std::function<void(std::size_t, std::size_t)>& visit) const;

  /// Point indices bucketed in `cell`, ascending.
  std::span<const std::uint32_t> bucket(std::size_t cell) const {
    return {point_of_.data() + cell_start_[cell],
            point_of_.data() + cell_start_[cell + 1]};
  }

  /// Visit every OTHER non-empty cell whose bounding box could hold a point
  /// within `radius` of a point in `cell` (box reach of ceil(radius /
  /// cell_size) per dim). `cell` itself is not visited; cells come in
  /// ascending id order.
  void for_each_cell_in_reach(
      std::size_t cell, double radius,
      const std::function<void(std::size_t)>& visit) const;

private:
  std::size_t cell_of(std::span<const double> p) const;

  /// Cells of box reach covering `radius`, clamped to the grid span per
  /// dim (a safe cast: unclamped, a huge radius / cell ratio would be UB
  /// to convert, and any reach that long already covers every cell).
  std::ptrdiff_t reach_cells(double radius) const;

  const PointSet& points_;
  double cell_size_ = 0.0;
  std::vector<double> lo_;          // per-dim lower bound of the data
  std::vector<std::size_t> res_;    // per-dim cell resolution (>= 1)
  std::vector<std::size_t> stride_; // per-dim linearisation stride
  std::size_t cells_ = 0;

  // CSR buckets: points of cell c are point_of_[cell_start_[c] ..
  // cell_start_[c + 1]), ascending within each cell.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> point_of_;
  std::vector<std::uint32_t> cell_of_point_;
};

}  // namespace perftrack::geom
