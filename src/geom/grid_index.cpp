#include "geom/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace perftrack::geom {

namespace {

/// Per-dim resolution of a grid spanning [lo, hi] with the given cell edge.
/// Saturates to SIZE_MAX when extent / cell is not safely convertible
/// (NaN/inf or beyond the integer range, UB to cast); any such resolution
/// is over every cell-count limit, so callers reject it via their
/// overflow checks rather than index with a garbage value.
std::size_t resolution(double lo, double hi, double cell) {
  double extent = hi - lo;
  if (!(extent > 0.0)) return 1;
  double cells = std::floor(extent / cell);
  if (!(cells < 9.0e18)) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(cells) + 1;
}

}  // namespace

std::size_t GridIndex::plan_cells(const PointSet& points, double cell_size,
                                  std::size_t limit) {
  if (!(cell_size > 0.0) || points.dims() == 0) return 0;
  if (points.empty()) return 1;
  const std::vector<double> lo = points.min_corner();
  const std::vector<double> hi = points.max_corner();
  std::size_t cells = 1;
  for (std::size_t d = 0; d < points.dims(); ++d) {
    const std::size_t res = resolution(lo[d], hi[d], cell_size);
    if (res != 0 && cells > limit / res) return 0;  // would overflow limit
    cells *= res;
  }
  return cells <= limit ? cells : 0;
}

GridIndex::GridIndex(const PointSet& points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  PT_REQUIRE(cell_size > 0.0, "grid cell size must be positive");
  PT_REQUIRE(points.size() <= 0xffffffffull,
             "grid index limited to 2^32 points");
  const std::size_t dims = points.dims();
  const std::size_t n = points.size();

  lo_ = n == 0 ? std::vector<double>(dims, 0.0) : points.min_corner();
  const std::vector<double> hi =
      n == 0 ? std::vector<double>(dims, 0.0) : points.max_corner();
  res_.resize(dims);
  stride_.resize(dims);
  cells_ = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    res_[d] = resolution(lo_[d], hi[d], cell_size);
    stride_[d] = cells_;
    // Overflow-checked: widely spread data or a tiny cell size must fail
    // loudly here, not corrupt the strides and index out of bounds later.
    PT_REQUIRE(cells_ <= kMaxCellCount / res_[d],
               "grid cell table overflow: " + std::to_string(res_[d]) +
                   " cells along dim " + std::to_string(d) +
                   " exceed the limit; use a larger cell size or a kd-tree");
    cells_ *= res_[d];
  }
  if (dims == 0) cells_ = 1;

  // CSR buckets in two counting passes.
  cell_of_point_.resize(n);
  cell_start_.assign(cells_ + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cell = static_cast<std::uint32_t>(cell_of(points[i]));
    cell_of_point_[i] = cell;
    ++cell_start_[cell + 1];
  }
  for (std::size_t c = 0; c < cells_; ++c) cell_start_[c + 1] += cell_start_[c];
  point_of_.resize(n);
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  // Filling in point order keeps every bucket ascending, which is what
  // makes radius results and pair enumeration deterministic.
  for (std::size_t i = 0; i < n; ++i)
    point_of_[cursor[cell_of_point_[i]]++] = static_cast<std::uint32_t>(i);
}

std::ptrdiff_t GridIndex::reach_cells(double radius) const {
  std::size_t longest = 1;
  for (std::size_t r : res_) longest = std::max(longest, r);
  const double cells = std::ceil(radius / cell_size_);
  if (!(cells < static_cast<double>(longest)))
    return static_cast<std::ptrdiff_t>(longest);
  return static_cast<std::ptrdiff_t>(cells);
}

std::size_t GridIndex::cell_of(std::span<const double> p) const {
  std::size_t cell = 0;
  for (std::size_t d = 0; d < p.size(); ++d) {
    double offset = std::floor((p[d] - lo_[d]) / cell_size_);
    std::size_t c = offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
    if (c >= res_[d]) c = res_[d] - 1;
    cell += c * stride_[d];
  }
  return cell;
}

std::vector<std::size_t> GridIndex::radius_query(std::span<const double> query,
                                                 double radius) const {
  std::vector<std::size_t> out;
  radius_query(query, radius, out);
  return out;
}

void GridIndex::radius_query(std::span<const double> query, double radius,
                             std::vector<std::size_t>& out) const {
  PT_REQUIRE(query.size() == points_.dims(), "query dimension mismatch");
  PT_REQUIRE(radius >= 0.0, "radius must be non-negative");
  out.clear();
  if (cell_of_point_.empty()) return;
  const std::size_t dims = points_.dims();
  const double radius_sq = radius * radius;

  // Cell box covering the query ball, clamped to the grid. Clamping
  // happens in double space: a query far outside the data (or NaN) makes
  // the raw offsets unsafe to cast first.
  std::vector<std::size_t> c_lo(dims), c_hi(dims), cursor(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double max_off = static_cast<double>(res_[d] - 1);
    double lo_off = std::floor((query[d] - radius - lo_[d]) / cell_size_);
    double hi_off = std::floor((query[d] + radius - lo_[d]) / cell_size_);
    c_lo[d] = !(lo_off > 0.0)      ? 0
              : lo_off >= max_off ? res_[d] - 1
                                  : static_cast<std::size_t>(lo_off);
    c_hi[d] = !(hi_off > 0.0)      ? 0
              : hi_off >= max_off ? res_[d] - 1
                                  : static_cast<std::size_t>(hi_off);
    cursor[d] = c_lo[d];
  }

  // Odometer walk over the cell box.
  for (;;) {
    std::size_t cell = 0;
    for (std::size_t d = 0; d < dims; ++d) cell += cursor[d] * stride_[d];
    for (std::uint32_t s = cell_start_[cell]; s < cell_start_[cell + 1]; ++s) {
      const std::uint32_t idx = point_of_[s];
      if (squared_distance(query, points_[idx]) <= radius_sq)
        out.push_back(idx);
    }
    std::size_t d = 0;
    while (d < dims && cursor[d] == c_hi[d]) {
      cursor[d] = c_lo[d];
      ++d;
    }
    if (d == dims) break;
    ++cursor[d];
  }
  std::sort(out.begin(), out.end());
}

void GridIndex::for_each_cell_in_reach(
    std::size_t cell, double radius,
    const std::function<void(std::size_t)>& visit) const {
  PT_REQUIRE(radius >= 0.0, "radius must be non-negative");
  const std::size_t dims = points_.dims();
  const std::ptrdiff_t reach = reach_cells(radius);
  if (dims == 0 || reach == 0) return;

  // Decode the cell's coordinates, then walk the clamped box around it.
  // Dim 0 has stride 1 and advances fastest, so ids come out ascending.
  std::vector<std::size_t> coords(dims), c_lo(dims), c_hi(dims),
      cursor(dims);
  std::size_t rest = cell;
  for (std::size_t d = dims; d-- > 0;) {
    coords[d] = rest / stride_[d];
    rest %= stride_[d];
  }
  for (std::size_t d = 0; d < dims; ++d) {
    const auto c = static_cast<std::ptrdiff_t>(coords[d]);
    c_lo[d] = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, c - reach));
    c_hi[d] = std::min(res_[d] - 1, coords[d] + static_cast<std::size_t>(reach));
    cursor[d] = c_lo[d];
  }
  for (;;) {
    std::size_t other = 0;
    for (std::size_t d = 0; d < dims; ++d) other += cursor[d] * stride_[d];
    if (other != cell && cell_start_[other] != cell_start_[other + 1])
      visit(other);
    std::size_t d = 0;
    while (d < dims && cursor[d] == c_hi[d]) {
      cursor[d] = c_lo[d];
      ++d;
    }
    if (d == dims) break;
    ++cursor[d];
  }
}

void GridIndex::for_each_pair_within(
    double radius,
    const std::function<void(std::size_t, std::size_t)>& visit) const {
  PT_REQUIRE(radius >= 0.0, "radius must be non-negative");
  if (cell_of_point_.empty()) return;
  const std::size_t dims = points_.dims();
  const double radius_sq = radius * radius;
  const std::ptrdiff_t reach = reach_cells(radius);

  // Lexicographically-forward neighbour offsets: the first non-zero
  // component is positive, so every unordered cell pair is enumerated from
  // exactly one side. (0, ..., 0) is excluded — intra-cell pairs are
  // handled separately below.
  std::vector<std::vector<std::ptrdiff_t>> forward;
  std::vector<std::ptrdiff_t> offset(dims, -reach);
  if (reach > 0) {
    for (;;) {
      std::size_t first_non_zero = dims;
      for (std::size_t d = 0; d < dims; ++d)
        if (offset[d] != 0) {
          first_non_zero = d;
          break;
        }
      if (first_non_zero < dims && offset[first_non_zero] > 0)
        forward.push_back(offset);
      std::size_t d = 0;
      while (d < dims && offset[d] == reach) {
        offset[d] = -reach;
        ++d;
      }
      if (d == dims) break;
      ++offset[d];
    }
  }

  std::vector<std::size_t> coords(dims);
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    const std::uint32_t begin = cell_start_[cell];
    const std::uint32_t end = cell_start_[cell + 1];
    if (begin == end) continue;

    // Intra-cell pairs (buckets are ascending, so i < j holds).
    for (std::uint32_t s = begin; s < end; ++s)
      for (std::uint32_t t = s + 1; t < end; ++t) {
        const std::uint32_t i = point_of_[s];
        const std::uint32_t j = point_of_[t];
        if (squared_distance(points_[i], points_[j]) <= radius_sq)
          visit(i, j);
      }

    if (forward.empty()) continue;
    std::size_t rest = cell;
    for (std::size_t d = dims; d-- > 0;) {
      coords[d] = rest / stride_[d];
      rest %= stride_[d];
    }
    for (const auto& off : forward) {
      std::size_t other = 0;
      bool in_range = true;
      for (std::size_t d = 0; d < dims; ++d) {
        const auto c = static_cast<std::ptrdiff_t>(coords[d]) + off[d];
        if (c < 0 || c >= static_cast<std::ptrdiff_t>(res_[d])) {
          in_range = false;
          break;
        }
        other += static_cast<std::size_t>(c) * stride_[d];
      }
      if (!in_range) continue;
      for (std::uint32_t s = begin; s < end; ++s)
        for (std::uint32_t t = cell_start_[other]; t < cell_start_[other + 1];
             ++t) {
          const std::uint32_t i = point_of_[s];
          const std::uint32_t j = point_of_[t];
          if (squared_distance(points_[i], points_[j]) <= radius_sq)
            visit(std::min(i, j), std::max(i, j));
        }
    }
  }
}

}  // namespace perftrack::geom
