#pragma once
// kd-tree over a PointSet.
//
// Accelerates the two hot queries of the pipeline:
//   * radius queries for DBSCAN neighbourhood expansion, and
//   * nearest-neighbour queries for the displacement evaluator's
//     cross-classification of bursts between frames.
//
// The tree stores indices into the backing PointSet (no coordinate copies)
// in a single node array, split by the widest-spread dimension at the
// median. Leaves hold up to `leaf_size` points and are scanned linearly —
// for the 2-D metric spaces used here that beats deeper trees.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::geom {

class KdTree {
public:
  /// Build over `points`; the PointSet must outlive the tree.
  explicit KdTree(const PointSet& points, std::size_t leaf_size = 16);

  std::size_t size() const { return index_.size(); }

  /// Index of the nearest point to `query` (ties broken by lower index);
  /// `size()` must be > 0.
  std::size_t nearest(std::span<const double> query) const;

  /// Nearest point's squared distance to `query`.
  double nearest_squared_distance(std::span<const double> query) const;

  /// The k nearest points to `query`, ordered by ascending distance (ties
  /// by index). k is clamped to size(). Used by the DBSCAN parameter
  /// auto-tuner's k-distance curve.
  std::vector<std::size_t> k_nearest(std::span<const double> query,
                                     std::size_t k) const;

  /// All point indices within Euclidean `radius` of `query`
  /// (inclusive boundary), in ascending index order.
  std::vector<std::size_t> radius_query(std::span<const double> query,
                                        double radius) const;

  /// As radius_query but appends into `out` (cleared first); avoids
  /// reallocation in DBSCAN's inner loop.
  void radius_query(std::span<const double> query, double radius,
                    std::vector<std::size_t>& out) const;

private:
  struct Node {
    // Leaf: [begin, end) range in index_. Internal: split dim/value and kids.
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint16_t split_dim = 0;
    double split_value = 0.0;
    bool is_leaf() const { return left < 0; }
  };

  struct KnnHeap;

  std::int32_t build(std::size_t begin, std::size_t end);
  void search_nearest(std::int32_t node, std::span<const double> query,
                      double& best_sq, std::size_t& best_idx) const;
  void search_knn(std::int32_t node, std::span<const double> query,
                  KnnHeap& heap) const;
  void search_radius(std::int32_t node, std::span<const double> query,
                     double radius_sq, std::vector<std::size_t>& out) const;

  const PointSet& points_;
  std::size_t leaf_size_;
  std::vector<std::size_t> index_;  // permutation of point indices
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace perftrack::geom
