#pragma once
// Grid-accelerated exact nearest-neighbour queries over a PointSet.
//
// The displacement evaluator's hot query is "which point of the other
// frame is nearest to this one" — the same locality problem grid DBSCAN
// solved for eps-neighbourhoods. GridNn answers it with an expanding
// cell-ring search over a CSR uniform grid: scan the query's own cell,
// then the ring of cells one step out, and so on, pruning each candidate
// cell by the exact distance to its bounding box and stopping as soon as
// no unvisited ring can hold a closer (or equally close, lower-index)
// point. On the pipeline's dense normalised clouds the first occupied
// ring almost always settles the answer, so a query touches a handful of
// contiguous cells instead of walking a tree.
//
// Unlike GridIndex (which indexes a caller-owned PointSet in place),
// GridNn copies the coordinates into cell-grouped per-dimension columns:
// scanning a bucket reads consecutive doubles per axis — the SoA layout
// the batched classification sweep wants — and the index is
// self-contained, with no lifetime tie to the source PointSet.
//
// Contract: nearest() returns exactly what KdTree::nearest returns —
// the index (into the source PointSet's original numbering) of the
// closest point, ties broken by the lowest index. The displacement
// engine's byte-identity across engines rests on this; it is pinned by
// tests/geom/test_grid_nn.cpp against both brute force and the kd-tree.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/pointset.hpp"

namespace perftrack::geom {

class GridNn {
public:
  /// Hard ceiling on the cell table (same rationale as GridIndex).
  static constexpr std::size_t kMaxCellCount = std::size_t{1} << 22;

  /// Build over `points` with cubic cells of edge `cell_size` (> 0); the
  /// coordinates are copied, so `points` may be discarded afterwards.
  /// Throws when the data spread and cell size would need more than
  /// kMaxCellCount cells — callers wanting a graceful fallback should use
  /// build() instead.
  GridNn(const PointSet& points, double cell_size);

  /// Build with an automatically sized cell (targeting a few points per
  /// occupied cell), or nullptr when a grid is not applicable: empty or
  /// zero-dimensional input, more than 3 dimensions, or a spread/cell
  /// ratio whose cell table would overflow kMaxCellCount. Callers fall
  /// back to the kd-tree exactly as dbscan() does.
  static std::unique_ptr<GridNn> build(const PointSet& points);

  std::size_t size() const { return orig_.size(); }
  bool empty() const { return orig_.empty(); }
  std::size_t dims() const { return res_.size(); }
  std::size_t cell_count() const { return cells_; }
  double cell_size() const { return cell_size_; }

  /// "No hint" sentinel for the warm-started overload below.
  static constexpr std::size_t kNoHint = static_cast<std::size_t>(-1);

  /// Index of the nearest point to `query` in the source PointSet's
  /// numbering, ties broken by the lowest index — the exact contract of
  /// KdTree::nearest. size() must be > 0.
  std::size_t nearest(std::span<const double> query) const {
    return nearest(query, kNoHint);
  }

  /// Same contract, warm-started: `hint` (an original index, or kNoHint)
  /// seeds the search radius with that point's distance before the ring
  /// walk, which then only visits cells that could still hold a closer or
  /// equally-close lower-index point. The hint never changes the answer —
  /// it only tightens the initial bound — so callers may pass any index
  /// (typically the previous query's result, since consecutive queries
  /// tend to be spatially coherent).
  std::size_t nearest(std::span<const double> query, std::size_t hint) const;

private:
  std::size_t scan_all(std::span<const double> query) const;
  void scan_bucket(std::size_t cell, std::span<const double> query,
                   double& best_sq, std::size_t& best_idx) const;

  double cell_size_ = 0.0;
  std::vector<double> lo_;           // per-dim lower bound of the data
  std::vector<std::size_t> res_;     // per-dim cell resolution (>= 1)
  std::vector<std::size_t> stride_;  // per-dim linearisation stride
  std::size_t cells_ = 0;

  // CSR buckets over cell-grouped copies: slot s of cell c (s in
  // [cell_start_[c], cell_start_[c + 1])) holds original point
  // orig_[s] with coordinates col_[d][s]. Slots within a cell are
  // ascending by original index. slot_of_ inverts orig_ so a warm-start
  // hint (an original index) can find its coordinates.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> orig_;
  std::vector<std::uint32_t> slot_of_;
  std::vector<std::vector<double>> col_;  // [dim][slot]
};

}  // namespace perftrack::geom
