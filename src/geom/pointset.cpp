#include "geom/pointset.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace perftrack::geom {

PointSet::PointSet(std::size_t dims, std::vector<double> data)
    : dims_(dims), data_(std::move(data)) {
  PT_REQUIRE(dims_ > 0, "point set needs at least one dimension");
  PT_REQUIRE(data_.size() % dims_ == 0,
             "data length must be a multiple of dims");
}

void PointSet::add(std::span<const double> coords) {
  PT_REQUIRE(dims_ > 0, "point set dims not configured");
  PT_REQUIRE(coords.size() == dims_, "coordinate count mismatch");
  data_.insert(data_.end(), coords.begin(), coords.end());
}

std::vector<double> PointSet::min_corner() const {
  std::vector<double> lo(dims_, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < size(); ++i) {
    auto p = (*this)[i];
    for (std::size_t d = 0; d < dims_; ++d) lo[d] = std::min(lo[d], p[d]);
  }
  if (empty()) lo.assign(dims_, 0.0);
  return lo;
}

std::vector<double> PointSet::max_corner() const {
  std::vector<double> hi(dims_, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < size(); ++i) {
    auto p = (*this)[i];
    for (std::size_t d = 0; d < dims_; ++d) hi[d] = std::max(hi[d], p[d]);
  }
  if (empty()) hi.assign(dims_, 0.0);
  return hi;
}

std::vector<double> PointSet::centroid() const {
  std::vector<double> c(dims_, 0.0);
  if (empty()) return c;
  for (std::size_t i = 0; i < size(); ++i) {
    auto p = (*this)[i];
    for (std::size_t d = 0; d < dims_; ++d) c[d] += p[d];
  }
  for (double& v : c) v /= static_cast<double>(size());
  return c;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  PT_ASSERT(a.size() == b.size(), "dimension mismatch in distance");
  double s = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace perftrack::geom
