#pragma once
// Dense N-dimensional point storage.
//
// Points live in a flat row-major buffer (point-major) so neighbour queries
// walk contiguous memory (Core Guidelines Per.16/Per.19: compact data,
// predictable access). Dimensionality is dynamic because the metric space is
// chosen at run time (the paper defaults to 2-D Instructions x IPC but the
// technique generalises to any number of metrics).

#include <cstddef>
#include <span>
#include <vector>

namespace perftrack::geom {

class PointSet {
public:
  PointSet() = default;
  explicit PointSet(std::size_t dims) : dims_(dims) {}
  PointSet(std::size_t dims, std::vector<double> data);

  std::size_t dims() const { return dims_; }
  std::size_t size() const { return dims_ ? data_.size() / dims_ : 0; }
  bool empty() const { return data_.empty(); }

  /// Append one point; coords.size() must equal dims().
  void add(std::span<const double> coords);

  /// Read-only view of point `i`.
  std::span<const double> operator[](std::size_t i) const {
    return {data_.data() + i * dims_, dims_};
  }

  /// Mutable view of point `i`.
  std::span<double> mutable_point(std::size_t i) {
    return {data_.data() + i * dims_, dims_};
  }

  std::span<const double> raw() const { return data_; }

  void reserve(std::size_t points) { data_.reserve(points * dims_); }

  /// Coordinate-wise minimum/maximum across all points.
  std::vector<double> min_corner() const;
  std::vector<double> max_corner() const;

  /// Arithmetic mean of all points; empty set yields all-zero centroid.
  std::vector<double> centroid() const;

private:
  std::size_t dims_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two equal-length coordinate spans.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance.
double distance(std::span<const double> a, std::span<const double> b);

}  // namespace perftrack::geom
