#include "geom/grid_nn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "geom/grid_index.hpp"

namespace perftrack::geom {

namespace {

/// Dimensionality cap that keeps per-query state in fixed-size stack
/// arrays (no allocation on the hot path). The pipeline's metric spaces
/// are 2-D or 3-D; build() vetoes anything above 3 anyway.
constexpr std::size_t kMaxDims = 8;

/// Queries further outside the data box than this many cells fall back to
/// a full scan: the ring walk would spin through that many empty rings
/// before reaching the data, and a query that far out is pathological for
/// a grid in the first place.
constexpr std::ptrdiff_t kFarRings = 4096;

/// Per-dim resolution (same saturation rationale as GridIndex).
std::size_t resolution(double lo, double hi, double cell) {
  double extent = hi - lo;
  if (!(extent > 0.0)) return 1;
  double cells = std::floor(extent / cell);
  if (!(cells < 9.0e18)) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(cells) + 1;
}

}  // namespace

GridNn::GridNn(const PointSet& points, double cell_size)
    : cell_size_(cell_size) {
  PT_REQUIRE(cell_size > 0.0, "grid cell size must be positive");
  PT_REQUIRE(points.dims() >= 1 && points.dims() <= kMaxDims,
             "grid NN index supports 1 to 8 dimensions");
  PT_REQUIRE(points.size() < 0xffffffffull,
             "grid NN index limited to < 2^32 points");
  const std::size_t dims = points.dims();
  const std::size_t n = points.size();

  lo_ = n == 0 ? std::vector<double>(dims, 0.0) : points.min_corner();
  const std::vector<double> hi =
      n == 0 ? std::vector<double>(dims, 0.0) : points.max_corner();
  res_.resize(dims);
  stride_.resize(dims);
  cells_ = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    res_[d] = resolution(lo_[d], hi[d], cell_size);
    stride_[d] = cells_;
    PT_REQUIRE(cells_ <= kMaxCellCount / res_[d],
               "grid NN cell table overflow: " + std::to_string(res_[d]) +
                   " cells along dim " + std::to_string(d) +
                   " exceed the limit; use a larger cell size or a kd-tree");
    cells_ *= res_[d];
  }

  // Cell of each point, clamped to the boundary cells against FP rounding.
  auto cell_of = [&](std::span<const double> p) {
    std::size_t cell = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      double offset = std::floor((p[d] - lo_[d]) / cell_size_);
      std::size_t c = offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
      if (c >= res_[d]) c = res_[d] - 1;
      cell += c * stride_[d];
    }
    return cell;
  };

  // CSR buckets in two counting passes, then the cell-grouped SoA copy.
  // Filling in point order keeps every bucket ascending by original
  // index, which the lowest-index tie-break leans on.
  std::vector<std::uint32_t> cell_of_point(n);
  cell_start_.assign(cells_ + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cell = static_cast<std::uint32_t>(cell_of(points[i]));
    cell_of_point[i] = cell;
    ++cell_start_[cell + 1];
  }
  for (std::size_t c = 0; c < cells_; ++c)
    cell_start_[c + 1] += cell_start_[c];
  orig_.resize(n);
  slot_of_.resize(n);
  col_.assign(dims, std::vector<double>(n));
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = cursor[cell_of_point[i]]++;
    orig_[slot] = static_cast<std::uint32_t>(i);
    slot_of_[i] = slot;
    auto p = points[i];
    for (std::size_t d = 0; d < dims; ++d) col_[d][slot] = p[d];
  }
}

std::unique_ptr<GridNn> GridNn::build(const PointSet& points) {
  const std::size_t n = points.size();
  const std::size_t dims = points.dims();
  if (n == 0 || dims == 0 || dims > 3) return nullptr;

  const std::vector<double> lo = points.min_corner();
  const std::vector<double> hi = points.max_corner();
  double max_extent = 0.0;
  for (std::size_t d = 0; d < dims; ++d)
    max_extent = std::max(max_extent, hi[d] - lo[d]);
  if (!std::isfinite(max_extent)) return nullptr;
  // All-duplicate cloud: any positive cell works, everything shares one.
  if (!(max_extent > 0.0)) max_extent = 1.0;

  // Cell edge targeting a handful of points per occupied cell on
  // uniform-ish data; clustered data leaves most cells empty and the
  // dense ones larger, which the ring search absorbs (the first occupied
  // ring usually settles the query).
  double target = std::ceil(
      std::pow(static_cast<double>(n) / 4.0, 1.0 / static_cast<double>(dims)));
  target = std::clamp(target, 1.0, 2048.0);
  const double cell = max_extent / target;
  if (!(cell > 0.0) ||
      GridIndex::plan_cells(points, cell, kMaxCellCount) == 0)
    return nullptr;
  return std::make_unique<GridNn>(points, cell);
}

void GridNn::scan_bucket(std::size_t cell, std::span<const double> query,
                         double& best_sq, std::size_t& best_idx) const {
  const std::uint32_t begin = cell_start_[cell];
  const std::uint32_t end = cell_start_[cell + 1];
  if (dims() == 2) {
    // The dominant case: contiguous per-axis columns, trivially
    // vectorisable distance kernel.
    const double* xs = col_[0].data();
    const double* ys = col_[1].data();
    const double qx = query[0], qy = query[1];
    for (std::uint32_t s = begin; s < end; ++s) {
      const double dx = xs[s] - qx, dy = ys[s] - qy;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_sq || (d2 == best_sq && orig_[s] < best_idx)) {
        best_sq = d2;
        best_idx = orig_[s];
      }
    }
    return;
  }
  for (std::uint32_t s = begin; s < end; ++s) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      const double diff = col_[d][s] - query[d];
      d2 += diff * diff;
    }
    if (d2 < best_sq || (d2 == best_sq && orig_[s] < best_idx)) {
      best_sq = d2;
      best_idx = orig_[s];
    }
  }
}

std::size_t GridNn::scan_all(std::span<const double> query) const {
  double best_sq = std::numeric_limits<double>::infinity();
  std::size_t best_idx = orig_[0];
  for (std::size_t c = 0; c < cells_; ++c)
    scan_bucket(c, query, best_sq, best_idx);
  return best_idx;
}

std::size_t GridNn::nearest(std::span<const double> query,
                            std::size_t hint) const {
  PT_REQUIRE(!empty(), "nearest() on empty grid");
  PT_REQUIRE(query.size() == dims(), "query dimension mismatch");
  const std::size_t dims_n = dims();

  // Virtual (unclamped) cell coordinate of the query per dim. The ring
  // bounds below assume the query sits inside this virtual cell, which a
  // cast of a non-finite or astronomically large offset would break —
  // such queries take the exact full scan instead.
  std::array<std::ptrdiff_t, kMaxDims> qc;
  std::ptrdiff_t first_ring = 0;   // smallest ring intersecting the grid
  std::ptrdiff_t last_ring = 0;    // largest ring intersecting the grid
  for (std::size_t d = 0; d < dims_n; ++d) {
    const double offset = std::floor((query[d] - lo_[d]) / cell_size_);
    if (!(std::abs(offset) <= 1e15)) return scan_all(query);
    qc[d] = static_cast<std::ptrdiff_t>(offset);
    const auto hi_c = static_cast<std::ptrdiff_t>(res_[d]) - 1;
    const std::ptrdiff_t below = -qc[d];          // cells to reach coord 0
    const std::ptrdiff_t above = qc[d] - hi_c;    // cells past the far end
    first_ring = std::max({first_ring, below, above});
    last_ring = std::max({last_ring, std::abs(qc[d]), std::abs(hi_c - qc[d])});
  }
  if (first_ring > kFarRings) return scan_all(query);

  double best_sq = std::numeric_limits<double>::infinity();
  std::size_t best_idx = orig_[0];

  // Seed the bound from the hint point, when given. Every cell that could
  // hold a strictly closer point — or an equally close one with a lower
  // index — is still visited below (the break and the box prune are both
  // strict), so the hint cannot change the answer, only shrink the walk.
  if (hint < slot_of_.size()) {
    const std::uint32_t slot = slot_of_[hint];
    double d2 = 0.0;
    for (std::size_t d = 0; d < dims_n; ++d) {
      const double diff = col_[d][slot] - query[d];
      d2 += diff * diff;
    }
    best_sq = d2;
    best_idx = hint;
  }

  // Query's position inside its virtual cell, used for the per-ring lower
  // bound: a cell at offset +r along dim d is at least r*cell - frac away,
  // one at -r at least (r-1)*cell + frac. Every ring-r cell has some dim
  // pinned at +-r, so the min over dims and signs bounds the whole ring —
  // much tighter than the bare (r-1)*cell when the query sits mid-cell,
  // and it lets dense queries stop after scanning their own cell.
  std::array<double, kMaxDims> frac;
  for (std::size_t d = 0; d < dims_n; ++d)
    frac[d] = query[d] - (lo_[d] + static_cast<double>(qc[d]) * cell_size_);

  // Scan one cell: skip empties, then prune on the exact distance from
  // the query to the cell's bounding box. The prune is strict ('<=' keeps
  // the scan), so boxes touching at exactly best_sq still get scanned —
  // their points may tie at a lower index.
  auto visit = [&](const std::array<std::ptrdiff_t, kMaxDims>& cur) {
    std::size_t cell = 0;
    for (std::size_t d = 0; d < dims_n; ++d)
      cell += static_cast<std::size_t>(cur[d]) * stride_[d];
    if (cell_start_[cell] == cell_start_[cell + 1]) return;
    double box_d2 = 0.0;
    for (std::size_t d = 0; d < dims_n; ++d) {
      const double cell_lo = lo_[d] + static_cast<double>(cur[d]) * cell_size_;
      const double gap = std::max(
          {0.0, cell_lo - query[d], query[d] - (cell_lo + cell_size_)});
      box_d2 += gap * gap;
    }
    if (box_d2 <= best_sq) scan_bucket(cell, query, best_sq, best_idx);
  };

  std::array<std::ptrdiff_t, kMaxDims> face_lo, face_hi, cursor;
  for (std::ptrdiff_t r = first_ring; r <= last_ring; ++r) {
    // Stop once even the closest conceivable cell of this ring cannot
    // beat the best; '>' not '>=', so an exact tie in a farther ring can
    // still win on a lower index. (The bound ignores clamping — a clipped
    // ring only moves farther away — so it stays a valid lower bound.)
    if (r >= 1) {
      double ring_min = std::numeric_limits<double>::infinity();
      for (std::size_t d = 0; d < dims_n; ++d) {
        const double up = static_cast<double>(r) * cell_size_ - frac[d];
        const double down =
            static_cast<double>(r - 1) * cell_size_ + frac[d];
        ring_min = std::min({ring_min, up, down});
      }
      ring_min = std::max(ring_min, 0.0);
      if (ring_min * ring_min > best_sq) break;
    }
    if (r == 0) {  // ring 0 is the query's own cell (in bounds: first_ring=0)
      for (std::size_t d = 0; d < dims_n; ++d) cursor[d] = qc[d];
      visit(cursor);
      continue;
    }

    // Enumerate only the shell (Chebyshev distance exactly r): for each
    // face dim fd and sign, pin cursor[fd] = qc[fd] +- r; dims below fd
    // range strictly inside (-r, r) and dims above range over [-r, r], so
    // every shell cell is owned by exactly one face — the lowest dim
    // where its offset hits +-r. Clamping to the grid box preserves that
    // ownership; a face whose pinned coordinate falls outside is skipped.
    for (std::size_t fd = 0; fd < dims_n; ++fd) {
      for (int sign = -1; sign <= 1; sign += 2) {
        const std::ptrdiff_t pinned = qc[fd] + sign * r;
        if (pinned < 0 || pinned >= static_cast<std::ptrdiff_t>(res_[fd]))
          continue;
        bool face_clipped_away = false;
        for (std::size_t j = 0; j < dims_n; ++j) {
          if (j == fd) {
            face_lo[j] = face_hi[j] = pinned;
          } else {
            const std::ptrdiff_t radius = j < fd ? r - 1 : r;
            face_lo[j] = std::max<std::ptrdiff_t>(0, qc[j] - radius);
            face_hi[j] = std::min(static_cast<std::ptrdiff_t>(res_[j]) - 1,
                                  qc[j] + radius);
            if (face_lo[j] > face_hi[j]) {
              face_clipped_away = true;
              break;
            }
          }
          cursor[j] = face_lo[j];
        }
        if (face_clipped_away) continue;
        for (;;) {
          visit(cursor);
          std::size_t j = 0;
          while (j < dims_n && (j == fd || cursor[j] == face_hi[j])) {
            cursor[j] = face_lo[j];
            ++j;
          }
          if (j == dims_n) break;
          ++cursor[j];
        }
      }
    }
  }
  return best_idx;
}

}  // namespace perftrack::geom
