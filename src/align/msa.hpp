#pragma once
// Star-progressive multiple sequence alignment.
//
// The SPMD evaluator aligns the per-task cluster sequences of one experiment
// into a global alignment: clusters of different tasks that land in the same
// column are being executed simultaneously (paper §3.2 / [8]). We use the
// classic centre-star heuristic: pick a centre sequence, align every other
// sequence to it pairwise, and merge under "once a gap, always a gap".
// Exact MSA is NP-hard; for the highly regular SPMD sequences here the star
// heuristic recovers the phase structure reliably and runs in
// O(k · L²) for k sequences of length L.
//
// Two implementation levers keep the output a pure function of the input:
//
//  * Pairwise memoisation — SPMD tasks mostly share one sequence, so each
//    distinct member sequence is aligned against the current centre once
//    and duplicates reuse the result (the alignment depends only on the
//    centre state and the member symbols).
//  * Speculative parallelism — members must merge in input order because a
//    merge that re-gaps the centre changes what later members align
//    against. With a thread pool, pending members are aligned against the
//    current centre in parallel rounds; the serial merge walk accepts
//    results in input order up to the first centre change and recomputes
//    the rest next round. Accepted alignments are exactly the ones the
//    serial loop computes, so the result is bit-identical at any thread
//    count (including none).

#include <span>
#include <vector>

#include "align/nw.hpp"

namespace perftrack {
class ThreadPool;
}

namespace perftrack::align {

/// A gapped alignment of k sequences over common columns.
class MultipleAlignment {
public:
  MultipleAlignment() = default;

  std::size_t sequence_count() const { return rows_.size(); }
  std::size_t column_count() const {
    return rows_.empty() ? 0 : rows_.front().size();
  }

  /// Row `s` (gapped copy of input sequence s, kGap where padded).
  std::span<const Symbol> row(std::size_t s) const { return rows_[s]; }

  /// The symbols of column `c`, one per sequence (may contain kGap).
  std::vector<Symbol> column(std::size_t c) const;

  /// Most frequent non-gap symbol per column (ties -> smaller symbol).
  /// Columns that are all gaps are skipped, so the result is a plain
  /// ungapped sequence usable as the experiment's representative
  /// "execution sequence".
  std::vector<Symbol> consensus() const;

  /// Internal/builder access.
  std::vector<std::vector<Symbol>>& rows() { return rows_; }
  const std::vector<std::vector<Symbol>>& rows() const { return rows_; }

private:
  std::vector<std::vector<Symbol>> rows_;
};

/// Centre-star MSA over `sequences`. The centre is the longest sequence
/// (ties -> lowest index). Row order matches input order. An empty input
/// yields an empty alignment; empty member sequences become all-gap rows.
/// `engine` selects the pairwise DP; `pool` (optional) parallelises the
/// per-member alignments — the result is bit-identical for any engine,
/// pool, and thread count.
MultipleAlignment star_align(const std::vector<std::vector<Symbol>>& sequences,
                             const AlignmentScores& scores = {},
                             AlignmentEngine engine = AlignmentEngine::kAuto,
                             ThreadPool* pool = nullptr);

}  // namespace perftrack::align
