#pragma once
// Needleman–Wunsch global sequence alignment.
//
// The SPMD-simultaneity and execution-sequence evaluators (paper §3.2 and
// §3.4, building on González et al. [8]) reduce to globally aligning
// sequences of cluster identifiers. This is the classic O(|a|·|b|) dynamic
// program with linear gap penalty; the scoring can be the default
// match/mismatch scheme or an arbitrary symbol-pair function (used by the
// execution-sequence evaluator, whose "match" is defined by pivot relations
// between two *different* experiments' identifier spaces).
//
// Two engines compute the same alignment:
//
//  * kFull — the reference (n+1)x(m+1) dynamic program.
//  * kBanded — an adaptive diagonal corridor. SPMD cluster sequences are
//    near-identical, so the optimal path hugs the diagonal; the banded
//    engine fills only the cells within a corridor of offsets i-j, widens
//    and re-runs when the per-row optimum touches the corridor boundary,
//    and certifies the result against an upper bound on every path that
//    leaves the corridor. The certificate makes the equality *provable*,
//    tie-breaking included: the banded engine only returns when every
//    complete path visiting an out-of-corridor cell scores strictly below
//    the banded optimum, which forces the full DP's deterministic
//    traceback (diagonal > up > left on ties) through the corridor along
//    the exact cells the banded traceback visits. Otherwise it widens
//    (doubling) until the corridor covers the whole matrix, at which point
//    it *is* the full DP.
//
// kAuto picks the banded engine when the scoring scheme admits the
// certificate (negative gap penalty below half the maximum pair score) and
// the problem is big enough to profit; kFull/kBanded force an engine.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace perftrack::align {

/// A sequence symbol; cluster identifiers are non-negative.
using Symbol = std::int32_t;

/// Gap marker inserted by alignment.
inline constexpr Symbol kGap = -1;

struct AlignmentScores {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = -1.0;
};

/// Which dynamic program computes the alignment. All three produce
/// byte-identical results (score, rows, tie-broken traceback).
enum class AlignmentEngine {
  kAuto,    ///< banded when the scoring admits it and the input is large
  kFull,    ///< reference full-matrix DP
  kBanded,  ///< force the certified banded DP (falls back when ineligible)
};

/// "auto" / "full" / "banded".
const char* to_string(AlignmentEngine engine);

/// Inverse of to_string; nullopt for unknown names.
std::optional<AlignmentEngine> parse_alignment_engine(std::string_view name);

/// Result of a pairwise global alignment: both sequences padded with kGap to
/// a common length.
struct PairAlignment {
  std::vector<Symbol> a;
  std::vector<Symbol> b;
  double score = 0.0;

  std::size_t length() const { return a.size(); }

  /// Count of columns where both symbols are non-gap and equal.
  std::size_t matches() const;

  /// matches() / max(|a|,|b| original lengths); 1.0 for two empty sequences.
  double identity() const;
};

/// Align with the default match/mismatch/gap scheme.
PairAlignment needleman_wunsch(std::span<const Symbol> a,
                               std::span<const Symbol> b,
                               const AlignmentScores& scores = {},
                               AlignmentEngine engine = AlignmentEngine::kAuto);

/// Align with an arbitrary pair score and linear gap penalty (full DP: the
/// banded certificate needs a pair-score bound the callable cannot supply).
PairAlignment needleman_wunsch(
    std::span<const Symbol> a, std::span<const Symbol> b,
    const std::function<double(Symbol, Symbol)>& pair_score,
    double gap_penalty);

/// Align with an arbitrary pair score, an engine choice, and the bound the
/// banded certificate needs: `max_pair_score` must satisfy
/// pair_score(x, y) <= max_pair_score for every symbol pair the sequences
/// can form. An unsound bound breaks the equality guarantee; when in doubt
/// use the kFull overload above.
PairAlignment needleman_wunsch(
    std::span<const Symbol> a, std::span<const Symbol> b,
    const std::function<double(Symbol, Symbol)>& pair_score,
    double gap_penalty, AlignmentEngine engine, double max_pair_score);

}  // namespace perftrack::align
