#pragma once
// Needleman–Wunsch global sequence alignment.
//
// The SPMD-simultaneity and execution-sequence evaluators (paper §3.2 and
// §3.4, building on González et al. [8]) reduce to globally aligning
// sequences of cluster identifiers. This is the classic O(|a|·|b|) dynamic
// program with linear gap penalty; the scoring can be the default
// match/mismatch scheme or an arbitrary symbol-pair function (used by the
// execution-sequence evaluator, whose "match" is defined by pivot relations
// between two *different* experiments' identifier spaces).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace perftrack::align {

/// A sequence symbol; cluster identifiers are non-negative.
using Symbol = std::int32_t;

/// Gap marker inserted by alignment.
inline constexpr Symbol kGap = -1;

struct AlignmentScores {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = -1.0;
};

/// Result of a pairwise global alignment: both sequences padded with kGap to
/// a common length.
struct PairAlignment {
  std::vector<Symbol> a;
  std::vector<Symbol> b;
  double score = 0.0;

  std::size_t length() const { return a.size(); }

  /// Count of columns where both symbols are non-gap and equal.
  std::size_t matches() const;

  /// matches() / max(|a|,|b| original lengths); 1.0 for two empty sequences.
  double identity() const;
};

/// Align with the default match/mismatch/gap scheme.
PairAlignment needleman_wunsch(std::span<const Symbol> a,
                               std::span<const Symbol> b,
                               const AlignmentScores& scores = {});

/// Align with an arbitrary pair score and linear gap penalty.
PairAlignment needleman_wunsch(
    std::span<const Symbol> a, std::span<const Symbol> b,
    const std::function<double(Symbol, Symbol)>& pair_score,
    double gap_penalty);

}  // namespace perftrack::align
