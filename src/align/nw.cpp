#include "align/nw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::align {

std::size_t PairAlignment::matches() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != kGap && a[i] == b[i]) ++n;
  return n;
}

double PairAlignment::identity() const {
  std::size_t la = 0, lb = 0;
  for (Symbol s : a)
    if (s != kGap) ++la;
  for (Symbol s : b)
    if (s != kGap) ++lb;
  std::size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return static_cast<double>(matches()) / static_cast<double>(longest);
}

const char* to_string(AlignmentEngine engine) {
  switch (engine) {
    case AlignmentEngine::kAuto: return "auto";
    case AlignmentEngine::kFull: return "full";
    case AlignmentEngine::kBanded: return "banded";
  }
  return "auto";
}

std::optional<AlignmentEngine> parse_alignment_engine(std::string_view name) {
  if (name == "auto") return AlignmentEngine::kAuto;
  if (name == "full") return AlignmentEngine::kFull;
  if (name == "banded") return AlignmentEngine::kBanded;
  return std::nullopt;
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// kAuto only bands inputs with at least this many full-DP cells; below it
/// the banded bookkeeping costs more than the cells it skips.
constexpr std::size_t kAutoBandedMinCells = 4096;

/// Initial corridor half-width; doubles on every failed attempt.
constexpr std::ptrdiff_t kInitialHalfWidth = 8;

/// Reference full-matrix DP. Templated on the score callable so the
/// default match/mismatch scheme pays no std::function indirection per
/// cell. move stores the traceback direction: 0 = diagonal (align a[i-1]
/// with b[j-1]), 1 = up (gap in b), 2 = left (gap in a). Ties prefer
/// diagonal, then up — deterministic tracebacks.
template <typename Score>
PairAlignment full_dp(std::span<const Symbol> a, std::span<const Symbol> b,
                      const Score& pair_score, double gap_penalty) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  PT_COUNTER("alignment_cells", static_cast<double>(n * m));

  std::vector<double> dp((n + 1) * (m + 1), 0.0);
  std::vector<std::uint8_t> move((n + 1) * (m + 1), 0);
  auto at = [m](std::size_t i, std::size_t j) { return i * (m + 1) + j; };

  for (std::size_t i = 1; i <= n; ++i) {
    dp[at(i, 0)] = static_cast<double>(i) * gap_penalty;
    move[at(i, 0)] = 1;
  }
  for (std::size_t j = 1; j <= m; ++j) {
    dp[at(0, j)] = static_cast<double>(j) * gap_penalty;
    move[at(0, j)] = 2;
  }

  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      double diag = dp[at(i - 1, j - 1)] + pair_score(a[i - 1], b[j - 1]);
      double up = dp[at(i - 1, j)] + gap_penalty;
      double left = dp[at(i, j - 1)] + gap_penalty;
      double best = diag;
      std::uint8_t dir = 0;
      if (up > best) {
        best = up;
        dir = 1;
      }
      if (left > best) {
        best = left;
        dir = 2;
      }
      dp[at(i, j)] = best;
      move[at(i, j)] = dir;
    }
  }

  PairAlignment out;
  out.score = dp[at(n, m)];
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    std::uint8_t dir = move[at(i, j)];
    if (dir == 0) {
      out.a.push_back(a[i - 1]);
      out.b.push_back(b[j - 1]);
      --i;
      --j;
    } else if (dir == 1) {
      out.a.push_back(a[i - 1]);
      out.b.push_back(kGap);
      --i;
    } else {
      out.a.push_back(kGap);
      out.b.push_back(b[j - 1]);
      --j;
    }
  }
  std::reverse(out.a.begin(), out.a.end());
  std::reverse(out.b.begin(), out.b.end());
  return out;
}

/// One banded attempt over the offset corridor lo <= i-j <= hi.
///
/// Returns true iff the fill completed without the per-row optimum touching
/// a corridor (non-matrix) boundary AND the certificate held:
///
///   B > UB(G_min)
///
/// where B is the banded optimum, G_min the minimum number of gap moves any
/// complete path needs to visit an offset outside [lo, hi], and
/// UB(G) = (n+m-G)/2 * s_max + G * g the best score any path with G gap
/// moves can reach (every path satisfies #diagonals = (n+m-G)/2 exactly,
/// and UB is decreasing in G because g < s_max/2). The strict inequality
/// rules out ties, so *every* full-DP-optimal path stays inside the
/// corridor; since banded values are exact for any cell whose optimum is
/// achieved in-corridor, an induction down the traceback shows the banded
/// move choices reproduce the full DP's tie-broken traceback cell for cell.
template <typename Score>
bool banded_attempt(std::span<const Symbol> a, std::span<const Symbol> b,
                    const Score& pair_score, double gap_penalty, double s_max,
                    std::ptrdiff_t lo, std::ptrdiff_t hi, PairAlignment* out,
                    double* cells_filled) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(a.size());
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(b.size());
  const std::ptrdiff_t width = hi - lo + 1;

  // Row i covers columns [max(0, i-hi), min(m, i-lo)]; cell (i, j) lives at
  // column slot j - (i - hi) in its row.
  std::vector<double> dp(static_cast<std::size_t>((n + 1) * width), kNegInf);
  std::vector<std::uint8_t> move(static_cast<std::size_t>((n + 1) * width), 0);
  auto at = [hi, width](std::ptrdiff_t i, std::ptrdiff_t j) {
    return static_cast<std::size_t>(i * width + (j - (i - hi)));
  };

  double filled = 0.0;
  for (std::ptrdiff_t i = 0; i <= n; ++i) {
    const std::ptrdiff_t jlo = std::max<std::ptrdiff_t>(0, i - hi);
    const std::ptrdiff_t jhi = std::min<std::ptrdiff_t>(m, i - lo);
    double row_best = kNegInf;
    std::ptrdiff_t row_arg = jlo;
    for (std::ptrdiff_t j = jlo; j <= jhi; ++j) {
      double best;
      std::uint8_t dir;
      if (i == 0) {
        best = static_cast<double>(j) * gap_penalty;
        dir = j == 0 ? 0 : 2;
      } else if (j == 0) {
        best = static_cast<double>(i) * gap_penalty;
        dir = 1;
      } else {
        // The diagonal predecessor shares the offset, so it is always in
        // the corridor; up/left shift the offset by one and fall out at
        // the corridor edges.
        const std::ptrdiff_t k = i - j;
        best = dp[at(i - 1, j - 1)] + pair_score(a[i - 1], b[j - 1]);
        dir = 0;
        double up = k > lo ? dp[at(i - 1, j)] + gap_penalty : kNegInf;
        double left = k < hi ? dp[at(i, j - 1)] + gap_penalty : kNegInf;
        if (up > best) {
          best = up;
          dir = 1;
        }
        if (left > best) {
          best = left;
          dir = 2;
        }
      }
      dp[at(i, j)] = best;
      move[at(i, j)] = dir;
      if (best > row_best) {
        row_best = best;
        row_arg = j;
      }
    }
    filled += static_cast<double>(jhi - jlo + 1);

    // Adaptive contact check: the optimum drifting onto a corridor-cut
    // boundary means the band is too narrow where it matters — abort the
    // fill early and re-run wider instead of wasting the rest of the rows.
    const bool cut_left = i - hi > 0;   // jlo is a corridor edge, not j=0
    const bool cut_right = i - lo < m;  // jhi is a corridor edge, not j=m
    if ((cut_left && row_arg == jlo) || (cut_right && row_arg == jhi)) {
      *cells_filled += filled;
      return false;
    }
  }
  *cells_filled += filled;

  const double banded_best = dp[at(n, m)];

  // Certificate: minimum gap moves for a path to visit offset hi+1 (above)
  // or lo-1 (below), given offsets start at 0 and end at n-m.
  const double drift = static_cast<double>(n - m);
  const double exit_high = 2.0 * static_cast<double>(hi + 1) - drift;
  const double exit_low = drift - 2.0 * static_cast<double>(lo - 1);
  const double g_min = std::min(exit_high, exit_low);
  const double bound =
      0.5 * (static_cast<double>(n + m) - g_min) * s_max + g_min * gap_penalty;
  if (!(banded_best > bound)) return false;

  out->score = banded_best;
  out->a.clear();
  out->b.clear();
  std::ptrdiff_t i = n, j = m;
  while (i > 0 || j > 0) {
    std::uint8_t dir = move[at(i, j)];
    if (dir == 0) {
      out->a.push_back(a[static_cast<std::size_t>(i - 1)]);
      out->b.push_back(b[static_cast<std::size_t>(j - 1)]);
      --i;
      --j;
    } else if (dir == 1) {
      out->a.push_back(a[static_cast<std::size_t>(i - 1)]);
      out->b.push_back(kGap);
      --i;
    } else {
      out->a.push_back(kGap);
      out->b.push_back(b[static_cast<std::size_t>(j - 1)]);
      --j;
    }
  }
  std::reverse(out->a.begin(), out->a.end());
  std::reverse(out->b.begin(), out->b.end());
  return true;
}

/// Engine dispatch shared by both public scoring schemes.
template <typename Score>
PairAlignment align_sequences(std::span<const Symbol> a,
                              std::span<const Symbol> b,
                              const Score& pair_score, double gap_penalty,
                              double s_max, AlignmentEngine engine) {
  PT_SPAN("needleman_wunsch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(a.size());
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(b.size());

  // The certificate needs UB(G) decreasing in G: every extra pair of gap
  // moves trades one diagonal (<= s_max) for two gap penalties. Schemes
  // violating g < s_max/2 (gap-rewarding, or harshly negative matches)
  // take the reference engine; so do empty sequences (nothing to band).
  const bool certifiable = std::isfinite(s_max) && std::isfinite(gap_penalty) &&
                           gap_penalty < 0.0 && gap_penalty < s_max / 2.0;
  bool banded = certifiable && n > 0 && m > 0;
  if (engine == AlignmentEngine::kFull) banded = false;
  if (engine == AlignmentEngine::kAuto &&
      static_cast<std::size_t>(n) * static_cast<std::size_t>(m) <
          kAutoBandedMinCells)
    banded = false;
  if (!banded) return full_dp(a, b, pair_score, gap_penalty);

  PairAlignment out;
  double cells = 0.0;
  double widenings = 0.0;
  for (std::ptrdiff_t w = kInitialHalfWidth;; w *= 2) {
    const std::ptrdiff_t lo = std::min<std::ptrdiff_t>(0, n - m) - w;
    const std::ptrdiff_t hi = std::max<std::ptrdiff_t>(0, n - m) + w;
    if (lo <= -m && hi >= n) {
      // The corridor covers every cell: the banded fill *is* the full DP.
      out = full_dp(a, b, pair_score, gap_penalty);
      break;
    }
    if (banded_attempt(a, b, pair_score, gap_penalty, s_max, lo, hi, &out,
                       &cells))
      break;
    widenings += 1.0;
  }
  if (cells > 0.0) PT_COUNTER("alignment_cells", cells);
  if (widenings > 0.0) PT_COUNTER("alignment_band_widenings", widenings);
  return out;
}

}  // namespace

PairAlignment needleman_wunsch(std::span<const Symbol> a,
                               std::span<const Symbol> b,
                               const AlignmentScores& scores,
                               AlignmentEngine engine) {
  return align_sequences(
      a, b,
      [&scores](Symbol x, Symbol y) {
        return x == y ? scores.match : scores.mismatch;
      },
      scores.gap, std::max(scores.match, scores.mismatch), engine);
}

PairAlignment needleman_wunsch(
    std::span<const Symbol> a, std::span<const Symbol> b,
    const std::function<double(Symbol, Symbol)>& pair_score,
    double gap_penalty) {
  PT_SPAN("needleman_wunsch");
  return full_dp(a, b, pair_score, gap_penalty);
}

PairAlignment needleman_wunsch(
    std::span<const Symbol> a, std::span<const Symbol> b,
    const std::function<double(Symbol, Symbol)>& pair_score,
    double gap_penalty, AlignmentEngine engine, double max_pair_score) {
  return align_sequences(a, b, pair_score, gap_penalty, max_pair_score,
                         engine);
}

}  // namespace perftrack::align
