#include "align/nw.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::align {

std::size_t PairAlignment::matches() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != kGap && a[i] == b[i]) ++n;
  return n;
}

double PairAlignment::identity() const {
  std::size_t la = 0, lb = 0;
  for (Symbol s : a)
    if (s != kGap) ++la;
  for (Symbol s : b)
    if (s != kGap) ++lb;
  std::size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return static_cast<double>(matches()) / static_cast<double>(longest);
}

PairAlignment needleman_wunsch(std::span<const Symbol> a,
                               std::span<const Symbol> b,
                               const AlignmentScores& scores) {
  return needleman_wunsch(
      a, b,
      [&scores](Symbol x, Symbol y) {
        return x == y ? scores.match : scores.mismatch;
      },
      scores.gap);
}

PairAlignment needleman_wunsch(
    std::span<const Symbol> a, std::span<const Symbol> b,
    const std::function<double(Symbol, Symbol)>& pair_score,
    double gap_penalty) {
  PT_SPAN("needleman_wunsch");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  PT_COUNTER("alignment_cells", static_cast<double>(n * m));

  // dp is (n+1) x (m+1), row-major. move stores the traceback direction:
  // 0 = diagonal (align a[i-1] with b[j-1]), 1 = up (gap in b), 2 = left
  // (gap in a). Ties prefer diagonal, then up — deterministic tracebacks.
  std::vector<double> dp((n + 1) * (m + 1), 0.0);
  std::vector<std::uint8_t> move((n + 1) * (m + 1), 0);
  auto at = [m](std::size_t i, std::size_t j) { return i * (m + 1) + j; };

  for (std::size_t i = 1; i <= n; ++i) {
    dp[at(i, 0)] = static_cast<double>(i) * gap_penalty;
    move[at(i, 0)] = 1;
  }
  for (std::size_t j = 1; j <= m; ++j) {
    dp[at(0, j)] = static_cast<double>(j) * gap_penalty;
    move[at(0, j)] = 2;
  }

  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      double diag = dp[at(i - 1, j - 1)] + pair_score(a[i - 1], b[j - 1]);
      double up = dp[at(i - 1, j)] + gap_penalty;
      double left = dp[at(i, j - 1)] + gap_penalty;
      double best = diag;
      std::uint8_t dir = 0;
      if (up > best) {
        best = up;
        dir = 1;
      }
      if (left > best) {
        best = left;
        dir = 2;
      }
      dp[at(i, j)] = best;
      move[at(i, j)] = dir;
    }
  }

  PairAlignment out;
  out.score = dp[at(n, m)];
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    std::uint8_t dir = move[at(i, j)];
    if (dir == 0) {
      out.a.push_back(a[i - 1]);
      out.b.push_back(b[j - 1]);
      --i;
      --j;
    } else if (dir == 1) {
      out.a.push_back(a[i - 1]);
      out.b.push_back(kGap);
      --i;
    } else {
      out.a.push_back(kGap);
      out.b.push_back(b[j - 1]);
      --j;
    }
  }
  std::reverse(out.a.begin(), out.a.end());
  std::reverse(out.b.begin(), out.b.end());
  return out;
}

}  // namespace perftrack::align
