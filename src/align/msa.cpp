#include "align/msa.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::align {

std::vector<Symbol> MultipleAlignment::column(std::size_t c) const {
  PT_REQUIRE(c < column_count(), "column index out of range");
  std::vector<Symbol> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[c]);
  return out;
}

std::vector<Symbol> MultipleAlignment::consensus() const {
  std::vector<Symbol> out;
  for (std::size_t c = 0; c < column_count(); ++c) {
    std::map<Symbol, std::size_t> votes;
    for (const auto& row : rows_)
      if (row[c] != kGap) ++votes[row[c]];
    if (votes.empty()) continue;
    auto best = votes.begin();
    for (auto it = votes.begin(); it != votes.end(); ++it)
      if (it->second > best->second) best = it;
    out.push_back(best->first);
  }
  return out;
}

MultipleAlignment star_align(const std::vector<std::vector<Symbol>>& sequences,
                             const AlignmentScores& scores) {
  PT_SPAN("star_align");
  MultipleAlignment out;
  if (sequences.empty()) return out;

  // Centre = longest sequence; SPMD applications make every task's sequence
  // nearly identical, so any centre works, but the longest minimises gaps.
  std::size_t centre = 0;
  for (std::size_t s = 1; s < sequences.size(); ++s)
    if (sequences[s].size() > sequences[centre].size()) centre = s;

  // `master` is the progressively gapped centre sequence; rows hold each
  // input sequence gapped to master's current column structure.
  std::vector<Symbol> master = sequences[centre];
  std::vector<std::vector<Symbol>> rows(sequences.size());
  rows[centre] = master;

  for (std::size_t s = 0; s < sequences.size(); ++s) {
    if (s == centre) continue;
    PairAlignment pa = needleman_wunsch(master, sequences[s], scores);

    // pa.a is `master` with possible new gaps. Merge those new gaps into
    // every already-placed row ("once a gap, always a gap").
    if (pa.a != master) {
      std::vector<std::size_t> insert_before;  // positions in old master
      std::size_t mi = 0;
      for (std::size_t c = 0; c < pa.a.size(); ++c) {
        if (mi < master.size() && pa.a[c] == master[mi]) {
          ++mi;
        } else {
          PT_ASSERT(pa.a[c] == kGap, "centre symbols must be preserved");
          insert_before.push_back(mi);
        }
      }
      PT_ASSERT(mi == master.size(), "centre alignment dropped symbols");

      for (auto& row : rows) {
        if (row.empty()) continue;
        std::vector<Symbol> expanded;
        expanded.reserve(pa.a.size());
        std::size_t gap_cursor = 0;
        for (std::size_t i = 0; i <= master.size(); ++i) {
          while (gap_cursor < insert_before.size() &&
                 insert_before[gap_cursor] == i) {
            expanded.push_back(kGap);
            ++gap_cursor;
          }
          if (i < master.size()) expanded.push_back(row[i]);
        }
        row = std::move(expanded);
      }
      master = pa.a;
    }
    rows[s] = pa.b;
  }

  // Rows aligned before later master expansions were already expanded in the
  // loop; rows aligned after are at full length. Verify and emit.
  for (auto& row : rows) {
    PT_ASSERT(row.size() == master.size() || row.empty(),
              "row/master length mismatch after merge");
    if (row.empty()) row.assign(master.size(), kGap);
  }
  out.rows() = std::move(rows);
  return out;
}

}  // namespace perftrack::align
