#include "align/msa.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::align {

std::vector<Symbol> MultipleAlignment::column(std::size_t c) const {
  PT_REQUIRE(c < column_count(), "column index out of range");
  std::vector<Symbol> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[c]);
  return out;
}

std::vector<Symbol> MultipleAlignment::consensus() const {
  std::vector<Symbol> out;
  for (std::size_t c = 0; c < column_count(); ++c) {
    std::map<Symbol, std::size_t> votes;
    for (const auto& row : rows_)
      if (row[c] != kGap) ++votes[row[c]];
    if (votes.empty()) continue;
    auto best = votes.begin();
    for (auto it = votes.begin(); it != votes.end(); ++it)
      if (it->second > best->second) best = it;
    out.push_back(best->first);
  }
  return out;
}

namespace {

/// Orders pairwise-alignment memo keys by member-sequence content (the
/// keys point into the caller's `sequences`, which outlives the memo).
struct SequenceLess {
  bool operator()(const std::vector<Symbol>* x,
                  const std::vector<Symbol>* y) const {
    return *x < *y;
  }
};

using PairMemo =
    std::map<const std::vector<Symbol>*, PairAlignment, SequenceLess>;

/// Merge member `s`'s centre alignment into the running MSA state: fold
/// any new centre gaps into every already-placed row ("once a gap, always
/// a gap"), then place the member's gapped row. Returns true when the
/// centre gained gaps (later members must re-align).
bool merge_member(const PairAlignment& pa, std::size_t s,
                  std::vector<Symbol>& master,
                  std::vector<std::vector<Symbol>>& rows) {
  bool master_changed = false;
  if (pa.a != master) {
    std::vector<std::size_t> insert_before;  // positions in old master
    std::size_t mi = 0;
    for (std::size_t c = 0; c < pa.a.size(); ++c) {
      if (mi < master.size() && pa.a[c] == master[mi]) {
        ++mi;
      } else {
        PT_ASSERT(pa.a[c] == kGap, "centre symbols must be preserved");
        insert_before.push_back(mi);
      }
    }
    PT_ASSERT(mi == master.size(), "centre alignment dropped symbols");

    for (auto& row : rows) {
      if (row.empty()) continue;
      std::vector<Symbol> expanded;
      expanded.reserve(pa.a.size());
      std::size_t gap_cursor = 0;
      for (std::size_t i = 0; i <= master.size(); ++i) {
        while (gap_cursor < insert_before.size() &&
               insert_before[gap_cursor] == i) {
          expanded.push_back(kGap);
          ++gap_cursor;
        }
        if (i < master.size()) expanded.push_back(row[i]);
      }
      row = std::move(expanded);
    }
    master = pa.a;
    master_changed = true;
  }
  rows[s] = pa.b;
  return master_changed;
}

}  // namespace

MultipleAlignment star_align(const std::vector<std::vector<Symbol>>& sequences,
                             const AlignmentScores& scores,
                             AlignmentEngine engine, ThreadPool* pool) {
  PT_SPAN("star_align");
  MultipleAlignment out;
  if (sequences.empty()) return out;

  // Centre = longest sequence; SPMD applications make every task's sequence
  // nearly identical, so any centre works, but the longest minimises gaps.
  std::size_t centre = 0;
  for (std::size_t s = 1; s < sequences.size(); ++s)
    if (sequences[s].size() > sequences[centre].size()) centre = s;

  // `master` is the progressively gapped centre sequence; rows hold each
  // input sequence gapped to master's current column structure.
  std::vector<Symbol> master = sequences[centre];
  std::vector<std::vector<Symbol>> rows(sequences.size());
  rows[centre] = master;

  std::vector<std::size_t> pending;
  pending.reserve(sequences.size() - 1);
  for (std::size_t s = 0; s < sequences.size(); ++s)
    if (s != centre) pending.push_back(s);

  // Pairwise alignments against the *current* master, keyed by member
  // sequence content; a merge that re-gaps the master invalidates them all.
  PairMemo memo;
  const bool parallel = pool != nullptr && pool->thread_count() > 1;
  double nw_calls = 0.0;

  // Speculation window: how many members ahead of the merge point are
  // aligned against the current master per round. A merge that re-gaps the
  // master discards the computed-but-unmerged tail of the batch, so the
  // window starts at the pool width and resets there after every master
  // change (bounding waste per change), then doubles on fully-accepted
  // batches (master changes cluster in the early merges; the stable tail
  // gets full parallelism).
  const std::size_t min_window = parallel ? pool->thread_count() : 1;
  std::size_t window = min_window;

  std::size_t next = 0;
  while (next < pending.size()) {
    const std::size_t batch_end =
        std::min(pending.size(), next + window);

    std::vector<const std::vector<Symbol>*> missing;
    for (std::size_t p = next; p < batch_end; ++p) {
      const std::vector<Symbol>* seq = &sequences[pending[p]];
      if (memo.count(seq)) continue;
      // Reserve the key now so a duplicate later in the batch dedups.
      if (memo.emplace(seq, PairAlignment{}).second) missing.push_back(seq);
    }
    nw_calls += static_cast<double>(missing.size());
    if (parallel) {
      const std::vector<const char*> here = obs::current_span_path();
      pool->parallel_for(0, missing.size(), [&](std::size_t u) {
        obs::SpanContext ctx(here);
        memo.find(missing[u])->second =
            needleman_wunsch(master, *missing[u], scores, engine);
      });
    } else {
      for (const std::vector<Symbol>* seq : missing)
        memo.find(seq)->second = needleman_wunsch(master, *seq, scores,
                                                  engine);
    }

    // Accept in input order; the first merge that re-gaps the master makes
    // the rest of the batch stale — they re-align next round.
    bool master_changed = false;
    while (next < batch_end && !master_changed) {
      const std::size_t s = pending[next];
      master_changed = merge_member(memo.at(&sequences[s]), s, master, rows);
      ++next;
    }
    if (master_changed) {
      memo.clear();
      window = min_window;
    } else {
      window = std::min(window * 2, pending.size());
    }
  }

  if (obs::enabled()) {
    PT_COUNTER("star_align_members",
               static_cast<double>(sequences.size() - 1));
    PT_COUNTER("star_align_pairwise", nw_calls);
  }

  // Rows aligned before later master expansions were already expanded in the
  // loop; rows aligned after are at full length. Verify and emit.
  for (auto& row : rows) {
    PT_ASSERT(row.size() == master.size() || row.empty(),
              "row/master length mismatch after merge");
    if (row.empty()) row.assign(master.size(), kGap);
  }
  out.rows() = std::move(rows);
  return out;
}

}  // namespace perftrack::align
