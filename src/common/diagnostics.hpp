#pragma once
// Structured diagnostics for fault-tolerant ingestion.
//
// The trace readers (.ptt, .prv, .pcf) historically threw ParseError at the
// first malformed record, so one bad line killed a whole multi-experiment
// run. A Diagnostics collector decouples *detecting* a problem from
// *deciding* whether it is fatal:
//
//   * strict mode (the default) preserves the historical behaviour — the
//     first error-severity diagnostic throws ParseError immediately;
//   * lenient mode records the diagnostic and lets the reader skip or
//     repair the offending record, aborting only once a configurable error
//     budget is exhausted (too many errors in absolute count, or too large
//     a fraction of bad records at end of file).
//
// Every diagnostic is structured (severity, file, line, stable code,
// message) so tests can assert on golden diagnostics and the CLI can render
// a per-file summary after a degraded run.
//
//   Diagnostics diags = Diagnostics::lenient();
//   diags.set_file(path);
//   Trace t = read_trace(in, diags);     // skips bad records
//   if (!diags.ok()) std::cerr << diags.to_string();

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace perftrack {

enum class Severity { Note, Warning, Error };

/// Short lower-case name ("note", "warning", "error").
std::string_view severity_name(Severity severity);

/// One structured problem found while reading an input file.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string file;     ///< path, or "" for an anonymous stream
  int line = 0;         ///< 1-based line number; 0 = whole file
  std::string code;     ///< stable kebab-case id, e.g. "bad-number"
  std::string message;  ///< human-readable detail

  /// "error: trace.ptt:12: [bad-number] bad number: xyz"
  std::string to_string() const;
};

/// Lenient-mode abort thresholds. A reader calls count_record() once per
/// record processed so the fraction check has a denominator.
struct ErrorBudget {
  /// Abort once more than this many error diagnostics are recorded.
  std::size_t max_errors = 100;

  /// Abort (at finish()) when errors / records exceeds this fraction.
  /// Only checked when at least `min_records_for_fraction` records were
  /// seen, so a 2-line file with 1 bad line is not instantly fatal.
  double max_error_fraction = 0.5;
  std::size_t min_records_for_fraction = 8;
};

class Diagnostics {
public:
  /// Default-constructed collectors are strict.
  Diagnostics() = default;

  static Diagnostics strict() { return Diagnostics(); }
  static Diagnostics lenient(ErrorBudget budget = {}) {
    Diagnostics d;
    d.lenient_ = true;
    d.budget_ = budget;
    return d;
  }

  bool is_lenient() const { return lenient_; }
  const ErrorBudget& budget() const { return budget_; }

  /// File name stamped onto subsequently reported diagnostics.
  void set_file(std::string file) { file_ = std::move(file); }
  const std::string& file() const { return file_; }

  /// Record a diagnostic. In strict mode an Error throws ParseError with
  /// the formatted message; in lenient mode errors accumulate and throw
  /// ParseError only once budget().max_errors is exceeded. Notes and
  /// warnings never throw and never count against the budget.
  void report(Severity severity, int line, std::string code,
              std::string message);

  void error(int line, std::string code, std::string message) {
    report(Severity::Error, line, std::move(code), std::move(message));
  }
  void warning(int line, std::string code, std::string message) {
    report(Severity::Warning, line, std::move(code), std::move(message));
  }
  void note(int line, std::string code, std::string message) {
    report(Severity::Note, line, std::move(code), std::move(message));
  }

  /// Called by readers once per record processed (good or bad).
  void count_record() { ++records_; }
  std::size_t record_count() const { return records_; }

  /// End-of-file check: in lenient mode throws ParseError when the bad
  /// record fraction exceeds the budget. Strict mode: no-op (an error
  /// would already have thrown).
  void finish() const;

  const std::vector<Diagnostic>& entries() const { return entries_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool ok() const { return errors_ == 0; }
  bool empty() const { return entries_.empty(); }

  /// "3 errors, 1 warning in 120 records (trace.ptt)"
  std::string summary() const;

  /// Every entry, one rendered line each.
  std::string to_string() const;

private:
  bool lenient_ = false;
  ErrorBudget budget_;
  std::string file_;
  std::vector<Diagnostic> entries_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t records_ = 0;
};

}  // namespace perftrack
