#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace perftrack {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_si(double value, int decimals) {
  const double a = std::fabs(value);
  if (a >= 1e9) return format_double(value / 1e9, decimals) + "G";
  if (a >= 1e6) return format_double(value / 1e6, decimals) + "M";
  if (a >= 1e3) return format_double(value / 1e3, decimals) + "K";
  return format_double(value, decimals);
}

std::string format_percent(double fraction, int decimals) {
  double pct = fraction * 100.0;
  std::string s = format_double(pct, decimals) + "%";
  if (pct > 0.0) s.insert(s.begin(), '+');
  return s;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace perftrack
