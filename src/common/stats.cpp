#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace perftrack {

void RunningStats::add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  PT_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double sum_of(std::span<const double> values) {
  double s = 0.0;
  for (double v : values) s += v;
  return s;
}

double weighted_mean(std::span<const double> values,
                     std::span<const double> weights) {
  PT_REQUIRE(values.size() == weights.size(),
             "values and weights must have equal length");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    num += values[i] * weights[i];
    den += weights[i];
  }
  return den == 0.0 ? 0.0 : num / den;
}

double relative_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PT_REQUIRE(bins > 0, "histogram needs at least one bin");
  PT_REQUIRE(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

}  // namespace perftrack
