#pragma once
// Descriptive statistics used across the clustering and tracking stages.

#include <cstddef>
#include <span>
#include <vector>

namespace perftrack {

/// Streaming accumulator for count / mean / variance / extrema
/// (Welford's algorithm, numerically stable).
class RunningStats {
public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; p in [0,100]. Sorts a copy.
double percentile(std::span<const double> values, double p);

/// Arithmetic mean; 0 for an empty span.
double mean_of(std::span<const double> values);

/// Sum of values.
double sum_of(std::span<const double> values);

/// Weighted mean; 0 if total weight is 0.
double weighted_mean(std::span<const double> values,
                     std::span<const double> weights);

/// Relative change (b - a) / a as a fraction; 0 when a == 0.
double relative_change(double a, double b);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; out-of-range
/// values are clamped to the first/last bucket.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace perftrack
