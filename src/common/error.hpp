#pragma once
// Error handling primitives for perftrack.
//
// The library reports unrecoverable misuse and I/O failures with exceptions
// derived from Error. PT_REQUIRE is used to validate preconditions on public
// API boundaries; internal invariants use PT_ASSERT (disabled in release-like
// builds only if PT_NO_ASSERT is defined).

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace perftrack {

/// Base class for all perftrack exceptions.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Reading or writing a trace / report file failed.
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A file was syntactically or semantically malformed.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Build an IoError that names the failed action, the path, and — when the
/// C library recorded one — errno and its strerror text. Call immediately
/// after the failing I/O operation so errno is still meaningful.
inline IoError io_error(const std::string& action, const std::string& path) {
  int err = errno;
  std::string what = action + ": " + path;
  if (err != 0)
    what += ": " + std::string(std::strerror(err)) + " (errno " +
            std::to_string(err) + ")";
  return IoError(what);
}

namespace detail {
[[noreturn]] inline void raise_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace perftrack

/// Validate a precondition on a public API boundary; throws PreconditionError.
#define PT_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::perftrack::detail::raise_precondition(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
  } while (0)

/// Internal invariant check. Same mechanics as PT_REQUIRE; kept distinct so
/// the intent (bug in perftrack vs. bug in the caller) is visible at the site.
#define PT_ASSERT(expr, msg) PT_REQUIRE(expr, msg)
