#pragma once
// Deterministic random number generation.
//
// All stochastic parts of perftrack (the workload simulator, synthetic test
// fixtures) draw from Rng so that every experiment is reproducible from a
// seed. Rng wraps a 64-bit Mersenne Twister and exposes the handful of
// distributions the simulator needs. Independent sub-streams can be forked
// with derive(), which mixes a tag into the parent seed — forked streams do
// not consume numbers from the parent, so adding a phase to an application
// model never perturbs the random values of the other phases.

#include <cstdint>
#include <random>
#include <string_view>

namespace perftrack {

class Rng {
public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Fork an independent stream identified by (tag, index).
  /// Uses splitmix64-style mixing so nearby tags decorrelate.
  Rng derive(std::string_view tag, std::uint64_t index = 0) const {
    std::uint64_t h = seed_;
    for (char c : tag) h = mix(h ^ static_cast<std::uint64_t>(c));
    h = mix(h ^ index);
    return Rng(h);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    if (stddev <= 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal truncated to [lo, hi] by clamping (adequate for mild noise).
  double normal_clamped(double mean, double stddev, double lo, double hi) {
    double v = normal(mean, stddev);
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
  }

  /// Lognormal multiplicative jitter around 1.0: exp(N(0, sigma)).
  double jitter(double sigma) {
    if (sigma <= 0.0) return 1.0;
    return std::exp(std::normal_distribution<double>(0.0, sigma)(engine_));
  }

  /// Bernoulli trial.
  bool chance(double probability) {
    return std::bernoulli_distribution(probability)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

private:
  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finaliser.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace perftrack
