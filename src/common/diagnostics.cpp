#include "common/diagnostics.hpp"

namespace perftrack {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out(severity_name(severity));
  out += ": ";
  if (!file.empty()) out += file + ":";
  if (line > 0) out += std::to_string(line) + ":";
  if (!file.empty() || line > 0) out += " ";
  out += "[" + code + "] " + message;
  return out;
}

void Diagnostics::report(Severity severity, int line, std::string code,
                         std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.file = file_;
  diag.line = line;
  diag.code = std::move(code);
  diag.message = std::move(message);

  if (severity == Severity::Error) {
    if (!lenient_) {
      // Historical behaviour: the message readers passed here matches what
      // they used to throw directly ("line N: ..." style), so strict-mode
      // callers see the same exceptions as before the collector existed.
      std::string what = diag.line > 0
                             ? "line " + std::to_string(diag.line) + ": " +
                                   diag.message
                             : diag.message;
      if (!diag.file.empty()) what = diag.file + ": " + what;
      throw ParseError(what);
    }
    ++errors_;
  } else if (severity == Severity::Warning) {
    ++warnings_;
  }
  entries_.push_back(std::move(diag));

  if (lenient_ && errors_ > budget_.max_errors)
    throw ParseError(
        (file_.empty() ? std::string() : file_ + ": ") +
        "error budget exhausted: " + std::to_string(errors_) +
        " errors exceed the limit of " + std::to_string(budget_.max_errors));
}

void Diagnostics::finish() const {
  if (!lenient_ || errors_ == 0) return;
  if (records_ < budget_.min_records_for_fraction) return;
  double fraction =
      static_cast<double>(errors_) / static_cast<double>(records_);
  if (fraction > budget_.max_error_fraction) {
    int percent = static_cast<int>(fraction * 100.0);
    int limit = static_cast<int>(budget_.max_error_fraction * 100.0);
    throw ParseError((file_.empty() ? std::string() : file_ + ": ") +
                     "error budget exhausted: " + std::to_string(percent) +
                     "% of records are bad (limit " + std::to_string(limit) +
                     "%)");
  }
}

std::string Diagnostics::summary() const {
  std::string out = std::to_string(errors_) +
                    (errors_ == 1 ? " error, " : " errors, ") +
                    std::to_string(warnings_) +
                    (warnings_ == 1 ? " warning" : " warnings");
  out += " in " + std::to_string(records_) +
         (records_ == 1 ? " record" : " records");
  if (!file_.empty()) out += " (" + file_ + ")";
  return out;
}

std::string Diagnostics::to_string() const {
  std::string out;
  for (const Diagnostic& diag : entries_) out += diag.to_string() + "\n";
  return out;
}

}  // namespace perftrack
