#include "common/failpoint.hpp"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/strings.hpp"

namespace perftrack::failpoint {

namespace {

struct Action {
  enum class Kind { Always, Percent, Hits };
  Kind kind = Kind::Always;
  int percent = 100;
  std::set<std::uint64_t> fail_hits;  ///< 1-based hit numbers
  std::uint64_t hits = 0;
};

std::mutex g_mutex;
std::map<std::string, Action>& registry() {
  static std::map<std::string, Action> map;
  return map;
}
std::atomic<int> g_active{0};

void load_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* spec = std::getenv("PERFTRACK_FAILPOINTS");
    if (spec != nullptr && *spec != '\0') configure(spec);
  });
}

std::uint64_t parse_number(std::string_view text, const std::string& what) {
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw Error("failpoint: bad " + what + ": " + std::string(text));
  return value;
}

Action parse_action(std::string_view text) {
  Action action;
  if (text == "error") {
    action.kind = Action::Kind::Always;
    return action;
  }
  if (!text.empty() && text.front() == '@') {
    action.kind = Action::Kind::Hits;
    for (const std::string& field : split(text.substr(1), ',')) {
      std::string_view hit = trim(field);
      if (hit.empty()) continue;
      action.fail_hits.insert(parse_number(hit, "hit number"));
    }
    if (action.fail_hits.empty())
      throw Error("failpoint: empty hit list: " + std::string(text));
    return action;
  }
  if (!text.empty() && text.back() == '%') {
    action.kind = Action::Kind::Percent;
    auto value = parse_number(text.substr(0, text.size() - 1), "percentage");
    if (value > 100)
      throw Error("failpoint: percentage over 100: " + std::string(text));
    action.percent = static_cast<int>(value);
    return action;
  }
  throw Error("failpoint: unknown action '" + std::string(text) +
              "' (expected error, <N>%, or @i,j,...)");
}

}  // namespace

void activate(const std::string& name, const std::string& action_text) {
  if (name.empty()) throw Error("failpoint: empty name");
  Action action = parse_action(trim(action_text));
  std::lock_guard<std::mutex> lock(g_mutex);
  auto [it, inserted] = registry().insert_or_assign(name, std::move(action));
  (void)it;
  if (inserted) g_active.fetch_add(1, std::memory_order_relaxed);
}

void configure(const std::string& spec) {
  // Split on ','; a segment without '=' continues the previous entry's
  // action so "@3,7" hit lists survive the comma separator.
  std::vector<std::pair<std::string, std::string>> entries;
  for (const std::string& segment : split(spec, ',')) {
    std::string_view text = trim(segment);
    if (text.empty()) continue;
    std::size_t eq = text.find('=');
    if (eq == std::string_view::npos) {
      if (entries.empty())
        throw Error("failpoint: malformed spec segment '" +
                    std::string(text) + "' (expected name=action)");
      entries.back().second += "," + std::string(text);
    } else {
      entries.emplace_back(std::string(trim(text.substr(0, eq))),
                           std::string(trim(text.substr(eq + 1))));
    }
  }
  for (const auto& [name, action] : entries) activate(name, action);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  registry().clear();
  g_active.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = registry().find(name);
  return it == registry().end() ? 0 : it->second.hits;
}

bool any_active() {
  load_env_once();
  return g_active.load(std::memory_order_relaxed) != 0;
}

void evaluate(const char* name) {
  bool fail = false;
  std::uint64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = registry().find(name);
    if (it == registry().end()) return;
    Action& action = it->second;
    hit = ++action.hits;
    switch (action.kind) {
      case Action::Kind::Always:
        fail = true;
        break;
      case Action::Kind::Percent:
        // Deterministic thinning: hit i fails when the target count of
        // failures after i hits exceeds the count after i-1 hits.
        fail = (hit * static_cast<std::uint64_t>(action.percent)) / 100 >
               ((hit - 1) * static_cast<std::uint64_t>(action.percent)) / 100;
        break;
      case Action::Kind::Hits:
        fail = action.fail_hits.count(hit) != 0;
        break;
    }
  }
  if (fail)
    throw InjectedFault("injected fault at '" + std::string(name) +
                        "' (hit " + std::to_string(hit) + ")");
}

}  // namespace perftrack::failpoint
