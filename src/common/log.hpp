#pragma once
// Minimal levelled logger.
//
// Logging defaults to Warn so that library code stays quiet; tools and
// benches raise the level explicitly. The logger writes to stderr and is
// safe to call from multiple threads (each message is a single write).

#include <sstream>
#include <string>

namespace perftrack {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Stream-style log statement: PT_LOG(Info) << "clustered " << n << " bursts";
class LogLine {
public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_write(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace perftrack

#define PT_LOG(level) ::perftrack::LogLine(::perftrack::LogLevel::level)
