#include "common/table.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace perftrack {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PT_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::begin_row() {
  finish_pending_row();
  building_ = true;
}

void Table::finish_pending_row() {
  if (building_) {
    PT_REQUIRE(pending_.size() == headers_.size(),
               "incomplete row: missing cells");
    rows_.push_back(std::move(pending_));
    pending_.clear();
    building_ = false;
  }
}

void Table::cell(std::string text) {
  PT_REQUIRE(building_, "cell() outside begin_row()");
  PT_REQUIRE(pending_.size() < headers_.size(), "too many cells in row");
  pending_.push_back(std::move(text));
}

void Table::cell(double value, int decimals) {
  cell(format_double(value, decimals));
}

void Table::cell(std::size_t value) { cell(std::to_string(value)); }
void Table::cell(long long value) { cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  const_cast<Table*>(this)->finish_pending_row();
  PT_REQUIRE(row < rows_.size() && col < headers_.size(),
             "table index out of range");
  return rows_[row][col];
}

std::string Table::to_text(int indent) const {
  const_cast<Table*>(this)->finish_pending_row();
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string pad(static_cast<std::size_t>(indent), ' ');
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size())
        line += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string underline = pad;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    underline += std::string(widths[c], '-');
    if (c + 1 < widths.size()) underline += "  ";
  }
  out += underline + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::to_csv() const {
  const_cast<Table*>(this)->finish_pending_row();
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << to_csv();
  if (!out) throw IoError("write failed: " + path);
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_text();
}

}  // namespace perftrack
