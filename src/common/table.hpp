#pragma once
// Column-oriented text tables.
//
// Every bench binary reproduces a paper table or figure series by filling a
// Table and rendering it either as aligned text (for the terminal) or CSV
// (for downstream plotting). Cells are strings; numeric helpers format on
// insertion so a rendered table is what you saw when you built it.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace perftrack {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  std::size_t column_count() const { return headers_.size(); }
  std::size_t row_count() const {
    const_cast<Table*>(this)->finish_pending_row();
    return rows_.size();
  }

  /// Append a full row; must match column_count().
  void add_row(std::vector<std::string> cells);

  /// Incremental row building.
  void begin_row();
  void cell(std::string text);
  void cell(double value, int decimals);
  void cell(std::size_t value);
  void cell(long long value);

  const std::string& at(std::size_t row, std::size_t col) const;

  /// Render with padded columns, a header underline and `indent` spaces
  /// before each line.
  std::string to_text(int indent = 0) const;

  /// Render as RFC-4180-ish CSV (fields containing comma/quote are quoted).
  std::string to_csv() const;

  /// Write to_csv() to a file; throws IoError on failure.
  void save_csv(const std::string& path) const;

private:
  void finish_pending_row();

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool building_ = false;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace perftrack
