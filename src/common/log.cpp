#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace perftrack {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  std::string line = std::string("[perftrack ") + level_name(level) + "] " +
                     message + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace perftrack
