#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace perftrack {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Serialises writes so concurrent (e.g. instrumented multi-threaded) stages
// never interleave partial lines on stderr.
std::mutex& write_mutex() {
  static std::mutex m;
  return m;
}

/// Seconds since the logger was first used (anchored lazily, so it tracks
/// process lifetime closely without static-init-order hazards).
double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return std::chrono::duration<double>(clock::now() - anchor).count();
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[perftrack %9.3fs %-5s] ",
                elapsed_seconds(), level_name(level));
  std::string line = prefix + message + "\n";
  std::lock_guard<std::mutex> lock(write_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace perftrack
