#pragma once
// Small string helpers shared by the trace parser and report writers.

#include <string>
#include <string_view>
#include <vector>

namespace perftrack {

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style double formatting with fixed decimals.
std::string format_double(double value, int decimals);

/// Human-readable large number: 12345678 -> "12.3M".
std::string format_si(double value, int decimals = 1);

/// "+4.9%" / "-20.1%" from a fractional change.
std::string format_percent(double fraction, int decimals = 1);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace perftrack
