#pragma once
// Deterministic fault injection for robustness tests.
//
// Library code marks crash-worthy boundaries with PT_FAILPOINT("name");
// when the named failpoint is armed, the macro throws InjectedFault there.
// Nothing is armed by default and a disarmed process costs one relaxed
// atomic load per site, so the markers stay in release builds.
//
// Arming, via the PERFTRACK_FAILPOINTS environment variable or
// failpoint::configure()/activate():
//
//   PERFTRACK_FAILPOINTS="load_trace=error"        every hit fails
//   PERFTRACK_FAILPOINTS="dbscan=30%"              a deterministic 30% of
//                                                  hits fail (no RNG: hit i
//                                                  fails when the running
//                                                  ratio falls behind)
//   PERFTRACK_FAILPOINTS="cluster_experiment=@3,7" hits 3 and 7 (1-based)
//                                                  fail — how tests poison
//                                                  specific experiments
//
// Multiple entries are comma-separated; a comma-separated "@" hit list is
// recognised because its continuation segments carry no "=" (configure()
// re-joins them). Hit counters and the armed set are process-global and
// mutex-protected; tests call clear() between cases.

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace perftrack {

/// Thrown by an armed failpoint. Derives from Error so the degraded-mode
/// machinery treats an injected fault exactly like a real one.
class InjectedFault : public Error {
public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

namespace failpoint {

/// Arm one failpoint. `action` is "error", "<N>%", or "@i,j,..." (1-based
/// hit numbers). Throws Error on a malformed action.
void activate(const std::string& name, const std::string& action);

/// Parse a comma-separated "name=action,name=action" spec (the
/// PERFTRACK_FAILPOINTS syntax). "@" hit lists consume the rest of their
/// entry up to the next "name=" segment. Throws Error on bad syntax.
void configure(const std::string& spec);

/// Disarm everything and reset all hit counters.
void clear();

/// Number of times PT_FAILPOINT(name) was evaluated while armed.
std::uint64_t hits(const std::string& name);

/// True when at least one failpoint is armed (fast path for the macro).
bool any_active();

/// Slow path: count a hit on `name` and throw InjectedFault if the armed
/// action selects this hit. No-op when `name` is not armed.
void evaluate(const char* name);

}  // namespace failpoint
}  // namespace perftrack

/// Mark a fault-injection site. Throws perftrack::InjectedFault when the
/// named failpoint is armed and its action selects this hit.
#define PT_FAILPOINT(name)                               \
  do {                                                   \
    if (::perftrack::failpoint::any_active())            \
      ::perftrack::failpoint::evaluate(name);            \
  } while (0)
