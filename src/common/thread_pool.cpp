#include "common/thread_pool.hpp"

#include <exception>

namespace perftrack {

namespace {

/// Pool the current thread works for, if any (the reentrancy guard).
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::run_inline() const {
  return workers_.empty() || t_worker_of == this;
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before stopping so the destructor never abandons a task
      // (submitted work always completes).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  // A single iteration gains nothing from a worker handoff — and running
  // it on the caller keeps the caller OFF the worker set, so any nested
  // parallel_for inside the body can still fan out instead of tripping
  // the reentrancy guard. (A one-pair retrack parallelises its inner
  // classification sweep this way.)
  if (end - begin == 1) {
    body(begin);
    return;
  }
  if (run_inline()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(end - begin);
  // If submission itself fails mid-loop (allocation), hold the exception
  // until every already-queued task has settled: the pool outlives this
  // call, so a task left in the queue would run against `body` and the
  // caller's locals after their frames unwound. `pending` is pre-reserved,
  // so a task is queued iff its future landed in `pending`.
  std::exception_ptr submit_error;
  try {
    for (std::size_t i = begin; i < end; ++i)
      pending.push_back(submit([&body, i] { body(i); }));
  } catch (...) {
    submit_error = std::current_exception();
  }
  // Wait for everything first, then rethrow the lowest-index failure, so
  // no task can still be touching caller state when we unwind.
  for (std::future<void>& f : pending) f.wait();
  if (submit_error) std::rethrow_exception(submit_error);
  for (std::future<void>& f : pending) f.get();
}

std::size_t ThreadPool::default_thread_count() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace perftrack
