#pragma once
// Fixed-size thread pool with a futures / parallel_for API.
//
// The tracking workflow is a frame pipeline: every experiment clusters
// independently and every adjacent frame pair tracks independently, so both
// stages are embarrassingly parallel. The pool keeps that parallelism
// deterministic-by-construction: callers submit tasks whose outputs land in
// pre-sized slots, so the result of a run never depends on scheduling
// order, only on the task bodies themselves.
//
//   ThreadPool pool(ThreadPool::resolve(params.threads));
//   pool.parallel_for(0, frames.size(),
//                     [&](std::size_t i) { out[i] = work(i); });
//
// A pool of one thread spawns no workers at all: every task runs inline on
// the calling thread, in submission order — bit-for-bit the serial
// behaviour, which is what makes `--threads 1` a faithful baseline.
//
// Reentrancy guard: a task submitted from one of the pool's own workers
// runs inline on that worker instead of queueing. A worker blocking on the
// future of a task stuck behind it in the queue would deadlock the pool;
// inline execution makes nested submission safe (if serial).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace perftrack {

class ThreadPool {
public:
  /// Create `threads` workers. 0 and 1 both mean "no workers": submit()
  /// and parallel_for() execute inline on the calling thread.
  explicit ThreadPool(std::size_t threads);

  /// Joins after draining the queue: every submitted task completes.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers available to run tasks (>= 1; 1 means inline execution).
  std::size_t thread_count() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Schedule `task`; the future carries its result or exception. Runs
  /// inline when the pool has no workers or the caller is one of them.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    if (run_inline()) {
      (*packaged)();
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Run body(i) for every i in [begin, end) and wait for all of them.
  /// Exceptions propagate after every index has settled; when several
  /// tasks throw, the lowest index wins (deterministic regardless of
  /// scheduling). The inline path is a plain serial loop.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency(), or 1 when unknown.
  static std::size_t default_thread_count();

  /// Resolve a user-facing thread setting: 0 = auto (hardware concurrency).
  static std::size_t resolve(std::size_t requested) {
    return requested == 0 ? default_thread_count() : requested;
  }

private:
  bool run_inline() const;
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace perftrack
