#include "serve/metrics.hpp"

#include "serve/protocol.hpp"

namespace perftrack::serve {

namespace {

/// Every protocol method gets its own label slot, resolved once here so
/// the per-request path never builds label strings. "other" absorbs
/// unknown method names (bounding the registry against a client spraying
/// garbage methods); "invalid" is the slot for unparseable lines.
const char* const kMethods[] = {
    "ping",    "hello",      "open_study",  "close_study",
    "list_studies", "append_experiment", "append_gap", "retrack",
    "regions", "trends",     "report",      "coverage",
    "stats",   "metrics",    "health",      "evict",
    "sweep",   "shutdown",   "other",       "invalid",
};

thread_local std::uint64_t t_lock_wait_ns = 0;

}  // namespace

ServeMetrics::ServeMetrics(bool enabled) : enabled_(enabled) {
  for (const char* method : kMethods) {
    const std::string labels = std::string("method=\"") + method + "\"";
    methods_.emplace(
        method,
        MethodMetrics{
            &registry_.counter("perftrackd_requests_total", labels,
                               "Requests dispatched, by method"),
            &registry_.histogram(
                "perftrackd_request_ns", labels,
                "End-to-end request latency in nanoseconds (read off the "
                "wire to response written)"),
            &registry_.histogram(
                "perftrackd_handler_ns", labels,
                "Handler execution time in nanoseconds"),
        });
  }
  const char* const phases[] = {"parse", "queue_wait", "lock_wait", "write"};
  obs::Histogram* slots[4];
  for (int i = 0; i < 4; ++i)
    slots[i] = &registry_.histogram(
        "perftrackd_phase_ns",
        std::string("phase=\"") + phases[i] + "\"",
        "Request phase breakdown in nanoseconds");
  phase_parse_ = slots[0];
  phase_queue_wait_ = slots[1];
  phase_lock_wait_ = slots[2];
  phase_write_ = slots[3];
  // Pre-register the occupancy gauges so a scrape before the first
  // request still shows the full catalogue.
  registry_.gauge("perftrackd_queue_depth", "",
                  "Requests admitted but not yet answered");
  registry_.gauge("perftrackd_queue_capacity", "",
                  "Admission cap of the bounded queue");
  registry_.gauge("perftrackd_studies", "", "Open studies");
  registry_.gauge("perftrackd_resident_sessions", "",
                  "Studies with a live (non-evicted) session");
  registry_.gauge("perftrackd_uptime_seconds", "",
                  "Seconds since the service started");
  registry_.counter("perftrackd_overloaded_total", "",
                    "Requests rejected by backpressure");
  registry_.gauge("perftrackd_frame_cache_hits", "",
                  "Frame-cache hits over resident sessions");
  registry_.gauge("perftrackd_frame_cache_misses", "",
                  "Frame-cache misses over resident sessions");
  registry_.gauge("perftrackd_frame_cache_stores", "",
                  "Frame-cache stores over resident sessions");
  registry_.gauge("perftrackd_render_cache_hits", "",
                  "Render-cache hits (lock-free read responses)");
  registry_.gauge("perftrackd_render_cache_misses", "",
                  "Render-cache misses (responses rendered fresh)");
  registry_.gauge("perftrackd_render_cache_inserts", "",
                  "Render-cache entries inserted");
  registry_.gauge("perftrackd_render_cache_evictions", "",
                  "Render-cache entries dropped by capacity");
  registry_.gauge("perftrackd_render_cache_entries", "",
                  "Render-cache entries resident");
  // Zero-seed one error counter per code (the enum is closed), so the
  // family is always scrapeable and rate() starts from 0, not absence.
  for (int code = 0; code <= static_cast<int>(ErrorCode::Internal); ++code)
    registry_.counter(
        "perftrackd_errors_total",
        "code=\"" +
            std::string(error_code_name(static_cast<ErrorCode>(code))) + "\"",
        "Error responses, by protocol error code");
}

const ServeMetrics::MethodMetrics* ServeMetrics::method_metrics(
    const std::string& method) const {
  auto it = methods_.find(method);
  if (it == methods_.end()) it = methods_.find("other");
  return &it->second;
}

void ServeMetrics::count_error(std::string_view code) {
  if (!enabled_) return;
  // Error codes are a closed enum, so get-or-create stays bounded; the
  // registry lookup only runs on (rare) error responses.
  registry_.counter("perftrackd_errors_total",
                    "code=\"" + std::string(code) + "\"",
                    "Error responses, by protocol error code")
      .add();
}

void ServeMetrics::record_phase_ns(Phase phase, std::uint64_t ns) {
  if (!enabled_) return;
  switch (phase) {
    case Phase::Parse: phase_parse_->record(ns); break;
    case Phase::QueueWait: phase_queue_wait_->record(ns); break;
    case Phase::LockWait: phase_lock_wait_->record(ns); break;
    case Phase::Write: phase_write_->record(ns); break;
  }
}

void ServeMetrics::record_lock_wait_ns(std::uint64_t ns) {
  t_lock_wait_ns += ns;
  if (!enabled_) return;
  phase_lock_wait_->record(ns);
}

std::vector<std::pair<std::string, obs::HistogramSnapshot>>
ServeMetrics::per_method_latency() const {
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> out;
  for (const char* method : kMethods) {
    const MethodMetrics& slot = methods_.at(method);
    obs::HistogramSnapshot snap = slot.request_ns->snapshot();
    if (snap.count == 0) snap = slot.handler_ns->snapshot();
    if (snap.count == 0) continue;
    out.emplace_back(method, std::move(snap));
  }
  return out;
}

void ServeMetrics::reset_request_context() { t_lock_wait_ns = 0; }

std::uint64_t ServeMetrics::context_lock_wait_ns() { return t_lock_wait_ns; }

}  // namespace perftrack::serve
