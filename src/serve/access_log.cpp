#include "serve/access_log.hpp"

#include <chrono>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::serve {

namespace {

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t to_us(std::uint64_t ns) { return ns / 1000; }

void write_record_fields(obs::JsonWriter& json, const RequestRecord& record) {
  json.key("ts_ms").value(wall_ms());
  if (record.id.empty())
    json.key("id").null();
  else
    // The id is raw JSON (number or string); quote it as text so the log
    // line stays valid JSON whatever the client sent.
    json.key("id").value(record.id);
  json.key("method").value(record.method);
  if (!record.study.empty()) json.key("study").value(record.study);
  json.key("outcome").value(record.outcome);
  json.key("parse_us").value(to_us(record.parse_ns));
  json.key("queue_us").value(to_us(record.queue_ns));
  json.key("lock_us").value(to_us(record.lock_ns));
  json.key("handler_us").value(to_us(record.handler_ns));
  json.key("write_us").value(to_us(record.write_ns));
  json.key("total_us").value(to_us(record.total_ns));
}

/// Span tree rebuilt from one thread's events inside a time window.
struct WindowSpan {
  const char* name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<WindowSpan> children;
};

WindowSpan& window_child(WindowSpan& parent, const char* name) {
  for (WindowSpan& child : parent.children)
    if (child.name == name || std::string_view(child.name) == name)
      return child;
  parent.children.push_back(WindowSpan{name});
  return parent.children.back();
}

void render_span(obs::JsonWriter& json, const WindowSpan& span) {
  json.begin_object();
  json.key("name").value(span.name);
  json.key("count").value(span.count);
  json.key("total_us").value(to_us(span.total_ns));
  if (!span.children.empty()) {
    json.key("spans").begin_array();
    for (const WindowSpan& child : span.children) render_span(json, child);
    json.end_array();
  }
  json.end_object();
}

}  // namespace

std::string access_record_json(const RequestRecord& record) {
  obs::JsonWriter json;
  json.begin_object();
  write_record_fields(json, record);
  json.end_object();
  return json.str();
}

std::string slow_record_json(const RequestRecord& record,
                             std::uint64_t begin_ns, std::uint64_t end_ns) {
  // Replay this thread's events inside the request window into a tree —
  // the same fold collect() does globally, restricted to the spans this
  // request actually executed on its handler thread (nested pool workers
  // adopt the submitting spans, so the stage structure is still here).
  WindowSpan root{"request"};
  std::vector<std::pair<WindowSpan*, std::uint64_t>> stack;
  const obs::ThreadTimeline timeline = obs::current_thread_timeline();
  for (const obs::TimelineEvent& event : timeline.events) {
    if (event.ts_ns < begin_ns || event.ts_ns > end_ns) continue;
    WindowSpan& top = stack.empty() ? root : *stack.back().first;
    switch (event.kind) {
      case obs::TimelineEvent::Kind::Begin:
      case obs::TimelineEvent::Kind::CtxBegin: {
        WindowSpan& child = window_child(top, event.name);
        ++child.count;
        stack.emplace_back(&child, event.ts_ns);
        break;
      }
      case obs::TimelineEvent::Kind::End:
      case obs::TimelineEvent::Kind::CtxEnd:
        // A Begin before the window has no frame here; ignore its End.
        if (stack.empty()) break;
        stack.back().first->total_ns += event.ts_ns - stack.back().second;
        stack.pop_back();
        break;
      case obs::TimelineEvent::Kind::Counter:
      case obs::TimelineEvent::Kind::Gauge:
        break;
    }
  }

  obs::JsonWriter json;
  json.begin_object();
  write_record_fields(json, record);
  json.key("slow").value(true);
  json.key("spans").begin_array();
  for (const WindowSpan& span : root.children) render_span(json, span);
  json.end_array();
  json.end_object();
  return json.str();
}

void AccessLog::write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace perftrack::serve
