#include "serve/metrics_http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "serve/service.hpp"

namespace perftrack::serve {

namespace {

bool send_all(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// First line of the request: "GET /metrics HTTP/1.1" -> "/metrics".
/// Empty on anything that is not a GET.
std::string request_path(const std::string& head) {
  if (head.rfind("GET ", 0) != 0) return {};
  const std::size_t end = head.find(' ', 4);
  if (end == std::string::npos) return {};
  return head.substr(4, end - 4);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(TrackingService& service)
    : service_(service) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start_unix(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    PT_LOG(Error) << "metrics: socket path too long: " << path;
    return false;
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    PT_LOG(Error) << "metrics: socket(): " << std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    PT_LOG(Error) << "metrics: cannot listen on " << path << ": "
                  << std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  socket_path_ = path;
  if (::pipe(stop_pipe_) != 0) {
    PT_LOG(Error) << "metrics: pipe(): " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  PT_LOG(Info) << "metrics endpoint on " << path;
  thread_ = std::thread([this] { run(); });
  return true;
}

bool MetricsHttpServer::start_tcp(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    PT_LOG(Error) << "metrics: socket(): " << std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    PT_LOG(Error) << "metrics: cannot listen on 127.0.0.1:" << port << ": "
                  << std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &len) == 0)
    port_ = ntohs(address.sin_port);
  listen_fd_ = fd;
  if (::pipe(stop_pipe_) != 0) {
    PT_LOG(Error) << "metrics: pipe(): " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  PT_LOG(Info) << "metrics endpoint on 127.0.0.1:" << port_;
  thread_ = std::thread([this] { run(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  port_ = 0;
}

void MetricsHttpServer::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      PT_LOG(Warn) << "metrics: poll(): " << std::strerror(errno);
      break;
    }
    if (fds[1].revents & POLLIN) break;
    if (!(fds[0].revents & POLLIN)) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      PT_LOG(Warn) << "metrics: accept(): " << std::strerror(errno);
      continue;
    }
    // Scrapes are rare and the handlers cheap; serving inline keeps the
    // server single-threaded (one scrape at a time is plenty).
    handle_connection(client);
    ::close(client);
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  // Read until the end of the request head (or 8 KiB, whichever first) —
  // GET requests have no body worth waiting for.
  std::string head;
  char chunk[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < 8192) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;  // slow client: give up
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(chunk, static_cast<std::size_t>(n));
    if (head.find('\n') != std::string::npos &&
        head.rfind("GET ", 0) == 0)
      break;  // GET: the first line is all we dispatch on
  }

  const std::string path = request_path(head);
  std::string response;
  if (path.empty()) {
    response = http_response("405 Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  } else if (path == "/metrics") {
    response = http_response("200 OK", "text/plain; version=0.0.4",
                             service_.render_prometheus_metrics());
  } else if (path == "/metrics.json") {
    response = http_response("200 OK", "application/json",
                             service_.render_json_metrics() + "\n");
  } else if (path == "/health") {
    Request request;
    request.method = "health";
    response = http_response("200 OK", "application/json",
                             service_.handle(request).result_json + "\n");
  } else {
    response = http_response(
        "404 Not Found", "text/plain",
        "try /metrics, /metrics.json or /health\n");
  }
  send_all(fd, response);
}

}  // namespace perftrack::serve
