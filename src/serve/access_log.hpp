#pragma once
// Structured NDJSON access log and slow-request tracing for perftrackd.
//
// One line per request, written after the response bytes are handed to
// the transport:
//
//   {"ts_ms":1722470000123,"id":7,"method":"regions","study":"wrf",
//    "outcome":"ok","parse_us":12,"queue_us":3,"lock_us":85,
//    "handler_us":912,"write_us":6,"total_us":948}
//
// `id` is the request's raw JSON id (number or string) echoed verbatim,
// `outcome` is "ok" or the protocol error code, and the *_us fields are
// the phase breakdown the metrics histograms aggregate — the access log
// is the per-request view of the same decomposition. Rejected requests
// (bad JSON, overload, draining) appear too, with the phases they never
// reached at 0.
//
// Slow-request capture: with a threshold set (perftrackd --slow-ms N), a
// request whose total exceeds it gets a second line, "slow":true, that
// embeds the request's span tree — the telemetry spans recorded on the
// handler thread during the request window (serve_request -> endpoint ->
// session/pipeline stages), with per-span wall time. Telemetry recording
// must be on for spans to appear; perftrackd enables it when --slow-ms
// is given. Threshold 0 dumps every request (handy in tests).
//
// Thread safety: writes are serialized by an internal mutex; each record
// is one write() call so concurrent handlers never interleave lines.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace perftrack::serve {

/// Phase breakdown and identity of one served request.
struct RequestRecord {
  std::string id;       ///< raw JSON id ("" = absent)
  std::string method;   ///< "" for unparseable lines
  std::string study;
  std::string outcome;  ///< "ok" or the protocol error code
  std::uint64_t parse_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t lock_ns = 0;
  std::uint64_t handler_ns = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t total_ns = 0;
};

/// Render `record` as one access-log JSON line (no trailing newline).
std::string access_record_json(const RequestRecord& record);

/// Render the slow-request line: the record plus the span tree observed
/// on the calling thread between `begin_ns` and `end_ns` (telemetry
/// clock). Call on the thread that ran the handler.
std::string slow_record_json(const RequestRecord& record,
                             std::uint64_t begin_ns, std::uint64_t end_ns);

class AccessLog {
public:
  /// Log lines go to `out`, which must outlive the log. The stream is
  /// flushed per record so `tail -f` and crashes both see complete lines.
  explicit AccessLog(std::ostream& out) : out_(out) {}
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  void write(const std::string& line);

private:
  std::mutex mutex_;
  std::ostream& out_;
};

}  // namespace perftrack::serve
