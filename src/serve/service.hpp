#pragma once
// The tracking service: protocol requests against the study registry.
//
// TrackingService is the transport-free core of perftrackd: one handle()
// call maps one parsed Request to one Response, and is safe to call from
// any number of threads concurrently. The server layer (serve/server.hpp)
// puts a bounded queue and a socket in front of it; tests and benches call
// it directly.
//
// Locking discipline (see registry.hpp): read methods — regions, trends,
// coverage, stats — take the study lock shared and serve from the cached
// TrackingResult, so a tracked study answers reads concurrently. A read
// that finds the study stale (appends since the last retrack) upgrades to
// the exclusive lock and retracks first; append/retrack/evict/open/close
// are exclusive. Results are bit-identical to a batch perftrack run over
// the same traces — the service reuses TrackingSession, whose equivalence
// guarantee carries over unchanged.
//
// Observability: every request runs under a "serve_request" span with a
// per-endpoint child span ("serve_regions", ...), so the JSON run report
// carries per-endpoint request counts and wall-time (plus min/max latency)
// for free, next to serve_requests/serve_errors/serve_evictions counters.
// Independently of the run-report telemetry, the service owns a live
// metrics plane (serve/metrics.hpp): per-method latency histograms,
// request/error counters and occupancy gauges, sampled at any time via
// the `metrics`/`stats`/`health` protocol methods or the HTTP /metrics
// endpoint (serve/metrics_http.hpp), and always recording unless
// ServiceConfig::metrics turns it off.
// Trace ingestion flows through the diagnostics layer: strict mode maps
// parse failures to typed parse-failure errors, lenient mode degrades a
// failing experiment into a tracked gap under the configured error budget,
// exactly like the perftrack CLI.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/dispatcher.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/render_cache.hpp"

namespace perftrack::serve {

struct ServiceConfig {
  /// Base session configuration; open_study parameters override per study.
  tracking::SessionConfig session;

  /// Lenient-mode error budget per ingested trace file.
  std::size_t max_errors = 100;

  /// Evict the heavy state of studies idle longer than this (0 = never).
  std::uint64_t idle_ttl_ns = 0;

  /// Keep at most this many studies' sessions resident (0 = unbounded);
  /// the least recently used are evicted first.
  std::size_t max_resident = 0;

  /// Record live metrics (histograms/counters/gauges). Off turns every
  /// recording call into a no-op; `metrics` then samples all-zero.
  bool metrics = true;

  /// Durability plane (journal.hpp): per-study write-ahead journals under
  /// journal.directory, recovered on construction. An empty directory
  /// keeps the registry purely in-memory (the pre-state-dir behaviour).
  JournalConfig journal;

  /// Total rendered responses kept by the versioned render cache
  /// (0 disables it; reads then always render fresh).
  std::size_t render_cache_capacity = 4096;
};

class TrackingService : public Dispatcher {
public:
  explicit TrackingService(ServiceConfig config = {});

  /// Handle one request; never throws — every failure becomes a typed
  /// error response. Thread-safe.
  Response handle(const Request& request);

  /// Dispatcher seam for the transports; the raw line is unused here
  /// (the shard front is the dispatcher that forwards it).
  Response dispatch(const Request& request,
                    const std::string& raw_line) override {
    (void)raw_line;
    return handle(request);
  }

  /// Convenience: parse one NDJSON line and handle it.
  Response handle_line(const std::string& line);

  /// Set by a "shutdown" request; the server drains and exits when it
  /// sees this.
  bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Run the idle-eviction policy now (also exposed as the "sweep"
  /// method). Returns the number of sessions evicted.
  std::size_t sweep() override;

  /// Fsync every study's unsynced journal records (the graceful-drain /
  /// SIGTERM path; perftrackd calls it after the serve loop returns).
  /// Failures are logged, not thrown. No-op without a state dir.
  void flush_journals();

  /// Installed by the server so `stats` can report queue backpressure.
  void set_queue_stats(std::function<QueueStats()> fn) override {
    queue_stats_ = std::move(fn);
  }

  /// The live metrics plane. The server records transport-side phases
  /// through it; the HTTP endpoint samples it.
  ServeMetrics& metrics() override { return metrics_; }

  /// Refresh the occupancy gauges (studies, resident sessions, queue,
  /// uptime, cache totals) and render the registry in Prometheus text
  /// exposition format — the body of `GET /metrics`.
  std::string render_prometheus_metrics();

  /// Same refresh, rendered as the compact JSON snapshot — the result of
  /// the `metrics` protocol method (and `GET /metrics.json`).
  std::string render_json_metrics();

  const ServiceConfig& config() const { return config_; }
  StudyRegistry& registry() { return registry_; }
  RenderCache& render_cache() { return render_cache_; }

  /// Wire names of every supported method, sorted (the `hello` surface).
  std::vector<std::string> method_names() const;

private:
  std::string do_ping(const Request& request);
  std::string do_hello(const Request& request);
  std::string do_open_study(const Request& request);
  std::string do_close_study(const Request& request);
  std::string do_list_studies(const Request& request);
  std::string do_append_experiment(const Request& request);
  std::string do_append_gap(const Request& request);
  std::string do_retrack(const Request& request);
  std::string do_regions(const Request& request);
  std::string do_trends(const Request& request);
  std::string do_report(const Request& request);
  std::string do_coverage(const Request& request);
  std::string do_stats(const Request& request);
  std::string do_metrics(const Request& request);
  std::string do_health(const Request& request);
  std::string do_evict(const Request& request);
  std::string do_sweep(const Request& request);
  std::string do_shutdown(const Request& request);

  std::shared_ptr<StudyState> study_of(const Request& request) const;

  /// Serve-side read path: shared lock when the study is tracked,
  /// exclusive retrack first when it is stale. When `generation` is
  /// non-null it receives the study generation observed under the lock —
  /// the version the returned result corresponds to.
  std::shared_ptr<const tracking::TrackingResult> tracked_result(
      StudyState& study, std::uint64_t* generation = nullptr);

  /// Read path shared by regions/trends/report: serve `shape` for
  /// `study` from the render cache when its bytes are current, render
  /// via `render` and cache otherwise.
  std::string cached_render(
      StudyState& study, const std::string& name, const std::string& shape,
      const std::function<std::string(const tracking::TrackingResult&)>&
          render);

  /// Retrack under an already-held exclusive lock.
  void retrack_locked(StudyState& study);

  /// Set the occupancy/queue/cache gauges from current registry state.
  void refresh_gauges();

  /// Boot-time recovery: scan the state dir and repopulate the registry
  /// from every surviving journal. Called from the constructor.
  void recover_state();

  /// Journal `entry` for `study` before it is applied in memory; maps a
  /// journal failure to a typed io-failure response. No-op when the study
  /// has no journal.
  void journal_append(StudyState& study, const AppendEntry& entry);

  /// Opportunistic compaction after a successful append (failures are
  /// diagnostics — the uncompacted journal is still correct).
  void maybe_compact(const std::string& name, StudyState& study);

  bool durable() const { return config_.journal.enabled(); }

  /// One dispatch-table entry: handler, its telemetry span literal, and
  /// the pre-resolved metrics handle — one map find covers all three.
  struct Endpoint {
    const char* span;
    std::string (TrackingService::*fn)(const Request&);
    const ServeMetrics::MethodMetrics* metrics;
  };

  ServiceConfig config_;
  StudyRegistry registry_;
  std::atomic<bool> shutdown_{false};
  std::function<QueueStats()> queue_stats_;
  ServeMetrics metrics_;
  RenderCache render_cache_;
  std::map<std::string, Endpoint, std::less<>> endpoints_;
  std::uint64_t start_ns_;  ///< telemetry-clock birth time (uptime base)

  // Recovery + journal-health counters (stats/metrics surface them).
  std::atomic<std::uint64_t> journal_recovered_{0};
  std::atomic<std::uint64_t> journal_truncated_{0};
  std::atomic<std::uint64_t> journal_quarantined_{0};
  std::atomic<std::uint64_t> journal_errors_{0};
  std::atomic<std::uint64_t> journal_deduped_{0};
};

}  // namespace perftrack::serve
