#include "serve/registry.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "serve/protocol.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::serve {

std::shared_ptr<StudyState> StudyRegistry::create(
    const std::string& name, tracking::SessionConfig config) {
  auto study = std::make_shared<StudyState>(std::move(config));
  study->instance_id = next_instance_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mutex_);
  auto [it, inserted] = studies_.emplace(name, study);
  if (!inserted)
    throw ServeError(ErrorCode::StudyExists,
                     "study '" + name + "' is already open");
  return study;
}

std::shared_ptr<StudyState> StudyRegistry::get(const std::string& name) const {
  std::shared_lock lock(mutex_);
  auto it = studies_.find(name);
  if (it == studies_.end())
    throw ServeError(ErrorCode::UnknownStudy,
                     "no study named '" + name +
                         "' (did you open_study it?)");
  return it->second;
}

void StudyRegistry::remove(const std::string& name) {
  std::unique_lock lock(mutex_);
  if (studies_.erase(name) == 0)
    throw ServeError(ErrorCode::UnknownStudy,
                     "no study named '" + name + "'");
}

std::vector<std::string> StudyRegistry::names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(studies_.size());
  for (const auto& [name, study] : studies_) out.push_back(name);
  return out;
}

std::size_t StudyRegistry::size() const {
  std::shared_lock lock(mutex_);
  return studies_.size();
}

std::size_t StudyRegistry::evict_idle(std::uint64_t now_ns,
                                      std::uint64_t idle_ttl_ns,
                                      std::size_t max_resident) {
  // Snapshot the shards, then lock each study individually: eviction must
  // never hold the registry lock while waiting on a busy study.
  struct Candidate {
    std::shared_ptr<StudyState> study;
    std::uint64_t last_used_ns;
  };
  std::vector<Candidate> resident;
  {
    std::shared_lock lock(mutex_);
    for (const auto& [name, study] : studies_) {
      std::shared_lock study_lock(study->mutex);
      if (study->session != nullptr || study->result != nullptr)
        resident.push_back({study, study->last_used_ns});
    }
  }

  std::size_t evicted = 0;
  // Age rule first: anything idle past the TTL goes regardless of count.
  if (idle_ttl_ns > 0) {
    for (auto it = resident.begin(); it != resident.end();) {
      if (now_ns >= it->last_used_ns &&
          now_ns - it->last_used_ns > idle_ttl_ns) {
        std::unique_lock study_lock(it->study->mutex);
        // Re-check under the exclusive lock: the study may have been
        // touched (or already evicted) since the snapshot.
        if (it->study->last_used_ns == it->last_used_ns &&
            evict_study(*it->study))
          ++evicted;
        it = resident.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Capacity rule: drop least recently used shards beyond the cap.
  if (max_resident > 0 && resident.size() > max_resident) {
    std::sort(resident.begin(), resident.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.last_used_ns < b.last_used_ns;
              });
    const std::size_t excess = resident.size() - max_resident;
    for (std::size_t i = 0; i < excess; ++i) {
      std::unique_lock study_lock(resident[i].study->mutex);
      if (resident[i].study->last_used_ns == resident[i].last_used_ns &&
          evict_study(*resident[i].study))
        ++evicted;
    }
  }
  return evicted;
}

bool evict_study(StudyState& study) {
  if (study.session == nullptr && study.result == nullptr) return false;
  study.session.reset();
  study.result.reset();
  study.tracked_slots = 0;
  ++study.evictions;
  PT_COUNTER("serve_evictions", 1.0);
  PT_LOG(Debug) << "serve: evicted idle study state ("
                << study.log.size() << " logged appends kept)";
  return true;
}

void ensure_session(StudyState& study) {
  if (study.session != nullptr) return;
  PT_SPAN("serve_rebuild_session");
  auto session = std::make_unique<tracking::TrackingSession>(study.config);
  for (const AppendEntry& entry : study.log) {
    switch (entry.kind) {
      case AppendEntry::Kind::Gap:
        session->append_gap(entry.label, entry.detail);
        break;
      case AppendEntry::Kind::Inline: {
        std::istringstream in(entry.detail);
        Diagnostics diags = study.config.resilience.lenient
                                ? Diagnostics::lenient()
                                : Diagnostics::strict();
        diags.set_file(entry.label);
        session->append_experiment(std::make_shared<const trace::Trace>(
            trace::read_trace(in, diags)));
        break;
      }
      case AppendEntry::Kind::Path: {
        Diagnostics diags = study.config.resilience.lenient
                                ? Diagnostics::lenient()
                                : Diagnostics::strict();
        try {
          session->append_experiment(std::make_shared<const trace::Trace>(
              trace::load_trace(entry.label, diags)));
        } catch (const Error& error) {
          // The original append succeeded, but the file is gone or broken
          // now. In lenient mode the slot degrades to a gap (same as a
          // fresh failing append would); strict mode surfaces a typed
          // replay failure — the study stays evicted (the half-built
          // session is discarded with this frame), other studies are
          // untouched, and the client learns which entry to restore.
          if (!study.config.resilience.lenient)
            throw ServeError(
                ErrorCode::ReplayFailed,
                "cannot replay study log entry '" + entry.label +
                    "': " + error.what() +
                    " (study stays evicted; restore the trace file, or "
                    "reopen the study leniently)");
          PT_LOG(Warn) << "serve: rebuild lost experiment '" << entry.label
                       << "': " << error.what();
          session->append_gap(entry.label, error.what());
        }
        break;
      }
    }
  }
  study.session = std::move(session);
  if (!study.log.empty()) {
    ++study.rebuilds;
    PT_COUNTER("serve_rebuilds", 1.0);
  }
}

}  // namespace perftrack::serve
