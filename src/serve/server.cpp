#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::serve {

// ---------------------------------------------------------------------------
// BoundedExecutor

BoundedExecutor::BoundedExecutor(std::size_t threads, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      pool_(ThreadPool::resolve(threads)) {}

BoundedExecutor::~BoundedExecutor() { drain(); }

bool BoundedExecutor::try_submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ >= capacity_) {
      ++rejected_;
      return false;
    }
    ++in_flight_;
    ++admitted_;
  }
  pool_.submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      // Handlers answer errors through the protocol; anything escaping
      // here is a bug, but it must not take the accounting down with it.
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--in_flight_ == 0) idle_.notify_all();
  });
  return true;
}

void BoundedExecutor::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

QueueStats BoundedExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return QueueStats{capacity_, in_flight_, admitted_, rejected_};
}

// ---------------------------------------------------------------------------
// OrderedWriter

OrderedWriter::OrderedWriter(std::function<void(const std::string&)> sink)
    : sink_(std::move(sink)) {}

std::uint64_t OrderedWriter::allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_++;
}

void OrderedWriter::write(std::uint64_t seq, std::string line) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.emplace(seq, std::move(line));
  for (auto it = pending_.find(emitted_); it != pending_.end();
       it = pending_.find(emitted_)) {
    sink_(it->second);
    pending_.erase(it);
    ++emitted_;
  }
}

// ---------------------------------------------------------------------------
// Shared request loop

namespace {

/// What one pull from a transport's line source produced. Overlong lines
/// are detected by the source (which discards the line's remainder) and
/// answered with a typed error without the request ever being buffered
/// whole.
enum class LineRead { Eof, Line, Overlong };

/// Background idle-study eviction; joined (and woken) on destruction.
class Sweeper {
public:
  Sweeper(Dispatcher& dispatcher, std::uint64_t interval_ms) {
    if (interval_ms == 0) return;
    thread_ = std::thread([this, &dispatcher, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_) {
        if (wake_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return stop_; }))
          break;
        lock.unlock();
        dispatcher.sweep();
        lock.lock();
      }
    });
  }

  ~Sweeper() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
  }

private:
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::thread thread_;
};

/// Emit the access-log line for a finished request, plus the slow-request
/// span dump when the request crossed the threshold. `begin_ns`/`end_ns`
/// bound the handler-thread window the span replay looks at; rejected
/// requests pass an empty window. Called on whichever thread ran the
/// request, so current_thread_timeline() sees its spans.
void log_request(const ServerOptions& options, const RequestRecord& record,
                 std::uint64_t begin_ns, std::uint64_t end_ns) {
  const bool slow = record.total_ns >= options.slow_ns;
  if (options.access_log == nullptr && !slow) return;
  if (slow) {
    const std::string dump = slow_record_json(record, begin_ns, end_ns);
    if (options.access_log != nullptr) {
      options.access_log->write(dump);
    } else {
      std::cerr << dump << std::endl;
    }
    return;
  }
  options.access_log->write(access_record_json(record));
}

/// Read requests off one connection until EOF or a shutdown request.
/// Parsing and admission happen on the reader thread so rejected requests
/// (bad JSON, full queue, draining) are answered without touching the
/// pool; admitted handlers run concurrently and answer through `writer`.
///
/// Every path feeds the live metrics plane: the reader times parse, the
/// handler task times queue-wait / handler / write and records the
/// end-to-end latency under the request's method ("invalid" for lines
/// that never parsed). Rejections count the error without a latency
/// sample for the phases that never ran.
void serve_requests(Dispatcher& dispatcher, BoundedExecutor& executor,
                    const std::function<LineRead(std::string&)>& next_line,
                    OrderedWriter& writer, const ServerOptions& options) {
  ServeMetrics& metrics = dispatcher.metrics();
  // Per-connection memo of the method's metrics handle: protocol clients
  // overwhelmingly repeat one method down a connection (a reader pool
  // floods `regions`), so the common case records latency through a
  // pre-resolved handle with no string hashing.
  std::string memo_method;
  const ServeMetrics::MethodMetrics* memo_slot = nullptr;
  std::string line;
  LineRead status;
  while ((status = next_line(line)) != LineRead::Eof) {
    if (status == LineRead::Line && line.empty()) continue;
    const std::uint64_t seq = writer.allocate();
    const std::uint64_t t_read = obs::now_ns();

    // Rejection path shared by bad-JSON / draining / overloaded: answer,
    // count, and access-log from the reader thread.
    auto reject = [&](const Request& request, const char* method,
                      ErrorCode code, const std::string& message) {
      PT_COUNTER("serve_requests", 1.0);
      PT_COUNTER("serve_errors", 1.0);
      metrics.count_request(method);
      metrics.count_error(error_code_name(code));
      writer.write(seq,
                   render_response(make_error(request, code, message)) + "\n");
      const std::uint64_t t_written = obs::now_ns();
      metrics.record_request_ns(method, t_written - t_read);
      RequestRecord record;
      record.id = request.id;
      record.method = method;
      record.study = request.study;
      record.outcome = std::string(error_code_name(code));
      record.total_ns = t_written - t_read;
      log_request(options, record, t_written, t_written);
    };

    if (status == LineRead::Overlong) {
      reject(Request{}, "invalid", ErrorCode::BadRequest,
             "request line exceeds " +
                 std::to_string(options.max_line_bytes) +
                 " bytes (--max-line-bytes); oversized input discarded");
      continue;
    }

    Request request;
    try {
      request = parse_request(line);
    } catch (const ServeError& error) {
      reject(Request{}, "invalid", error.code(), error.what());
      continue;
    }
    const std::uint64_t t_parsed = obs::now_ns();
    metrics.record_phase_ns(ServeMetrics::Phase::Parse, t_parsed - t_read);

    if (dispatcher.shutdown_requested()) {
      reject(request, request.method.c_str(), ErrorCode::ShuttingDown,
             "server is draining");
      continue;
    }

    if (request.method != memo_method) {
      memo_method = request.method;
      memo_slot = metrics.method_metrics(memo_method);
    }
    const ServeMetrics::MethodMetrics* slot = memo_slot;

    const bool is_shutdown = request.method == "shutdown";
    bool admitted = executor.try_submit([&dispatcher, &metrics, &writer,
                                         &options, seq, request,
                                         raw_line = line, slot, t_read,
                                         t_parsed] {
      const std::uint64_t t_run = obs::now_ns();
      metrics.record_phase_ns(ServeMetrics::Phase::QueueWait,
                              t_run - t_parsed);
      const Response response = dispatcher.dispatch(request, raw_line);
      const std::uint64_t t_handled = obs::now_ns();
      const std::uint64_t lock_ns = ServeMetrics::context_lock_wait_ns();
      writer.write(seq, render_response(response) + "\n");
      const std::uint64_t t_written = obs::now_ns();
      metrics.record_phase_ns(ServeMetrics::Phase::Write,
                              t_written - t_handled);
      metrics.record_request_ns(slot, t_written - t_read);

      if (options.access_log != nullptr ||
          t_written - t_read >= options.slow_ns) {
        RequestRecord record;
        record.id = request.id;
        record.method = request.method;
        record.study = request.study;
        // A verbatim passthrough (shard front) carries the worker's
        // outcome opaquely inside raw — log it as proxied, not as an
        // error of the front's own.
        record.outcome = !response.raw.empty()
                             ? "proxied"
                             : response.ok
                                   ? "ok"
                                   : std::string(
                                         error_code_name(response.code));
        record.parse_ns = t_parsed - t_read;
        record.queue_ns = t_run - t_parsed;
        record.lock_ns = lock_ns;
        record.handler_ns = t_handled - t_run;
        record.write_ns = t_written - t_handled;
        record.total_ns = t_written - t_read;
        log_request(options, record, t_run, t_written);
      }
    });
    if (!admitted) {
      if (metrics.enabled())
        metrics.registry().counter("perftrackd_overloaded_total").add();
      PT_COUNTER("serve_overloaded", 1.0);
      reject(request, request.method.c_str(), ErrorCode::Overloaded,
             "request queue is full (capacity " +
                 std::to_string(executor.stats().capacity) + "); retry");
      continue;
    }
    // The shutdown response is already queued; stop reading so the caller
    // can drain. Other connections notice via shutdown_requested().
    if (is_shutdown) break;
  }
}

}  // namespace

int serve_stream(Dispatcher& dispatcher, std::istream& in,
                 std::ostream& out, const ServerOptions& options) {
  BoundedExecutor executor(options.threads, options.queue_capacity);
  dispatcher.set_queue_stats([&executor] { return executor.stats(); });
  OrderedWriter writer([&out](const std::string& line) {
    out << line;
    out.flush();
  });
  {
    Sweeper sweeper(dispatcher, options.sweep_interval_ms);
    // The istream transport necessarily buffers the line before the cap
    // check (getline owns the read loop); the fd transport below enforces
    // the cap incrementally. Protocol behaviour is identical.
    const std::size_t cap = options.max_line_bytes;
    serve_requests(
        dispatcher, executor,
        [&in, cap](std::string& line) {
          if (!std::getline(in, line)) return LineRead::Eof;
          if (cap != 0 && line.size() > cap) {
            line.clear();
            return LineRead::Overlong;
          }
          return LineRead::Line;
        },
        writer, options);
    executor.drain();
  }
  dispatcher.set_queue_stats(nullptr);
  return out.good() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// AF_UNIX transport

namespace {

/// Self-pipe for async-signal-safe SIGTERM/SIGINT delivery to poll().
int g_signal_pipe[2] = {-1, -1};

extern "C" void pt_serve_signal_handler(int) {
  char byte = 0;
  // The only async-signal-safe thing to do: poke the pipe.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool write_all(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away; the reader will see EOF and stop
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Incremental line reader over a raw fd (no stdio buffering to fight
/// with shutdown()). Enforces the line-length cap as bytes arrive: once a
/// line outgrows the cap its bytes are dropped, not buffered, so a peer
/// streaming an endless "line" cannot grow the buffer without limit.
class FdLineReader {
public:
  FdLineReader(int fd, std::size_t max_line_bytes)
      : fd_(fd), cap_(max_line_bytes) {}

  LineRead next(std::string& line) {
    while (true) {
      std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        if (discarding_) {
          buffer_.erase(0, nl + 1);
          discarding_ = false;
          return LineRead::Overlong;
        }
        if (cap_ != 0 && nl > cap_) {
          buffer_.erase(0, nl + 1);
          return LineRead::Overlong;
        }
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return LineRead::Line;
      }
      if (cap_ != 0 && buffer_.size() > cap_) {
        buffer_.clear();
        discarding_ = true;
      }
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return LineRead::Eof;
      }
      if (n == 0) {
        if (discarding_) {
          discarding_ = false;
          return LineRead::Overlong;
        }
        if (buffer_.empty()) return LineRead::Eof;
        line.swap(buffer_);  // unterminated final line still counts
        buffer_.clear();
        if (cap_ != 0 && line.size() > cap_) {
          line.clear();
          return LineRead::Overlong;
        }
        return LineRead::Line;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

private:
  int fd_;
  std::size_t cap_;
  bool discarding_ = false;  ///< inside an overlong line, dropping bytes
  std::string buffer_;
};

/// A socket file can be left behind by a crashed daemon (the clean exit
/// path unlinks it). Distinguish the three cases before bind: a live
/// daemon (refuse to steal its name), a stale socket (unlink it with a
/// diagnostic), and a non-socket file (refuse — never delete data).
/// Returns false when `path` must not be replaced.
bool remove_stale_socket(const std::string& path, const sockaddr_un& address) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) return true;  // nothing there
  if (!S_ISSOCK(st.st_mode)) {
    PT_LOG(Error) << "serve: " << path
                  << " exists and is not a socket; refusing to replace it";
    return false;
  }
  int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool alive =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0;
    const int connect_errno = errno;
    ::close(probe);
    if (alive) {
      PT_LOG(Error) << "serve: " << path
                    << " is in use by a live daemon; refusing to unlink it";
      return false;
    }
    PT_LOG(Warn) << "serve: removing stale socket " << path
                 << " (connect probe: " << std::strerror(connect_errno)
                 << " — a previous daemon likely crashed)";
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    PT_LOG(Error) << "serve: cannot unlink stale socket " << path << ": "
                  << std::strerror(errno);
    return false;
  }
  return true;
}

/// Accept loop shared by the AF_UNIX and TCP transports: signal handling,
/// one reader thread per connection, one executor for all of them, and a
/// full drain before returning. Owns (and closes) `listen_fd`.
int run_socket_server(Dispatcher& dispatcher, int listen_fd,
                      const ServerOptions& options) {
  if (::pipe(g_signal_pipe) != 0) {
    PT_LOG(Error) << "serve: pipe(): " << std::strerror(errno);
    ::close(listen_fd);
    return 1;
  }
  struct sigaction action{}, old_term{}, old_int{}, old_pipe{};
  action.sa_handler = pt_serve_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);
  struct sigaction ignore{};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  ::sigaction(SIGPIPE, &ignore, &old_pipe);

  BoundedExecutor executor(options.threads, options.queue_capacity);
  dispatcher.set_queue_stats([&executor] { return executor.stats(); });

  std::mutex connections_mutex;
  std::vector<int> open_fds;
  std::vector<std::thread> readers;

  {
    Sweeper sweeper(dispatcher, options.sweep_interval_ms);
    bool draining = false;
    while (!draining) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
      int ready = ::poll(fds, 2, 200);
      if (dispatcher.shutdown_requested()) break;
      if (ready < 0) {
        if (errno == EINTR) continue;
        PT_LOG(Error) << "serve: poll(): " << std::strerror(errno);
        break;
      }
      if (fds[1].revents & POLLIN) {
        PT_LOG(Info) << "serve: signal received, draining";
        draining = true;
        break;
      }
      if (!(fds[0].revents & POLLIN)) continue;
      int client = ::accept(listen_fd, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) continue;
        PT_LOG(Warn) << "serve: accept(): " << std::strerror(errno);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(connections_mutex);
        open_fds.push_back(client);
      }
      readers.emplace_back([&dispatcher, &executor, &options, client,
                            &connections_mutex, &open_fds] {
        OrderedWriter writer([client](const std::string& line) {
          write_all(client, line);
        });
        FdLineReader reader(client, options.max_line_bytes);
        serve_requests(
            dispatcher, executor,
            [&reader](std::string& line) { return reader.next(line); },
            writer, options);
        // This connection's responses may still be in flight; the global
        // drain is the simple (if coarse) way to flush them before close.
        executor.drain();
        {
          // De-register before close: once closed, the fd number can be
          // reused by a new connection, and the drain loop must not
          // shutdown() someone else's socket.
          std::lock_guard<std::mutex> lock(connections_mutex);
          open_fds.erase(
              std::find(open_fds.begin(), open_fds.end(), client));
        }
        ::close(client);
      });
    }

    // Stop readers blocked in read(): shut the read side down, keep the
    // write side so drained responses still reach the client.
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      for (int fd : open_fds) ::shutdown(fd, SHUT_RD);
    }
    for (std::thread& reader : readers) reader.join();
    executor.drain();
  }

  dispatcher.set_queue_stats(nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;
  ::close(listen_fd);
  PT_LOG(Info) << "perftrackd drained, exiting";
  return 0;
}

}  // namespace

int serve_unix_socket(Dispatcher& dispatcher, const std::string& path,
                      const ServerOptions& options) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    PT_LOG(Error) << "serve: socket path too long (" << path.size()
                  << " bytes, limit " << sizeof(address.sun_path) - 1
                  << "): " << path;
    return 1;
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    PT_LOG(Error) << "serve: socket(): " << std::strerror(errno);
    return 1;
  }
  if (!remove_stale_socket(path, address)) {
    ::close(listen_fd);
    return 1;
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    PT_LOG(Error) << "serve: cannot listen on " << path << ": "
                  << std::strerror(errno);
    ::close(listen_fd);
    return 1;
  }

  PT_LOG(Info) << "perftrackd listening on " << path;
  const int code = run_socket_server(dispatcher, listen_fd, options);
  ::unlink(path.c_str());
  return code;
}

int serve_tcp(Dispatcher& dispatcher, const std::string& host,
              std::uint16_t port, const ServerOptions& options,
              const std::function<void(std::uint16_t)>& on_listening) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    PT_LOG(Error) << "serve: --listen host must be a numeric IPv4 address "
                  << "(got '" << host << "')";
    return 1;
  }

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    PT_LOG(Error) << "serve: socket(): " << std::strerror(errno);
    return 1;
  }
  int yes = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    PT_LOG(Error) << "serve: cannot listen on " << host << ":" << port
                  << ": " << std::strerror(errno);
    ::close(listen_fd);
    return 1;
  }
  // Port 0 asked the kernel to pick: report what it chose.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  std::uint16_t actual_port = port;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    actual_port = ntohs(bound.sin_port);

  PT_LOG(Info) << "perftrackd listening on " << host << ":" << actual_port;
  if (on_listening) on_listening(actual_port);
  return run_socket_server(dispatcher, listen_fd, options);
}

}  // namespace perftrack::serve
