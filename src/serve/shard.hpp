#pragma once
// Shard-by-study front: one Dispatcher fanning a fleet of workers.
//
// `perftrackd --front --shards N` scales reads past one process: the
// front owns no studies — it routes every study-addressed request to the
// worker that owns the study (FNV-1a of the study name, mod N) and
// forwards the client's raw NDJSON line verbatim. The worker's response
// line comes back equally verbatim (Response::raw), so sharded responses
// are byte-identical to a single daemon's — the front adds routing, not
// re-rendering (bench/perf_serve pins this with verdict_shard_identity).
//
// Study-less methods fall into three buckets:
//
//   * ping / hello       answered locally (same bytes a worker produces;
//                        hello advertises the "sharding" capability),
//   * list_studies, stats, metrics, health, sweep, shutdown
//                        fanned out to every shard and merged (counters
//                        sum, uptimes max, draining ORs; see the merge
//                        notes on each helper),
//   * everything else    forwarded to shard 0, so unknown methods and
//                        study-less study methods produce exactly the
//                        single-daemon typed error (closed error enum).
//
// The backend seam is a plain function from request line to response
// line: the daemon wires NdjsonClient roundtrips into it, tests and the
// bench wire TrackingService::handle_line directly and exercise the full
// routing/merge logic in-process with zero sockets.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/dispatcher.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace perftrack::serve {

class ShardFront : public Dispatcher {
public:
  /// One worker: takes a complete request line (no trailing newline),
  /// returns the complete response line (no trailing newline). Must be
  /// callable from multiple threads; throws on transport failure.
  using Backend = std::function<std::string(const std::string& line)>;

  /// At least one backend; `metrics` false disables the front's own
  /// metrics plane (the workers keep theirs regardless).
  explicit ShardFront(std::vector<Backend> backends, bool metrics = true);

  /// The routing function: which shard owns `study` out of `shards`.
  /// Stable across runs (pure FNV-1a 64) — clients may rely on it.
  static std::size_t shard_of(const std::string& study, std::size_t shards);

  std::size_t shards() const { return backends_.size(); }

  Response dispatch(const Request& request,
                    const std::string& raw_line) override;

  bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

  ServeMetrics& metrics() override { return metrics_; }

  void set_queue_stats(std::function<QueueStats()> fn) override {
    queue_stats_ = std::move(fn);
  }

  /// The front holds no sessions; each worker runs its own idle sweeper.
  /// (The `sweep` protocol request does fan out — this is only the
  /// front's local timer hook.)
  std::size_t sweep() override { return 0; }

private:
  /// Forward the raw line to one shard; the reply becomes Response::raw.
  Response forward(std::size_t shard, const std::string& raw_line);

  /// Send `line` to every shard and return the parsed result objects.
  /// Throws ServeError{Internal} naming the shard on transport failure
  /// or a worker-side error response.
  std::vector<obs::JsonValue> fan_out(const std::string& line);

  std::string ping_body() const;
  std::string hello_body() const;
  std::string merged_list_studies();
  std::string merged_stats();
  std::string merged_metrics(const Request& request);
  std::string merged_health();
  std::string merged_sweep();
  std::string merged_shutdown();

  std::vector<Backend> backends_;
  std::atomic<bool> shutdown_{false};
  std::function<QueueStats()> queue_stats_;
  ServeMetrics metrics_;
  std::uint64_t start_ns_;
};

}  // namespace perftrack::serve
