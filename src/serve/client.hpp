#pragma once
// Blocking NDJSON client for the perftrackd protocol.
//
// The thin counterpart of serve_unix_socket(): connect to the daemon's
// socket, write one request line, read one response line. `perftrack
// stat` is built on it; tests use it to talk to a daemon end to end.
// One request in flight at a time — callers needing pipelining should
// hold several clients.
//
// Resilience: a RetryPolicy bounds each attempt with a deadline (poll()
// around every send/recv) and retries transport failures — connection
// refused, daemon restart, timeout — with exponential backoff plus
// jitter, reconnecting between attempts. Retrying a request that may
// have been applied is only safe when the request is idempotent: reads
// always are, and appends are made so by the `seq` parameter (the
// service applies each seq exactly once — docs/SERVING.md, durability).

#include <cstdint>
#include <random>
#include <string>

#include "serve/protocol.hpp"

namespace perftrack::serve {

/// One parsed response line, from the client's side of the wire.
struct ClientResponse {
  bool ok = false;
  std::string error_code;     ///< wire code when !ok
  std::string error_message;  ///< human message when !ok
  obs::JsonValue result;      ///< result object when ok (Null otherwise)
};

/// Parse one NDJSON response line. Throws Error on malformed JSON (a
/// daemon bug or a non-daemon peer).
ClientResponse parse_client_response(const std::string& line);

/// Per-roundtrip resilience policy. The default (one attempt, no
/// deadline) reproduces the historical block-forever behaviour.
struct RetryPolicy {
  /// Total tries per roundtrip (and per initial connect); >= 1.
  int attempts = 1;

  /// Per-attempt deadline in milliseconds for connect/send/recv
  /// (0 = block forever).
  std::uint64_t deadline_ms = 0;

  /// First retry delay; doubles per retry up to backoff_max_ms. A random
  /// jitter of up to half the delay is added so a herd of retrying
  /// clients does not re-arrive in lockstep.
  std::uint64_t backoff_ms = 10;
  std::uint64_t backoff_max_ms = 1000;
};

class NdjsonClient {
public:
  /// Connect to `path`, retrying per `retry` (so a client racing a
  /// daemon's startup can wait for the endpoint to appear). `path` is an
  /// AF_UNIX socket path, or "tcp://HOST:PORT" (numeric IPv4) to reach a
  /// daemon started with --listen. Throws Error when every attempt fails.
  explicit NdjsonClient(const std::string& path, RetryPolicy retry = {});
  ~NdjsonClient();

  NdjsonClient(const NdjsonClient&) = delete;
  NdjsonClient& operator=(const NdjsonClient&) = delete;

  /// Send one request line (newline appended) and block for the response
  /// line, retrying transport failures per the policy (reconnecting
  /// between attempts). Throws Error when every attempt fails.
  std::string roundtrip(const std::string& request_line);

  /// Convenience: call `method` (optionally against `study`, optionally
  /// with `params_json`, a complete JSON object) and return the parsed
  /// response. Throws Error on transport failure; protocol errors come
  /// back as ok=false, not exceptions.
  ClientResponse call(const std::string& method,
                      const std::string& study = "",
                      const std::string& params_json = "");

private:
  void connect_now();   ///< one bounded connect attempt; throws Error
  void disconnect();
  std::string attempt_roundtrip(const std::string& line);
  std::uint64_t backoff_delay_ms(int attempt);

  std::string path_;
  RetryPolicy retry_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last response line
  std::minstd_rand rng_;
};

}  // namespace perftrack::serve
