#pragma once
// Blocking NDJSON client for the perftrackd protocol.
//
// The thin counterpart of serve_unix_socket(): connect to the daemon's
// socket, write one request line, read one response line. `perftrack
// stat` is built on it; tests use it to talk to a daemon end to end.
// One request in flight at a time — callers needing pipelining should
// hold several clients.

#include <string>

#include "serve/protocol.hpp"

namespace perftrack::serve {

/// One parsed response line, from the client's side of the wire.
struct ClientResponse {
  bool ok = false;
  std::string error_code;     ///< wire code when !ok
  std::string error_message;  ///< human message when !ok
  obs::JsonValue result;      ///< result object when ok (Null otherwise)
};

/// Parse one NDJSON response line. Throws Error on malformed JSON (a
/// daemon bug or a non-daemon peer).
ClientResponse parse_client_response(const std::string& line);

class NdjsonClient {
public:
  /// Connect to the AF_UNIX socket at `path`; throws Error when the
  /// daemon is not there.
  explicit NdjsonClient(const std::string& path);
  ~NdjsonClient();

  NdjsonClient(const NdjsonClient&) = delete;
  NdjsonClient& operator=(const NdjsonClient&) = delete;

  /// Send one request line (newline appended) and block for the response
  /// line. Throws Error on a broken connection.
  std::string roundtrip(const std::string& request_line);

  /// Convenience: call `method` (optionally against `study`) with no
  /// params and return the parsed response. Throws Error on transport
  /// failure; protocol errors come back as ok=false, not exceptions.
  ClientResponse call(const std::string& method,
                      const std::string& study = "");

private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last response line
};

}  // namespace perftrack::serve
