#pragma once
// Crash-safe durability plane for perftrackd studies.
//
// A study's append log (the ordered list of trace paths / inline texts /
// gaps that *defines* it — see registry.hpp) used to live only in memory:
// a daemon crash silently lost every open study. The journal makes the log
// durable. Each study owns one append-only file under the daemon's state
// directory:
//
//   <state-dir>/<escaped-study-name>.journal
//
// framed with the same primitives as the PR 4 frame cache (store/serialize
// BinWriter + fnv1a64):
//
//   header  := "PTJL" u32 version
//   record  := u32 payload_len | u64 fnv1a64(payload) | payload
//   payload := u8 type | fields        (Create / Append / Remove)
//
// The Create record pins the study's name and the open_study-settable
// configuration (eps, min_pts, min-cluster fraction, lenience, gap budget,
// cache dir) so a restarted daemon reopens the study exactly as the
// analyst configured it. Append records carry the log entry plus the
// client-supplied idempotency `seq`; Remove is the close_study tombstone,
// written and fsynced before the file is unlinked so a crash between the
// two still removes the study on the next boot.
//
// Write-ahead discipline: the service journals an append *before* applying
// it in memory, so every state a reader can observe is recoverable. On a
// write failure the journal heals its own tail (ftruncate back to the last
// committed record) so one failed append does not poison the file; a
// simulated crash (the journal_torn_write failpoint) skips the healing,
// which is exactly what recovery's truncate-at-first-bad-checksum handles.
//
// Recovery (recover_state_dir) rescans the directory on boot:
//   * a torn tail or a record with a bad checksum truncates the file at
//     the last good record, with a structured diagnostic (journal_truncated);
//   * a file without a valid header — or without a Create record — is
//     quarantined (renamed to *.quarantined, journal_quarantined) instead
//     of crashing the daemon or eating other studies;
//   * duplicate seq numbers (possible when a crash raced a batched fsync
//     and the client retried) are dropped during replay, preserving the
//     exactly-once contract;
//   * a trailing Remove tombstone deletes the file and restores nothing.
//
// Durability knobs: --fsync=always fsyncs every record (safest, slowest),
// batch fsyncs every batch_appends records plus on drain/close, off leaves
// flushing to the OS. Compaction (tmp+rename snapshot of the live log)
// bounds file growth and recovery-scan cost once a study accumulates
// compact_threshold records since the last rewrite.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tracking/session.hpp"

namespace perftrack::serve {

/// One entry of a study's append log — the durable definition of the
/// sequence, retained across session eviction and daemon restarts.
struct AppendEntry {
  enum class Kind { Path, Inline, Gap };
  Kind kind = Kind::Path;
  std::string label;   ///< file path, inline label, or gap label
  std::string detail;  ///< inline trace text, or gap reason
  /// Client-supplied idempotency sequence number (0 = none). Appends that
  /// carry a seq are applied exactly once: replays of an already-applied
  /// seq are acknowledged without re-appending.
  std::uint64_t seq = 0;
};

/// When journal records reach the disk platter.
enum class FsyncMode {
  Always,  ///< fsync after every record (create/append/tombstone)
  Batch,   ///< fsync every batch_appends records and on sync()/close
  Off,     ///< never fsync; the OS flushes when it pleases
};

/// Parse "always" | "batch" | "off"; throws Error otherwise.
FsyncMode fsync_mode_from_name(const std::string& name);
std::string_view fsync_mode_name(FsyncMode mode);

struct JournalConfig {
  /// State directory holding one journal per study; empty disables the
  /// durability plane entirely. Created on demand.
  std::string directory;

  FsyncMode fsync = FsyncMode::Batch;

  /// Batch mode: fsync after this many unsynced records.
  std::size_t batch_appends = 64;

  /// Snapshot-rewrite a journal after this many records appended since the
  /// last rewrite (0 = never compact).
  std::size_t compact_threshold = 4096;

  bool enabled() const { return !directory.empty(); }
};

/// File name (not path) a study journals into: the study name with every
/// byte outside [A-Za-z0-9_-] percent-escaped, plus the ".journal"
/// extension. Injective, so distinct studies never share a file.
std::string journal_file_name(const std::string& study);

/// The append-side handle to one study's journal file. Not thread-safe:
/// the owning StudyState's exclusive lock serialises all calls.
class Journal {
public:
  /// Start a fresh journal for `study` (truncating any leftover file) and
  /// durably record the Create record. Throws IoError.
  static std::unique_ptr<Journal> create(
      const JournalConfig& config, const std::string& study,
      const tracking::SessionConfig& session);

  /// Re-attach to a journal validated by recover_state_dir for further
  /// appends. `records`/`bytes` come from the recovery scan. Throws
  /// IoError when the file cannot be reopened.
  static std::unique_ptr<Journal> attach(const JournalConfig& config,
                                         const std::string& study,
                                         std::uint64_t records,
                                         std::uint64_t bytes);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Durably append one log entry per the fsync policy. Throws IoError on
  /// a write/fsync failure; the in-memory log must then NOT be updated
  /// (write-ahead ordering). The tail self-heals after a failed write, so
  /// the journal stays usable unless a crash was simulated.
  void append(const AppendEntry& entry);

  /// close_study: write + fsync the Remove tombstone, then unlink the
  /// file. Throws IoError when the tombstone cannot be made durable (the
  /// study then stays open); a failed unlink after a durable tombstone is
  /// only a warning — recovery deletes the file on the next boot.
  void remove_and_unlink();

  /// Flush any unsynced records to disk (drain / SIGTERM path). Throws
  /// IoError when fsync fails.
  void sync();

  /// True once compact_threshold records accumulated since the last
  /// rewrite (never when compaction is disabled or the journal is broken).
  bool should_compact() const;

  /// Snapshot-rewrite the journal to exactly `live` (tmp + fsync +
  /// rename), dropping dead bytes and resetting the compaction clock.
  /// Throws IoError; the original file stays intact on failure.
  void compact(const std::string& study,
               const tracking::SessionConfig& session,
               const std::vector<AppendEntry>& live);

  std::uint64_t records() const { return records_; }
  std::uint64_t bytes() const { return good_size_; }
  std::uint64_t compactions() const { return compactions_; }
  const std::string& path() const { return path_; }

private:
  Journal(JournalConfig config, std::string study, std::string path);

  void open_for_append(bool truncate);
  void write_record_or_heal(const std::string& record);
  void heal_tail();
  void fsync_now();
  void fsync_directory();

  JournalConfig config_;
  std::string study_;
  std::string path_;
  int fd_ = -1;
  std::uint64_t good_size_ = 0;   ///< bytes up to the last committed record
  std::uint64_t records_ = 0;     ///< records in the file
  std::uint64_t unsynced_ = 0;    ///< records since the last fsync
  std::uint64_t appended_since_compact_ = 0;
  std::uint64_t compactions_ = 0;
  bool broken_ = false;  ///< simulated crash left a torn tail; appends fail
};

/// One study restored by the recovery scan.
struct RecoveredStudy {
  std::string name;
  tracking::SessionConfig config;  ///< base config + journaled overrides
  std::vector<AppendEntry> entries;
  std::uint64_t last_seq = 0;  ///< highest idempotency seq ever applied
  std::uint64_t records = 0;   ///< records in the (possibly truncated) file
  std::uint64_t bytes = 0;     ///< file size after truncation
  bool truncated = false;      ///< a torn tail / bad record was cut off
};

/// Outcome of one boot-time state-dir scan.
struct RecoveryReport {
  std::vector<RecoveredStudy> studies;
  std::uint64_t recovered = 0;    ///< studies restored
  std::uint64_t truncated = 0;    ///< journals cut at a torn/corrupt record
  std::uint64_t quarantined = 0;  ///< unreadable journals set aside
  std::uint64_t tombstones = 0;   ///< closed studies' journals deleted
  std::uint64_t deduped = 0;      ///< duplicate-seq records skipped
};

/// Scan `config.directory` for *.journal files and rebuild every study's
/// durable log. `base` supplies the configuration fields the Create record
/// does not override. Never throws: unreadable journals are quarantined
/// with a diagnostic, torn tails truncated in place. A missing or empty
/// directory recovers nothing.
RecoveryReport recover_state_dir(const JournalConfig& config,
                                 const tracking::SessionConfig& base);

}  // namespace perftrack::serve
