#pragma once
// Versioned render cache: hot reads without the study lock.
//
// Rendering a read response (regions text, trends table, the HTML
// report) costs far more than looking it up, and the bytes only change
// when the study does. Every StudyState carries a monotonically
// increasing generation, bumped under the exclusive lock by every
// append/gap; rendered responses are cached keyed by
//
//   (study instance, generation, request shape)
//
// so a hot read is one hash lookup under a sharded shared_mutex — no
// study lock, no session, no retrack. Invalidation is implicit: an
// append bumps the generation, the next read misses and renders fresh,
// and the stale entry ages out of its shard by capacity. The instance id
// (assigned by StudyRegistry::create) keeps a closed-and-reopened study
// from colliding with its predecessor's entries, whose generations
// restart at zero.
//
// Eviction of a study's *session* does not bump the generation: the
// rebuilt session is bit-identical by contract, so cached renders stay
// valid and an evicted study keeps answering reads from the cache
// without rebuilding at all.
//
// Thread safety: get/put from any thread. Values are shared_ptr<const
// string> so a hit can be handed out while the entry is concurrently
// evicted. Counters are relaxed atomics, exported through the metrics
// plane (perftrackd_render_cache_*) and the `stats` method.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace perftrack::serve {

class RenderCache {
public:
  /// `capacity` bounds the total cached entries (split evenly across the
  /// internal shards); 0 disables caching entirely (get always misses,
  /// put drops).
  explicit RenderCache(std::size_t capacity = 4096);

  RenderCache(const RenderCache&) = delete;
  RenderCache& operator=(const RenderCache&) = delete;

  /// Cached bytes for `key`, or null on a miss.
  std::shared_ptr<const std::string> get(const std::string& key);

  /// Insert (or overwrite) `key`. When the shard is full an arbitrary
  /// resident entry is dropped first — stale generations are the usual
  /// victims since nothing looks them up again.
  void put(const std::string& key, std::shared_ptr<const std::string> value);

  /// Render the canonical cache key. `shape` folds in everything the
  /// response bytes depend on besides the study state (method name plus
  /// normalised parameters, e.g. "trends:IPC").
  static std::string key(const std::string& study, std::uint64_t instance_id,
                         std::uint64_t generation, std::string_view shape);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;  ///< currently resident
  };
  Counters counters() const;

private:
  static constexpr std::size_t kShards = 16;

  struct alignas(64) Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const std::string>> map;
  };

  Shard& shard_of(const std::string& key);

  std::size_t per_shard_cap_;
  std::array<Shard, kShards> shards_;

  // On separate cache lines: the hit counter is the one every pooled
  // reader hammers, and false sharing there is exactly the scaling tax
  // this cache exists to remove.
  alignas(64) std::atomic<std::uint64_t> hits_{0};
  alignas(64) std::atomic<std::uint64_t> misses_{0};
  alignas(64) std::atomic<std::uint64_t> inserts_{0};
  alignas(64) std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace perftrack::serve
