#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

namespace perftrack::serve {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::UnknownMethod: return "unknown-method";
    case ErrorCode::UnknownStudy: return "unknown-study";
    case ErrorCode::StudyExists: return "study-exists";
    case ErrorCode::InvalidConfig: return "invalid-config";
    case ErrorCode::ParseFailure: return "parse-failure";
    case ErrorCode::IoFailure: return "io-failure";
    case ErrorCode::TrackingFailed: return "tracking-failed";
    case ErrorCode::ReplayFailed: return "replay-failed";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::ShuttingDown: return "shutting-down";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

namespace {

/// Re-render a scalar id value exactly as the response should echo it.
/// Only scalars are legal ids; containers are a bad request.
std::string render_id(const obs::JsonValue& id) {
  switch (id.type) {
    case obs::JsonValue::Type::String: {
      return "\"" + obs::escape_json(id.string) + "\"";
    }
    case obs::JsonValue::Type::Number: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.12g", id.number);
      return buf;
    }
    case obs::JsonValue::Type::Bool:
      return id.boolean ? "true" : "false";
    case obs::JsonValue::Type::Null:
      return "null";
    default:
      throw ServeError(ErrorCode::BadRequest,
                       "request id must be a scalar (string or number)");
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(line);
  } catch (const Error& error) {
    throw ServeError(ErrorCode::BadRequest,
                     std::string("malformed request JSON: ") + error.what());
  }
  if (!doc.is_object())
    throw ServeError(ErrorCode::BadRequest,
                     "request must be a JSON object with a \"method\" field");

  Request request;
  if (doc.has("id")) request.id = render_id(doc.at("id"));
  if (!doc.has("method") || !doc.at("method").is_string())
    throw ServeError(ErrorCode::BadRequest,
                     "request needs a string \"method\" field");
  request.method = doc.at("method").string;
  if (doc.has("study")) {
    if (!doc.at("study").is_string())
      throw ServeError(ErrorCode::BadRequest,
                       "\"study\" must be a string");
    request.study = doc.at("study").string;
  }
  if (doc.has("params")) {
    if (!doc.at("params").is_object())
      throw ServeError(ErrorCode::BadRequest,
                       "\"params\" must be an object");
    request.params = doc.at("params");
  }
  return request;
}

std::string render_response(const Response& response) {
  if (!response.raw.empty()) return response.raw;
  std::string out = "{";
  if (!response.id.empty()) out += "\"id\":" + response.id + ",";
  if (response.ok) {
    out += "\"ok\":true,\"result\":";
    out += response.result_json.empty() ? "{}" : response.result_json;
  } else {
    out += "\"ok\":false,\"error\":{\"code\":\"";
    out += error_code_name(response.code);
    out += "\",\"message\":\"" + obs::escape_json(response.message) + "\"}";
  }
  out += "}";
  return out;
}

Response make_result(const Request& request, std::string result_json) {
  Response response;
  response.id = request.id;
  response.ok = true;
  response.result_json = std::move(result_json);
  return response;
}

Response make_error(const Request& request, ErrorCode code,
                    const std::string& message) {
  Response response;
  response.id = request.id;
  response.ok = false;
  response.code = code;
  response.message = message;
  return response;
}

}  // namespace perftrack::serve
