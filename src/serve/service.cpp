#include "serve/service.hpp"

#include <cmath>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <sstream>

#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_io.hpp"
#include "tracking/html_report.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

namespace perftrack::serve {

namespace {

/// Typed access to optional request parameters.
const obs::JsonValue* find_param(const Request& request, const char* name) {
  if (!request.params.is_object()) return nullptr;
  auto it = request.params.object.find(name);
  return it == request.params.object.end() ? nullptr : &it->second;
}

std::string param_string(const Request& request, const char* name,
                         bool required = false) {
  const obs::JsonValue* value = find_param(request, name);
  if (value == nullptr) {
    if (required)
      throw ServeError(ErrorCode::BadRequest,
                       std::string("missing required parameter \"") + name +
                           "\"");
    return {};
  }
  if (!value->is_string())
    throw ServeError(ErrorCode::BadRequest,
                     std::string("parameter \"") + name +
                         "\" must be a string");
  return value->string;
}

double param_number(const Request& request, const char* name,
                    double fallback) {
  const obs::JsonValue* value = find_param(request, name);
  if (value == nullptr) return fallback;
  if (!value->is_number())
    throw ServeError(ErrorCode::BadRequest,
                     std::string("parameter \"") + name +
                         "\" must be a number");
  return value->number;
}

bool param_bool(const Request& request, const char* name, bool fallback) {
  const obs::JsonValue* value = find_param(request, name);
  if (value == nullptr) return fallback;
  if (value->type != obs::JsonValue::Type::Bool)
    throw ServeError(ErrorCode::BadRequest,
                     std::string("parameter \"") + name +
                         "\" must be a boolean");
  return value->boolean;
}

/// Idempotency sequence number for appends: absent = 0 = none; otherwise
/// a positive integer (IEEE doubles carry integers exactly to 2^53).
std::uint64_t param_seq(const Request& request) {
  const obs::JsonValue* value = find_param(request, "seq");
  if (value == nullptr) return 0;
  if (!value->is_number() || value->number < 1.0 ||
      value->number != std::floor(value->number) ||
      value->number > 9007199254740992.0)
    throw ServeError(ErrorCode::BadRequest,
                     "parameter \"seq\" must be a positive integer");
  return static_cast<std::uint64_t>(value->number);
}

/// Acknowledge an append whose seq was already applied — exactly-once
/// under client retries. Served from the log alone: a replay must not
/// force a session rebuild of an evicted study.
std::string deduped_response(const StudyState& study, std::uint64_t seq) {
  std::uint64_t gaps = 0;
  std::optional<std::size_t> slot;
  for (std::size_t i = 0; i < study.log.size(); ++i) {
    if (study.log[i].kind == AppendEntry::Kind::Gap) ++gaps;
    if (study.log[i].seq == seq) slot = i;
  }
  obs::JsonWriter json;
  json.begin_object();
  json.key("deduped").value(true);
  if (slot.has_value())
    json.key("slot").value(static_cast<std::uint64_t>(*slot));
  json.key("experiments")
      .value(static_cast<std::uint64_t>(study.log.size()));
  json.key("gaps").value(gaps);
  json.end_object();
  return json.str();
}

void touch(StudyState& study) {
  study.last_used_ns.store(obs::now_ns(), std::memory_order_relaxed);
}

/// Acquire a deferred lock, recording the wait into the lock_wait phase
/// histogram and the current request's context (for the access log).
template <typename Lock>
void acquire_timed(Lock& lock, ServeMetrics& metrics) {
  const std::uint64_t begin_ns = obs::now_ns();
  lock.lock();
  metrics.record_lock_wait_ns(obs::now_ns() - begin_ns);
}

/// Summary numbers every read endpoint shares.
void write_result_summary(obs::JsonWriter& json,
                          const tracking::TrackingResult& result) {
  json.key("frames").value(static_cast<std::uint64_t>(result.frames.size()));
  json.key("experiments")
      .value(static_cast<std::uint64_t>(result.sequence_length()));
  json.key("gaps").value(static_cast<std::uint64_t>(result.gaps.size()));
  json.key("regions")
      .value(static_cast<std::uint64_t>(result.regions.size()));
  json.key("complete")
      .value(static_cast<std::uint64_t>(result.complete_count));
  json.key("coverage").value(result.coverage);
  json.key("effective_coverage").value(result.effective_coverage());
}

}  // namespace

TrackingService::TrackingService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics),
      render_cache_(config_.render_cache_capacity),
      start_ns_(obs::now_ns()) {
  config_.session.validate_or_throw();
  // Dispatch table: method name -> handler + the static span literal that
  // gives the endpoint its latency/throughput slot in the run report +
  // the pre-resolved metrics handle (no string hashing per request).
  const struct {
    const char* method;
    const char* span;
    std::string (TrackingService::*fn)(const Request&);
  } kTable[] = {
      {"ping", "serve_ping", &TrackingService::do_ping},
      {"hello", "serve_hello", &TrackingService::do_hello},
      {"open_study", "serve_open_study", &TrackingService::do_open_study},
      {"close_study", "serve_close_study", &TrackingService::do_close_study},
      {"list_studies", "serve_list_studies",
       &TrackingService::do_list_studies},
      {"append_experiment", "serve_append_experiment",
       &TrackingService::do_append_experiment},
      {"append_gap", "serve_append_gap", &TrackingService::do_append_gap},
      {"retrack", "serve_retrack", &TrackingService::do_retrack},
      {"regions", "serve_regions", &TrackingService::do_regions},
      {"trends", "serve_trends", &TrackingService::do_trends},
      {"report", "serve_report", &TrackingService::do_report},
      {"coverage", "serve_coverage", &TrackingService::do_coverage},
      {"stats", "serve_stats", &TrackingService::do_stats},
      {"metrics", "serve_metrics", &TrackingService::do_metrics},
      {"health", "serve_health", &TrackingService::do_health},
      {"evict", "serve_evict", &TrackingService::do_evict},
      {"sweep", "serve_sweep", &TrackingService::do_sweep},
      {"shutdown", "serve_shutdown", &TrackingService::do_shutdown},
  };
  for (const auto& row : kTable)
    endpoints_.emplace(row.method,
                       Endpoint{row.span, row.fn,
                                metrics_.method_metrics(row.method)});
  if (durable()) recover_state();
}

/// Wire names of every supported method, for the `hello` handshake.
std::vector<std::string> TrackingService::method_names() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [name, endpoint] : endpoints_) out.push_back(name);
  return out;
}

void TrackingService::recover_state() {
  RecoveryReport report = recover_state_dir(config_.journal, config_.session);
  journal_truncated_ += report.truncated;
  journal_quarantined_ += report.quarantined;
  journal_deduped_ += report.deduped;
  for (RecoveredStudy& rec : report.studies) {
    const std::vector<std::string> problems = rec.config.validate();
    if (!problems.empty()) {
      ++journal_errors_;
      std::string what;
      for (const std::string& p : problems) what += " " + p + ";";
      PT_LOG(Warn) << "journal: recovered study '" << rec.name
                   << "' has an invalid configuration, skipping:" << what;
      continue;
    }
    std::shared_ptr<StudyState> study;
    try {
      study = registry_.create(rec.name, rec.config);
    } catch (const ServeError&) {
      continue;  // recover_state_dir quarantines duplicates; belt+braces
    }
    std::unique_lock lock(study->mutex);
    study->log = std::move(rec.entries);
    study->last_seq = rec.last_seq;
    study->appends = study->log.size();
    // Any monotone starting point works — the fresh instance_id already
    // separates this incarnation's cache keys from any predecessor's.
    study->generation.store(study->log.size(), std::memory_order_release);
    try {
      study->journal = Journal::attach(config_.journal, rec.name,
                                       rec.records, rec.bytes);
    } catch (const Error& error) {
      ++journal_errors_;
      PT_LOG(Warn) << "journal: cannot reopen journal of study '" << rec.name
                   << "': " << error.what()
                   << " — study recovered but further appends are not "
                   << "journaled";
    }
    touch(*study);
    ++journal_recovered_;
  }
  if (journal_recovered_ > 0 || report.truncated > 0 ||
      report.quarantined > 0 || report.tombstones > 0)
    PT_LOG(Info) << "journal: recovery of " << config_.journal.directory
                 << ": " << journal_recovered_.load() << " studies restored, "
                 << report.truncated << " truncated, " << report.quarantined
                 << " quarantined, " << report.tombstones
                 << " closes completed";
}

void TrackingService::journal_append(StudyState& study,
                                     const AppendEntry& entry) {
  if (study.journal == nullptr) return;
  try {
    study.journal->append(entry);
  } catch (const Error& error) {
    ++journal_errors_;
    throw ServeError(ErrorCode::IoFailure,
                     std::string("journal append failed: ") + error.what() +
                         " (the append was not applied; retrying with the "
                         "same seq is safe)");
  }
}

void TrackingService::maybe_compact(const std::string& name,
                                    StudyState& study) {
  if (study.journal == nullptr || !study.journal->should_compact()) return;
  try {
    study.journal->compact(name, study.config, study.log);
  } catch (const Error& error) {
    // The uncompacted journal is still complete and correct; compaction
    // retries after the next threshold's worth of appends.
    ++journal_errors_;
    PT_LOG(Warn) << "journal: compaction failed for study '" << name
                 << "': " << error.what();
  }
}

void TrackingService::flush_journals() {
  if (!durable()) return;
  for (const std::string& name : registry_.names()) {
    std::shared_ptr<StudyState> study;
    try {
      study = registry_.get(name);
    } catch (const ServeError&) {
      continue;
    }
    std::unique_lock lock(study->mutex);
    if (study->journal == nullptr) continue;
    try {
      study->journal->sync();
    } catch (const Error& error) {
      ++journal_errors_;
      PT_LOG(Warn) << "journal: drain flush failed for study '" << name
                   << "': " << error.what();
    }
  }
}

Response TrackingService::handle_line(const std::string& line) {
  try {
    return handle(parse_request(line));
  } catch (const ServeError& error) {
    PT_COUNTER("serve_errors", 1.0);
    return make_error(Request{}, error.code(), error.what());
  }
}

Response TrackingService::handle(const Request& request) {
  PT_SPAN("serve_request");
  PT_COUNTER("serve_requests", 1.0);

  // One endpoints_ find resolves the handler, its span literal, and its
  // metrics handle together — the per-request hot path does no string
  // hashing at all (the handles were bound in the constructor).
  auto it = endpoints_.find(request.method);
  const ServeMetrics::MethodMetrics* slot =
      it != endpoints_.end() ? it->second.metrics
                             : metrics_.method_metrics(request.method);

  // Live-metrics side: the lock-wait context is per handle() call, and
  // the handler histogram times everything below (dispatch included), so
  // direct callers — tests, benches — fill the same histograms the
  // daemon does.
  ServeMetrics::reset_request_context();
  metrics_.count_request(slot);
  const std::uint64_t handler_begin_ns = obs::now_ns();

  Response response = [&] {
    try {
      if (it == endpoints_.end())
        throw ServeError(ErrorCode::UnknownMethod,
                         "unknown method '" + request.method + "'");
      PT_SPAN(it->second.span);
      return make_result(request, (this->*(it->second.fn))(request));
    } catch (const ServeError& error) {
      PT_COUNTER("serve_errors", 1.0);
      metrics_.count_error(error_code_name(error.code()));
      return make_error(request, error.code(), error.what());
    } catch (const ParseError& error) {
      PT_COUNTER("serve_errors", 1.0);
      metrics_.count_error(error_code_name(ErrorCode::ParseFailure));
      return make_error(request, ErrorCode::ParseFailure, error.what());
    } catch (const IoError& error) {
      PT_COUNTER("serve_errors", 1.0);
      metrics_.count_error(error_code_name(ErrorCode::IoFailure));
      return make_error(request, ErrorCode::IoFailure, error.what());
    } catch (const std::exception& error) {
      PT_COUNTER("serve_errors", 1.0);
      metrics_.count_error(error_code_name(ErrorCode::Internal));
      return make_error(request, ErrorCode::Internal, error.what());
    }
  }();

  metrics_.record_handler_ns(slot, obs::now_ns() - handler_begin_ns);
  return response;
}

std::shared_ptr<StudyState> TrackingService::study_of(
    const Request& request) const {
  if (request.study.empty())
    throw ServeError(ErrorCode::BadRequest,
                     "method '" + request.method +
                         "' needs a \"study\" field");
  return registry_.get(request.study);
}

std::shared_ptr<const tracking::TrackingResult> TrackingService::tracked_result(
    StudyState& study, std::uint64_t* generation) {
  {
    std::shared_lock lock(study.mutex, std::defer_lock);
    acquire_timed(lock, metrics_);
    touch(study);
    if (study.tracked()) {
      if (generation != nullptr)
        *generation = study.generation.load(std::memory_order_acquire);
      return study.result;
    }
  }
  // Stale (or never tracked): upgrade and retrack. Another writer may get
  // there first — re-check under the exclusive lock; a double retrack
  // would be wasted work, not a correctness problem.
  std::unique_lock lock(study.mutex, std::defer_lock);
  acquire_timed(lock, metrics_);
  if (!study.tracked()) retrack_locked(study);
  if (generation != nullptr)
    *generation = study.generation.load(std::memory_order_acquire);
  return study.result;
}

std::string TrackingService::cached_render(
    StudyState& study, const std::string& name, const std::string& shape,
    const std::function<std::string(const tracking::TrackingResult&)>&
        render) {
  // Fast path: a cache entry keyed by the generation we observe now is
  // current — generation only moves forward, and any append that made it
  // move rewrote what a read would render. The lock-free read here may
  // race an in-flight append; that is fine either way: an older
  // generation misses (we render fresh below), a newer one was stored by
  // a reader that already saw the append applied.
  const std::uint64_t observed =
      study.generation.load(std::memory_order_acquire);
  const std::string key =
      RenderCache::key(name, study.instance_id, observed, shape);
  if (auto hit = render_cache_.get(key)) {
    touch(study);
    return *hit;
  }
  // Miss: take the read path (shared lock, retrack if stale) and record
  // the generation the result actually corresponds to — it may be newer
  // than `observed` if an append landed in between, and the bytes must
  // be stored under the generation they were rendered from.
  std::uint64_t generation = 0;
  auto result = tracked_result(study, &generation);
  auto body = std::make_shared<const std::string>(render(*result));
  render_cache_.put(
      RenderCache::key(name, study.instance_id, generation, shape), body);
  return *body;
}

void TrackingService::retrack_locked(StudyState& study) {
  if (study.log.size() < 2)
    throw ServeError(ErrorCode::BadRequest,
                     "study has " + std::to_string(study.log.size()) +
                         " experiment(s); tracking needs at least two "
                         "appends before retrack/reads");
  ensure_session(study);
  try {
    study.result = std::make_shared<const tracking::TrackingResult>(
        study.session->retrack());
  } catch (const Error& error) {
    throw ServeError(ErrorCode::TrackingFailed, error.what());
  }
  study.tracked_slots = study.log.size();
  ++study.retracks;
}

std::string TrackingService::do_ping(const Request&) {
  obs::JsonWriter json;
  json.begin_object()
      .key("pong")
      .value(true)
      .key("proto")
      .value(kProtocolVersion)
      .end_object();
  return json.str();
}

std::string TrackingService::do_hello(const Request&) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("proto").value(kProtocolVersion);
  json.key("server").value("perftrackd");
  json.key("methods").begin_array();
  for (const std::string& name : method_names()) json.value(name);
  json.end_array();
  json.key("capabilities").begin_array();
  json.value("render_cache");
  if (durable()) json.value("journal");
  json.end_array();
  json.end_object();
  return json.str();
}

std::string TrackingService::do_open_study(const Request& request) {
  if (request.study.empty())
    throw ServeError(ErrorCode::BadRequest,
                     "open_study needs a \"study\" field");

  tracking::SessionConfig config = config_.session;
  config.clustering.dbscan.eps =
      param_number(request, "eps", config.clustering.dbscan.eps);
  double min_pts = param_number(
      request, "min_pts",
      static_cast<double>(config.clustering.dbscan.min_pts));
  if (min_pts < 0)
    throw ServeError(ErrorCode::BadRequest,
                     "parameter \"min_pts\" must be non-negative");
  config.clustering.dbscan.min_pts = static_cast<std::size_t>(min_pts);
  config.clustering.min_cluster_time_fraction =
      param_number(request, "min_cluster_frac",
                   config.clustering.min_cluster_time_fraction);
  config.resilience.lenient =
      param_bool(request, "lenient", config.resilience.lenient);
  config.resilience.max_gap_fraction = param_number(
      request, "max_gap_fraction", config.resilience.max_gap_fraction);
  std::string cache_dir = param_string(request, "cache_dir");
  if (!cache_dir.empty()) config.cache.directory = cache_dir;
  if (param_bool(request, "no_cache", false)) config.cache.directory.clear();

  std::vector<std::string> problems = config.validate();
  if (!problems.empty()) {
    std::string what = "invalid study configuration:";
    for (const std::string& p : problems) what += " " + p + ";";
    what.pop_back();
    throw ServeError(ErrorCode::InvalidConfig, what);
  }

  auto study = registry_.create(request.study, std::move(config));
  touch(*study);
  if (durable()) {
    std::unique_lock lock(study->mutex);
    try {
      study->journal =
          Journal::create(config_.journal, request.study, study->config);
    } catch (const Error& error) {
      // No journal, no study: an open that cannot be made durable must
      // not silently produce a study that vanishes on restart.
      lock.unlock();
      try {
        registry_.remove(request.study);
      } catch (const ServeError&) {
      }
      ++journal_errors_;
      throw ServeError(ErrorCode::IoFailure,
                       "cannot create journal for study '" + request.study +
                           "': " + error.what());
    }
  }
  PT_LOG(Info) << "serve: opened study '" << request.study << "'";

  obs::JsonWriter json;
  json.begin_object();
  json.key("study").value(request.study);
  json.key("lenient").value(study->config.resilience.lenient);
  json.key("cache").value(study->config.cache.enabled());
  json.end_object();
  return json.str();
}

std::string TrackingService::do_close_study(const Request& request) {
  if (request.study.empty())
    throw ServeError(ErrorCode::BadRequest,
                     "close_study needs a \"study\" field");
  auto study = registry_.get(request.study);
  {
    // Tombstone before the in-memory remove: if the tombstone cannot be
    // made durable the study stays open (and journaled) rather than
    // resurrecting on the next boot.
    std::unique_lock lock(study->mutex, std::defer_lock);
    acquire_timed(lock, metrics_);
    if (study->journal != nullptr) {
      try {
        study->journal->remove_and_unlink();
      } catch (const Error& error) {
        ++journal_errors_;
        throw ServeError(ErrorCode::IoFailure,
                         "cannot tombstone journal of study '" +
                             request.study + "': " + error.what() +
                             " (study stays open)");
      }
      study->journal.reset();
    }
  }
  registry_.remove(request.study);
  PT_LOG(Info) << "serve: closed study '" << request.study << "'";
  obs::JsonWriter json;
  json.begin_object().key("closed").value(request.study).end_object();
  return json.str();
}

std::string TrackingService::do_list_studies(const Request&) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("studies").begin_array();
  for (const std::string& name : registry_.names()) json.value(name);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string TrackingService::do_append_experiment(const Request& request) {
  auto study = study_of(request);
  const std::string path = param_string(request, "path");
  const std::string inline_text = param_string(request, "trace");
  std::string label = param_string(request, "label");
  if (path.empty() == inline_text.empty())
    throw ServeError(ErrorCode::BadRequest,
                     "append_experiment needs exactly one of \"path\" or "
                     "\"trace\"");
  const std::uint64_t seq = param_seq(request);

  std::unique_lock lock(study->mutex, std::defer_lock);
  acquire_timed(lock, metrics_);
  touch(*study);
  if (seq != 0 && seq <= study->last_seq) {
    ++journal_deduped_;
    PT_COUNTER("serve_deduped", 1.0);
    return deduped_response(*study, seq);
  }
  ensure_session(*study);

  const bool lenient = study->config.resilience.lenient;
  Diagnostics diags =
      lenient ? Diagnostics::lenient(ErrorBudget{config_.max_errors})
              : Diagnostics::strict();

  std::shared_ptr<const trace::Trace> trace;
  std::string failure;
  try {
    if (!path.empty()) {
      trace = std::make_shared<const trace::Trace>(
          trace::load_trace(path, diags));
      if (label.empty()) label = path;
    } else {
      if (label.empty()) label = "<inline>";
      diags.set_file(label);
      std::istringstream in(inline_text);
      trace = std::make_shared<const trace::Trace>(
          trace::read_trace(in, diags));
    }
  } catch (const Error& error) {
    // Strict mode propagates (typed parse-failure / io-failure response,
    // study untouched); lenient mode records the slot as a gap, exactly
    // like `perftrack track --lenient` does for an unreadable file.
    if (!lenient) throw;
    failure = error.what();
  }

  // Build the log entry (a parse failure in lenient mode becomes a gap
  // entry, like a fresh failing append), journal it, and only then apply
  // it in memory: any state a reader can observe is recoverable.
  AppendEntry entry;
  if (trace != nullptr) {
    entry.kind = path.empty() ? AppendEntry::Kind::Inline
                              : AppendEntry::Kind::Path;
    entry.label = path.empty() ? label : path;
    entry.detail = inline_text;
  } else {
    entry.kind = AppendEntry::Kind::Gap;
    entry.label = label.empty() ? path : label;
    entry.detail = failure;
  }
  entry.seq = seq;
  journal_append(*study, entry);

  std::size_t slot;
  if (trace != nullptr)
    slot = study->session->append_experiment(trace);
  else
    slot = study->session->append_gap(entry.label, failure);
  study->log.push_back(std::move(entry));
  study->generation.fetch_add(1, std::memory_order_acq_rel);
  if (seq != 0) study->last_seq = seq;
  ++study->appends;
  maybe_compact(request.study, *study);

  obs::JsonWriter json;
  json.begin_object();
  json.key("slot").value(static_cast<std::uint64_t>(slot));
  json.key("experiments")
      .value(static_cast<std::uint64_t>(study->session->experiment_count()));
  json.key("gaps")
      .value(static_cast<std::uint64_t>(study->session->gap_count()));
  json.key("degraded").value(trace == nullptr);
  if (!failure.empty()) json.key("gap_reason").value(failure);
  json.key("diagnostics").begin_object();
  json.key("errors")
      .value(static_cast<std::uint64_t>(diags.error_count()));
  json.key("warnings")
      .value(static_cast<std::uint64_t>(diags.warning_count()));
  json.end_object();
  json.end_object();
  return json.str();
}

std::string TrackingService::do_append_gap(const Request& request) {
  auto study = study_of(request);
  const std::string label = param_string(request, "label", true);
  const std::string reason = param_string(request, "reason");
  const std::uint64_t seq = param_seq(request);

  std::unique_lock lock(study->mutex, std::defer_lock);
  acquire_timed(lock, metrics_);
  touch(*study);
  if (seq != 0 && seq <= study->last_seq) {
    ++journal_deduped_;
    PT_COUNTER("serve_deduped", 1.0);
    return deduped_response(*study, seq);
  }
  ensure_session(*study);
  AppendEntry entry{AppendEntry::Kind::Gap, label, reason, seq};
  journal_append(*study, entry);
  std::size_t slot = study->session->append_gap(label, reason);
  study->log.push_back(std::move(entry));
  study->generation.fetch_add(1, std::memory_order_acq_rel);
  if (seq != 0) study->last_seq = seq;
  ++study->appends;
  maybe_compact(request.study, *study);

  obs::JsonWriter json;
  json.begin_object();
  json.key("slot").value(static_cast<std::uint64_t>(slot));
  json.key("experiments")
      .value(static_cast<std::uint64_t>(study->session->experiment_count()));
  json.end_object();
  return json.str();
}

std::string TrackingService::do_retrack(const Request& request) {
  auto study = study_of(request);
  std::unique_lock lock(study->mutex, std::defer_lock);
  acquire_timed(lock, metrics_);
  touch(*study);
  retrack_locked(*study);

  obs::JsonWriter json;
  json.begin_object();
  write_result_summary(json, *study->result);
  json.end_object();
  return json.str();
}

std::string TrackingService::do_regions(const Request& request) {
  auto study = study_of(request);
  return cached_render(
      *study, request.study, "regions",
      [](const tracking::TrackingResult& result) {
        obs::JsonWriter json;
        json.begin_object();
        write_result_summary(json, result);
        json.key("text").value(tracking::describe_tracking(result));
        json.end_object();
        return json.str();
      });
}

std::string TrackingService::do_trends(const Request& request) {
  auto study = study_of(request);
  std::string metric_name = param_string(request, "metric");
  trace::Metric metric = trace::Metric::Ipc;
  if (!metric_name.empty()) {
    try {
      metric = trace::metric_from_name(metric_name);
    } catch (const Error& error) {
      throw ServeError(ErrorCode::BadRequest, error.what());
    }
  }
  // The resolved metric is part of the request shape: trends over ipc and
  // trends over l2_miss_rate are distinct cached responses.
  return cached_render(
      *study, request.study,
      std::string("trends:") + std::string(trace::metric_name(metric)),
      [metric](const tracking::TrackingResult& result) {
        obs::JsonWriter json;
        json.begin_object();
        json.key("metric").value(trace::metric_name(metric));
        json.key("table").value(
            tracking::trend_table(result, metric).to_text(2));
        json.key("csv").value(tracking::trends_csv(result));
        json.end_object();
        return json.str();
      });
}

std::string TrackingService::do_report(const Request& request) {
  auto study = study_of(request);
  std::string title = param_string(request, "title");
  if (title.empty()) title = request.study;
  return cached_render(
      *study, request.study, std::string("report:") + title,
      [&title](const tracking::TrackingResult& result) {
        tracking::HtmlReportOptions options;
        options.title = title;
        obs::JsonWriter json;
        json.begin_object();
        write_result_summary(json, result);
        json.key("html").value(tracking::html_report(result, options));
        json.end_object();
        return json.str();
      });
}

std::string TrackingService::do_coverage(const Request& request) {
  auto study = study_of(request);
  auto result = tracked_result(*study);

  obs::JsonWriter json;
  json.begin_object();
  write_result_summary(json, *result);
  json.end_object();
  return json.str();
}

std::string TrackingService::do_stats(const Request& request) {
  obs::JsonWriter json;
  json.begin_object();

  if (!request.study.empty()) {
    auto study = registry_.get(request.study);
    std::shared_lock lock(study->mutex);
    touch(*study);
    json.key("study").value(request.study);
    json.key("resident").value(study->session != nullptr);
    json.key("tracked").value(study->tracked());
    json.key("appends").value(study->appends);
    json.key("retracks").value(study->retracks);
    json.key("rebuilds").value(study->rebuilds);
    json.key("evictions").value(study->evictions);
    json.key("generation")
        .value(study->generation.load(std::memory_order_acquire));
    if (study->journal != nullptr) {
      json.key("journal").begin_object();
      json.key("records").value(study->journal->records());
      json.key("bytes").value(study->journal->bytes());
      json.key("compactions").value(study->journal->compactions());
      json.key("last_seq").value(study->last_seq);
      json.end_object();
    }
    if (study->session != nullptr) {
      const tracking::SessionStats& s = study->session->stats();
      json.key("session").begin_object();
      json.key("frames_clustered").value(s.frames_clustered);
      json.key("frames_from_cache").value(s.frames_from_cache);
      json.key("frames_memoized").value(s.frames_memoized);
      json.key("pairs_tracked").value(s.pairs_tracked);
      json.key("pairs_memoized").value(s.pairs_memoized);
      json.key("scale_invalidations").value(s.scale_invalidations);
      json.key("cache_hits").value(s.cache.hits);
      json.key("cache_misses").value(s.cache.misses);
      json.key("cache_stores").value(s.cache.stores);
      json.end_object();
    }
    json.end_object();
    return json.str();
  }

  std::uint64_t appends = 0, retracks = 0, rebuilds = 0, evictions = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0, cache_stores = 0;
  std::size_t resident = 0;
  const std::vector<std::string> names = registry_.names();
  for (const std::string& name : names) {
    std::shared_ptr<StudyState> study;
    try {
      study = registry_.get(name);
    } catch (const ServeError&) {
      continue;  // closed between names() and get(); skip
    }
    std::shared_lock lock(study->mutex);
    appends += study->appends;
    retracks += study->retracks;
    rebuilds += study->rebuilds;
    evictions += study->evictions;
    if (study->session != nullptr) {
      ++resident;
      const tracking::SessionStats& s = study->session->stats();
      cache_hits += s.cache.hits;
      cache_misses += s.cache.misses;
      cache_stores += s.cache.stores;
    }
  }
  json.key("studies").value(static_cast<std::uint64_t>(names.size()));
  json.key("resident_sessions").value(static_cast<std::uint64_t>(resident));
  json.key("appends").value(appends);
  json.key("retracks").value(retracks);
  json.key("rebuilds").value(rebuilds);
  json.key("evictions").value(evictions);
  json.key("uptime_ns").value(obs::now_ns() - start_ns_);
  json.key("draining").value(shutdown_requested());
  json.key("cache").begin_object();
  json.key("hits").value(cache_hits);
  json.key("misses").value(cache_misses);
  json.key("stores").value(cache_stores);
  json.end_object();
  const RenderCache::Counters rc = render_cache_.counters();
  json.key("render_cache").begin_object();
  json.key("hits").value(rc.hits);
  json.key("misses").value(rc.misses);
  json.key("inserts").value(rc.inserts);
  json.key("evictions").value(rc.evictions);
  json.key("entries").value(rc.entries);
  json.end_object();
  json.key("journal").begin_object();
  json.key("enabled").value(durable());
  json.key("recovered").value(journal_recovered_.load());
  json.key("truncated").value(journal_truncated_.load());
  json.key("quarantined").value(journal_quarantined_.load());
  json.key("deduped").value(journal_deduped_.load());
  json.key("errors").value(journal_errors_.load());
  json.end_object();
  if (queue_stats_) {
    QueueStats queue = queue_stats_();
    json.key("queue").begin_object();
    json.key("capacity").value(static_cast<std::uint64_t>(queue.capacity));
    json.key("in_flight").value(static_cast<std::uint64_t>(queue.in_flight));
    json.key("admitted").value(queue.admitted);
    json.key("rejected").value(queue.rejected);
    json.end_object();
  }
  // Per-method latency distributions from the live metrics plane (empty
  // when ServiceConfig::metrics is off or nothing ran yet).
  json.key("latency").begin_object();
  for (const auto& [method, hist] : metrics_.per_method_latency()) {
    json.key(method).begin_object();
    json.key("count").value(hist.count);
    json.key("p50_ns").value(hist.quantile(0.50));
    json.key("p99_ns").value(hist.quantile(0.99));
    json.key("max_ns").value(hist.max);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

void TrackingService::refresh_gauges() {
  obs::MetricsRegistry& reg = metrics_.registry();
  std::uint64_t cache_hits = 0, cache_misses = 0, cache_stores = 0;
  std::size_t resident = 0;
  const std::vector<std::string> names = registry_.names();
  for (const std::string& name : names) {
    std::shared_ptr<StudyState> study;
    try {
      study = registry_.get(name);
    } catch (const ServeError&) {
      continue;
    }
    std::shared_lock lock(study->mutex);
    if (study->session == nullptr) continue;
    ++resident;
    const tracking::SessionStats& s = study->session->stats();
    cache_hits += s.cache.hits;
    cache_misses += s.cache.misses;
    cache_stores += s.cache.stores;
  }
  reg.gauge("perftrackd_studies").set(static_cast<double>(names.size()));
  reg.gauge("perftrackd_resident_sessions")
      .set(static_cast<double>(resident));
  reg.gauge("perftrackd_uptime_seconds")
      .set(static_cast<double>(obs::now_ns() - start_ns_) / 1e9);
  reg.gauge("perftrackd_frame_cache_hits")
      .set(static_cast<double>(cache_hits));
  reg.gauge("perftrackd_frame_cache_misses")
      .set(static_cast<double>(cache_misses));
  reg.gauge("perftrackd_frame_cache_stores")
      .set(static_cast<double>(cache_stores));
  const RenderCache::Counters rc = render_cache_.counters();
  reg.gauge("perftrackd_render_cache_hits").set(static_cast<double>(rc.hits));
  reg.gauge("perftrackd_render_cache_misses")
      .set(static_cast<double>(rc.misses));
  reg.gauge("perftrackd_render_cache_inserts")
      .set(static_cast<double>(rc.inserts));
  reg.gauge("perftrackd_render_cache_evictions")
      .set(static_cast<double>(rc.evictions));
  reg.gauge("perftrackd_render_cache_entries")
      .set(static_cast<double>(rc.entries));
  if (durable()) {
    reg.gauge("perftrackd_journal_recovered")
        .set(static_cast<double>(journal_recovered_.load()));
    reg.gauge("perftrackd_journal_truncated")
        .set(static_cast<double>(journal_truncated_.load()));
    reg.gauge("perftrackd_journal_quarantined")
        .set(static_cast<double>(journal_quarantined_.load()));
    reg.gauge("perftrackd_journal_errors")
        .set(static_cast<double>(journal_errors_.load()));
  }
  if (queue_stats_) {
    QueueStats queue = queue_stats_();
    reg.gauge("perftrackd_queue_depth")
        .set(static_cast<double>(queue.in_flight));
    reg.gauge("perftrackd_queue_capacity")
        .set(static_cast<double>(queue.capacity));
  }
}

std::string TrackingService::render_prometheus_metrics() {
  refresh_gauges();
  obs::MetricsRegistry& reg = metrics_.registry();
  return obs::prometheus_text(reg.snapshot(), reg.help_texts());
}

std::string TrackingService::render_json_metrics() {
  refresh_gauges();
  return obs::metrics_json(metrics_.registry().snapshot());
}

std::string TrackingService::do_metrics(const Request& request) {
  const std::string format = param_string(request, "format");
  if (format.empty() || format == "json") return render_json_metrics();
  if (format != "prometheus")
    throw ServeError(ErrorCode::BadRequest,
                     "parameter \"format\" must be \"json\" or "
                     "\"prometheus\"");
  obs::JsonWriter json;
  json.begin_object();
  json.key("content_type").value("text/plain; version=0.0.4");
  json.key("text").value(render_prometheus_metrics());
  json.end_object();
  return json.str();
}

std::string TrackingService::do_health(const Request&) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("draining").value(shutdown_requested());
  json.key("uptime_ns").value(obs::now_ns() - start_ns_);
  json.key("studies")
      .value(static_cast<std::uint64_t>(registry_.names().size()));
  json.end_object();
  return json.str();
}

std::string TrackingService::do_evict(const Request& request) {
  auto study = study_of(request);
  std::unique_lock lock(study->mutex, std::defer_lock);
  acquire_timed(lock, metrics_);
  const bool evicted = evict_study(*study);

  obs::JsonWriter json;
  json.begin_object().key("evicted").value(evicted).end_object();
  return json.str();
}

std::size_t TrackingService::sweep() {
  return registry_.evict_idle(obs::now_ns(), config_.idle_ttl_ns,
                              config_.max_resident);
}

std::string TrackingService::do_sweep(const Request&) {
  std::size_t evicted = sweep();
  obs::JsonWriter json;
  json.begin_object()
      .key("evicted")
      .value(static_cast<std::uint64_t>(evicted))
      .end_object();
  return json.str();
}

std::string TrackingService::do_shutdown(const Request&) {
  shutdown_.store(true, std::memory_order_release);
  PT_LOG(Info) << "serve: shutdown requested, draining";
  obs::JsonWriter json;
  json.begin_object().key("draining").value(true).end_object();
  return json.str();
}

}  // namespace perftrack::serve
