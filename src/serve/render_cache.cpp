#include "serve/render_cache.hpp"

#include <mutex>

#include "store/serialize.hpp"

namespace perftrack::serve {

RenderCache::RenderCache(std::size_t capacity)
    : per_shard_cap_(capacity / kShards) {
  if (capacity > 0 && per_shard_cap_ == 0) per_shard_cap_ = 1;
}

RenderCache::Shard& RenderCache::shard_of(const std::string& key) {
  return shards_[store::fnv1a64(key) % kShards];
}

std::shared_ptr<const std::string> RenderCache::get(const std::string& key) {
  if (per_shard_cap_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = shard_of(key);
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void RenderCache::put(const std::string& key,
                      std::shared_ptr<const std::string> value) {
  if (per_shard_cap_ == 0) return;
  Shard& shard = shard_of(key);
  std::unique_lock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second = std::move(value);
    return;
  }
  if (shard.map.size() >= per_shard_cap_) {
    shard.map.erase(shard.map.begin());
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.map.emplace(key, std::move(value));
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

std::string RenderCache::key(const std::string& study,
                             std::uint64_t instance_id,
                             std::uint64_t generation,
                             std::string_view shape) {
  // '\x1f' (unit separator) cannot appear in study names or shapes that
  // come off the JSON wire as printable text, so the key is unambiguous.
  std::string out;
  out.reserve(study.size() + shape.size() + 48);
  out += study;
  out += '\x1f';
  out += std::to_string(instance_id);
  out += ':';
  out += std::to_string(generation);
  out += '\x1f';
  out.append(shape.data(), shape.size());
  return out;
}

RenderCache::Counters RenderCache::counters() const {
  Counters out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    out.entries += shard.map.size();
  }
  return out;
}

}  // namespace perftrack::serve
