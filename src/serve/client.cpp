#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace perftrack::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline` (>= 0); throws on expiry. A
/// default-constructed (epoch) deadline means "no deadline" -> -1, which
/// poll() reads as block-forever.
int remaining_ms(Clock::time_point deadline, const char* what) {
  if (deadline == Clock::time_point{}) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0)
    throw Error(std::string(what) + " timed out (client deadline)");
  return left.count() > 60'000 ? 60'000 : static_cast<int>(left.count());
}

/// Block until `fd` is ready for `events` or the deadline passes.
void wait_ready(int fd, short events, Clock::time_point deadline,
                const char* what) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, remaining_ms(deadline, what));
    if (n > 0) return;
    if (n < 0 && errno != EINTR)
      throw Error(std::string("poll(): ") + std::strerror(errno));
    // n == 0: poll timed out — loop so remaining_ms() throws the typed
    // deadline error (or keeps waiting when there is no deadline).
  }
}

Clock::time_point attempt_deadline(const RetryPolicy& retry) {
  if (retry.deadline_ms == 0) return Clock::time_point{};
  return Clock::now() + std::chrono::milliseconds(retry.deadline_ms);
}

}  // namespace

ClientResponse parse_client_response(const std::string& line) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(line);
  } catch (const ParseError& error) {
    throw Error(std::string("malformed response from daemon: ") +
                error.what());
  }
  if (!doc.is_object()) throw Error("daemon response is not a JSON object");

  ClientResponse response;
  response.ok = doc.has("ok") && doc.at("ok").boolean;
  if (response.ok) {
    if (doc.has("result")) response.result = doc.at("result");
  } else if (doc.has("error")) {
    const obs::JsonValue& error = doc.at("error");
    if (error.has("code")) response.error_code = error.at("code").string;
    if (error.has("message"))
      response.error_message = error.at("message").string;
  }
  return response;
}

NdjsonClient::NdjsonClient(const std::string& path, RetryPolicy retry)
    : path_(path), retry_(retry), rng_(std::random_device{}()) {
  if (retry_.attempts < 1) retry_.attempts = 1;
  for (int attempt = 1;; ++attempt) {
    try {
      connect_now();
      return;
    } catch (const Error&) {
      if (attempt >= retry_.attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_delay_ms(attempt)));
  }
}

NdjsonClient::~NdjsonClient() { disconnect(); }

void NdjsonClient::connect_now() {
  disconnect();
  // Endpoint grammar: "tcp://HOST:PORT" connects over TCP; anything else
  // is an AF_UNIX socket path (the historical form).
  sockaddr_un unix_address{};
  sockaddr_in tcp_address{};
  sockaddr* address = nullptr;
  socklen_t address_len = 0;
  int family = AF_UNIX;
  if (path_.rfind("tcp://", 0) == 0) {
    const std::string endpoint = path_.substr(6);
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == endpoint.size())
      throw Error("tcp endpoint must be tcp://HOST:PORT, got " + path_);
    const std::string host = endpoint.substr(0, colon);
    int port = 0;
    try {
      port = std::stoi(endpoint.substr(colon + 1));
    } catch (const std::exception&) {
      port = -1;
    }
    if (port < 1 || port > 65535)
      throw Error("tcp endpoint port out of range in " + path_);
    tcp_address.sin_family = AF_INET;
    tcp_address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &tcp_address.sin_addr) != 1)
      throw Error("tcp endpoint host must be a numeric IPv4 address, got " +
                  host);
    family = AF_INET;
    address = reinterpret_cast<sockaddr*>(&tcp_address);
    address_len = sizeof(tcp_address);
  } else {
    if (path_.size() >= sizeof(unix_address.sun_path))
      throw Error("socket path too long: " + path_);
    unix_address.sun_family = AF_UNIX;
    std::memcpy(unix_address.sun_path, path_.c_str(), path_.size() + 1);
    address = reinterpret_cast<sockaddr*>(&unix_address);
    address_len = sizeof(unix_address);
  }

  const auto deadline = attempt_deadline(retry_);
  fd_ = ::socket(family, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0)
    throw Error(std::string("socket(): ") + std::strerror(errno));
  try {
    if (::connect(fd_, address, address_len) != 0) {
      if (errno != EINPROGRESS && errno != EAGAIN)
        throw Error("cannot connect to " + path_ + ": " +
                    std::strerror(errno) + " (is perftrackd running?)");
      wait_ready(fd_, POLLOUT, deadline, "connect");
      int soerr = 0;
      socklen_t len = sizeof soerr;
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0)
        soerr = errno;
      if (soerr != 0)
        throw Error("cannot connect to " + path_ + ": " +
                    std::strerror(soerr) + " (is perftrackd running?)");
    }
  } catch (const Error&) {
    disconnect();
    throw;
  }
}

void NdjsonClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();  // a partial response from a dead connection is garbage
}

std::uint64_t NdjsonClient::backoff_delay_ms(int attempt) {
  std::uint64_t delay = retry_.backoff_ms;
  for (int i = 1; i < attempt && delay < retry_.backoff_max_ms; ++i)
    delay *= 2;
  if (delay > retry_.backoff_max_ms) delay = retry_.backoff_max_ms;
  if (delay == 0) return 0;
  std::uniform_int_distribution<std::uint64_t> jitter(0, delay / 2);
  return delay + jitter(rng_);
}

std::string NdjsonClient::attempt_roundtrip(const std::string& line) {
  const auto deadline = attempt_deadline(retry_);

  std::size_t done = 0;
  while (done < line.size()) {
    wait_ready(fd_, POLLOUT, deadline, "send");
    ssize_t n = ::send(fd_, line.data() + done, line.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      throw Error(std::string("send(): ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }

  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return response;
    }
    wait_ready(fd_, POLLIN, deadline, "recv");
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      throw Error(std::string("recv(): ") + std::strerror(errno));
    }
    if (n == 0) throw Error("daemon closed the connection mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string NdjsonClient::roundtrip(const std::string& request_line) {
  std::string line = request_line;
  line += '\n';
  for (int attempt = 1;; ++attempt) {
    try {
      if (fd_ < 0) connect_now();
      return attempt_roundtrip(line);
    } catch (const Error&) {
      // The daemon may have applied the request before the failure; the
      // policy doc makes retrying the caller's contract (idempotent
      // requests only). Reconnect so the next attempt starts clean.
      disconnect();
      if (attempt >= retry_.attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_delay_ms(attempt)));
  }
}

ClientResponse NdjsonClient::call(const std::string& method,
                                  const std::string& study,
                                  const std::string& params_json) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("method").value(method);
  if (!study.empty()) json.key("study").value(study);
  json.end_object();
  std::string line = json.str();
  if (!params_json.empty()) {
    // Splice the caller-built params object in before the closing brace;
    // JsonWriter has no raw-value hook and the object is already valid.
    line.insert(line.size() - 1, ",\"params\":" + params_json);
  }
  return parse_client_response(roundtrip(line));
}

}  // namespace perftrack::serve
