#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace perftrack::serve {

ClientResponse parse_client_response(const std::string& line) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(line);
  } catch (const ParseError& error) {
    throw Error(std::string("malformed response from daemon: ") +
                error.what());
  }
  if (!doc.is_object()) throw Error("daemon response is not a JSON object");

  ClientResponse response;
  response.ok = doc.has("ok") && doc.at("ok").boolean;
  if (response.ok) {
    if (doc.has("result")) response.result = doc.at("result");
  } else if (doc.has("error")) {
    const obs::JsonValue& error = doc.at("error");
    if (error.has("code")) response.error_code = error.at("code").string;
    if (error.has("message"))
      response.error_message = error.at("message").string;
  }
  return response;
}

NdjsonClient::NdjsonClient(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path))
    throw Error("socket path too long: " + path);
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw Error(std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to " + path + ": " +
                std::strerror(saved) + " (is perftrackd running?)");
  }
}

NdjsonClient::~NdjsonClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string NdjsonClient::roundtrip(const std::string& request_line) {
  std::string out = request_line;
  out += '\n';
  std::size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::send(fd_, out.data() + done, out.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("send(): ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }

  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("recv(): ") + std::strerror(errno));
    }
    if (n == 0) throw Error("daemon closed the connection mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

ClientResponse NdjsonClient::call(const std::string& method,
                                  const std::string& study) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("method").value(method);
  if (!study.empty()) json.key("study").value(study);
  json.end_object();
  return parse_client_response(roundtrip(json.str()));
}

}  // namespace perftrack::serve
