#include "serve/shard.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "serve/client.hpp"
#include "store/serialize.hpp"

namespace perftrack::serve {

namespace {

/// Wire names of every method a worker serves, sorted — must track the
/// service's endpoint table (tests/serve/test_shard.cpp pins the lists
/// against each other).
const char* const kMethods[] = {
    "append_experiment", "append_gap", "close_study", "coverage",
    "evict",             "health",     "hello",       "list_studies",
    "metrics",           "open_study", "ping",        "regions",
    "report",            "retrack",    "shutdown",    "stats",
    "sweep",             "trends",
};

std::uint64_t u64_field(const obs::JsonValue& object, const char* name) {
  if (!object.has(name)) return 0;
  const obs::JsonValue& value = object.at(name);
  return value.is_number() ? static_cast<std::uint64_t>(value.number) : 0;
}

bool bool_field(const obs::JsonValue& object, const char* name) {
  return object.has(name) &&
         object.at(name).type == obs::JsonValue::Type::Bool &&
         object.at(name).boolean;
}

const obs::JsonValue* object_field(const obs::JsonValue& object,
                                   const char* name) {
  if (!object.has(name)) return nullptr;
  const obs::JsonValue& value = object.at(name);
  return value.is_object() ? &value : nullptr;
}

}  // namespace

ShardFront::ShardFront(std::vector<Backend> backends, bool metrics)
    : backends_(std::move(backends)),
      metrics_(metrics),
      start_ns_(obs::now_ns()) {
  if (backends_.empty())
    throw Error("ShardFront needs at least one backend shard");
}

std::size_t ShardFront::shard_of(const std::string& study,
                                 std::size_t shards) {
  return static_cast<std::size_t>(store::fnv1a64(study) % shards);
}

Response ShardFront::dispatch(const Request& request,
                              const std::string& raw_line) {
  PT_SPAN("front_request");
  PT_COUNTER("serve_requests", 1.0);
  const ServeMetrics::MethodMetrics* slot =
      metrics_.method_metrics(request.method);
  metrics_.count_request(slot);
  const std::uint64_t begin_ns = obs::now_ns();

  Response response = [&] {
    try {
      // Study-addressed requests go to the study's shard verbatim — the
      // worker renders (and the client receives) exactly the bytes a
      // single daemon would produce.
      if (!request.study.empty())
        return forward(shard_of(request.study, backends_.size()), raw_line);
      const std::string& m = request.method;
      if (m == "ping") return make_result(request, ping_body());
      if (m == "hello") return make_result(request, hello_body());
      if (m == "list_studies")
        return make_result(request, merged_list_studies());
      if (m == "stats") return make_result(request, merged_stats());
      if (m == "metrics") return make_result(request, merged_metrics(request));
      if (m == "health") return make_result(request, merged_health());
      if (m == "sweep") return make_result(request, merged_sweep());
      if (m == "shutdown") return make_result(request, merged_shutdown());
      // Unknown methods and study-less study methods: let shard 0 answer,
      // so the typed error (closed enum, exact message) matches a single
      // daemon's byte for byte.
      return forward(0, raw_line);
    } catch (const ServeError& error) {
      PT_COUNTER("serve_errors", 1.0);
      metrics_.count_error(error_code_name(error.code()));
      return make_error(request, error.code(), error.what());
    } catch (const std::exception& error) {
      PT_COUNTER("serve_errors", 1.0);
      metrics_.count_error(error_code_name(ErrorCode::Internal));
      return make_error(request, ErrorCode::Internal, error.what());
    }
  }();

  metrics_.record_handler_ns(slot, obs::now_ns() - begin_ns);
  return response;
}

Response ShardFront::forward(std::size_t shard, const std::string& raw_line) {
  Response response;
  try {
    response.raw = backends_[shard](raw_line);
  } catch (const Error& error) {
    throw ServeError(ErrorCode::Internal,
                     "shard " + std::to_string(shard) +
                         " unreachable: " + error.what());
  }
  return response;
}

std::vector<obs::JsonValue> ShardFront::fan_out(const std::string& line) {
  std::vector<obs::JsonValue> results;
  results.reserve(backends_.size());
  for (std::size_t shard = 0; shard < backends_.size(); ++shard) {
    std::string reply;
    try {
      reply = backends_[shard](line);
    } catch (const Error& error) {
      throw ServeError(ErrorCode::Internal,
                       "shard " + std::to_string(shard) +
                           " unreachable: " + error.what());
    }
    ClientResponse parsed = parse_client_response(reply);
    if (!parsed.ok)
      throw ServeError(ErrorCode::Internal,
                       "shard " + std::to_string(shard) + " failed: " +
                           parsed.error_code + ": " + parsed.error_message);
    results.push_back(std::move(parsed.result));
  }
  return results;
}

std::string ShardFront::ping_body() const {
  // Byte-identical to TrackingService::do_ping — the front is
  // indistinguishable from a worker to a probing client.
  obs::JsonWriter json;
  json.begin_object()
      .key("pong")
      .value(true)
      .key("proto")
      .value(kProtocolVersion)
      .end_object();
  return json.str();
}

std::string ShardFront::hello_body() const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("proto").value(kProtocolVersion);
  json.key("server").value("perftrackd");
  json.key("methods").begin_array();
  for (const char* name : kMethods) json.value(name);
  json.end_array();
  json.key("capabilities").begin_array();
  json.value("sharding");
  json.end_array();
  json.end_object();
  return json.str();
}

std::string ShardFront::merged_list_studies() {
  // Shards own disjoint study sets (the routing function is total), so
  // the merge is a sorted union.
  std::set<std::string> names;
  for (const obs::JsonValue& result :
       fan_out("{\"method\":\"list_studies\"}")) {
    if (!result.has("studies") || !result.at("studies").is_array()) continue;
    for (const obs::JsonValue& name : result.at("studies").array)
      if (name.is_string()) names.insert(name.string);
  }
  obs::JsonWriter json;
  json.begin_object();
  json.key("studies").begin_array();
  for (const std::string& name : names) json.value(name);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string ShardFront::merged_stats() {
  // Fleet view: occupancy and work counters sum across shards, uptime is
  // the oldest worker's, draining is sticky (front or any shard), and
  // per-method latency merges as count-sum / quantile-max (quantiles are
  // not additive over the wire; max is the conservative bound).
  const std::vector<obs::JsonValue> shards =
      fan_out("{\"method\":\"stats\"}");

  std::uint64_t studies = 0, resident = 0, appends = 0, retracks = 0;
  std::uint64_t rebuilds = 0, evictions = 0, uptime_ns = 0;
  bool draining = shutdown_requested();
  std::uint64_t cache_hits = 0, cache_misses = 0, cache_stores = 0;
  std::uint64_t rc_hits = 0, rc_misses = 0, rc_inserts = 0;
  std::uint64_t rc_evictions = 0, rc_entries = 0;
  bool journal_enabled = false;
  std::uint64_t j_recovered = 0, j_truncated = 0, j_quarantined = 0;
  std::uint64_t j_deduped = 0, j_errors = 0;
  struct Latency {
    std::uint64_t count = 0;
    std::uint64_t p50 = 0, p99 = 0, max = 0;
  };
  std::map<std::string, Latency> latency;

  for (const obs::JsonValue& s : shards) {
    studies += u64_field(s, "studies");
    resident += u64_field(s, "resident_sessions");
    appends += u64_field(s, "appends");
    retracks += u64_field(s, "retracks");
    rebuilds += u64_field(s, "rebuilds");
    evictions += u64_field(s, "evictions");
    uptime_ns = std::max(uptime_ns, u64_field(s, "uptime_ns"));
    draining = draining || bool_field(s, "draining");
    if (const obs::JsonValue* cache = object_field(s, "cache")) {
      cache_hits += u64_field(*cache, "hits");
      cache_misses += u64_field(*cache, "misses");
      cache_stores += u64_field(*cache, "stores");
    }
    if (const obs::JsonValue* rc = object_field(s, "render_cache")) {
      rc_hits += u64_field(*rc, "hits");
      rc_misses += u64_field(*rc, "misses");
      rc_inserts += u64_field(*rc, "inserts");
      rc_evictions += u64_field(*rc, "evictions");
      rc_entries += u64_field(*rc, "entries");
    }
    if (const obs::JsonValue* j = object_field(s, "journal")) {
      journal_enabled = journal_enabled || bool_field(*j, "enabled");
      j_recovered += u64_field(*j, "recovered");
      j_truncated += u64_field(*j, "truncated");
      j_quarantined += u64_field(*j, "quarantined");
      j_deduped += u64_field(*j, "deduped");
      j_errors += u64_field(*j, "errors");
    }
    if (const obs::JsonValue* lat = object_field(s, "latency")) {
      for (const auto& [method, hist] : lat->object) {
        if (!hist.is_object()) continue;
        Latency& slot = latency[method];
        slot.count += u64_field(hist, "count");
        slot.p50 = std::max(slot.p50, u64_field(hist, "p50_ns"));
        slot.p99 = std::max(slot.p99, u64_field(hist, "p99_ns"));
        slot.max = std::max(slot.max, u64_field(hist, "max_ns"));
      }
    }
  }

  obs::JsonWriter json;
  json.begin_object();
  json.key("shards").value(static_cast<std::uint64_t>(backends_.size()));
  json.key("studies").value(studies);
  json.key("resident_sessions").value(resident);
  json.key("appends").value(appends);
  json.key("retracks").value(retracks);
  json.key("rebuilds").value(rebuilds);
  json.key("evictions").value(evictions);
  json.key("uptime_ns").value(uptime_ns);
  json.key("draining").value(draining);
  json.key("cache").begin_object();
  json.key("hits").value(cache_hits);
  json.key("misses").value(cache_misses);
  json.key("stores").value(cache_stores);
  json.end_object();
  json.key("render_cache").begin_object();
  json.key("hits").value(rc_hits);
  json.key("misses").value(rc_misses);
  json.key("inserts").value(rc_inserts);
  json.key("evictions").value(rc_evictions);
  json.key("entries").value(rc_entries);
  json.end_object();
  json.key("journal").begin_object();
  json.key("enabled").value(journal_enabled);
  json.key("recovered").value(j_recovered);
  json.key("truncated").value(j_truncated);
  json.key("quarantined").value(j_quarantined);
  json.key("deduped").value(j_deduped);
  json.key("errors").value(j_errors);
  json.end_object();
  if (queue_stats_) {
    QueueStats queue = queue_stats_();
    json.key("queue").begin_object();
    json.key("capacity").value(static_cast<std::uint64_t>(queue.capacity));
    json.key("in_flight").value(static_cast<std::uint64_t>(queue.in_flight));
    json.key("admitted").value(queue.admitted);
    json.key("rejected").value(queue.rejected);
    json.end_object();
  }
  json.key("latency").begin_object();
  for (const auto& [method, slot] : latency) {
    json.key(method).begin_object();
    json.key("count").value(slot.count);
    json.key("p50_ns").value(slot.p50);
    json.key("p99_ns").value(slot.p99);
    json.key("max_ns").value(slot.max);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

std::string ShardFront::merged_metrics(const Request& request) {
  // The JSON snapshot only carries derived quantiles, so the cross-shard
  // merge is an approximation: counters/gauges sum (uptime takes the
  // max), histogram count/sum add, min/max widen, and quantiles take the
  // per-shard max — a conservative bound, not a re-aggregation.
  // Prometheus text cannot be merged faithfully at all: scrape the
  // shards directly (each worker exposes its own /metrics).
  const obs::JsonValue* format = nullptr;
  if (request.params.is_object()) {
    auto it = request.params.object.find("format");
    if (it != request.params.object.end()) format = &it->second;
  }
  if (format != nullptr &&
      (!format->is_string() ||
       (format->string != "json" && !format->string.empty())))
    throw ServeError(ErrorCode::BadRequest,
                     "a shard front only merges format \"json\"; scrape "
                     "the shards' own /metrics for prometheus text");

  const std::vector<obs::JsonValue> shards =
      fan_out("{\"method\":\"metrics\"}");

  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::map<std::string, double>> histograms;
  for (const obs::JsonValue& s : shards) {
    if (const obs::JsonValue* c = object_field(s, "counters"))
      for (const auto& [name, value] : c->object)
        if (value.is_number()) counters[name] += value.number;
    if (const obs::JsonValue* g = object_field(s, "gauges"))
      for (const auto& [name, value] : g->object) {
        if (!value.is_number()) continue;
        if (name.rfind("perftrackd_uptime_seconds", 0) == 0)
          gauges[name] = std::max(gauges[name], value.number);
        else
          gauges[name] += value.number;
      }
    if (const obs::JsonValue* h = object_field(s, "histograms"))
      for (const auto& [name, hist] : h->object) {
        if (!hist.is_object()) continue;
        std::map<std::string, double>& slot = histograms[name];
        const bool fresh = slot.empty();
        for (const auto& [field, value] : hist.object) {
          if (!value.is_number()) continue;
          if (field == "count" || field == "sum")
            slot[field] += value.number;
          else if (field == "min")
            slot[field] = fresh ? value.number
                                : std::min(slot[field], value.number);
          else
            slot[field] = std::max(slot[field], value.number);
        }
      }
  }

  obs::JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : counters) json.key(name).value(value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) json.key(name).value(value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, fields] : histograms) {
    json.key(name).begin_object();
    for (const auto& [field, value] : fields) json.key(field).value(value);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

std::string ShardFront::merged_health() {
  const std::vector<obs::JsonValue> shards =
      fan_out("{\"method\":\"health\"}");
  bool ok = true;
  bool draining = shutdown_requested();
  std::uint64_t uptime_ns = 0, studies = 0;
  for (const obs::JsonValue& s : shards) {
    ok = ok && bool_field(s, "ok");
    draining = draining || bool_field(s, "draining");
    uptime_ns = std::max(uptime_ns, u64_field(s, "uptime_ns"));
    studies += u64_field(s, "studies");
  }
  obs::JsonWriter json;
  json.begin_object();
  json.key("ok").value(ok);
  json.key("draining").value(draining);
  json.key("uptime_ns").value(uptime_ns);
  json.key("studies").value(studies);
  json.end_object();
  return json.str();
}

std::string ShardFront::merged_sweep() {
  std::uint64_t evicted = 0;
  for (const obs::JsonValue& s : fan_out("{\"method\":\"sweep\"}"))
    evicted += u64_field(s, "evicted");
  obs::JsonWriter json;
  json.begin_object().key("evicted").value(evicted).end_object();
  return json.str();
}

std::string ShardFront::merged_shutdown() {
  // Best-effort: a worker that already died must not keep the fleet up —
  // drain every reachable shard, then drain the front regardless.
  for (std::size_t shard = 0; shard < backends_.size(); ++shard) {
    try {
      backends_[shard]("{\"method\":\"shutdown\"}");
    } catch (const Error& error) {
      PT_LOG(Warn) << "front: shutdown of shard " << shard
                   << " failed: " << error.what();
    }
  }
  shutdown_.store(true, std::memory_order_release);
  PT_LOG(Info) << "front: shutdown requested, draining "
               << backends_.size() << " shards";
  obs::JsonWriter json;
  json.begin_object().key("draining").value(true).end_object();
  return json.str();
}

}  // namespace perftrack::serve
