#pragma once
// Dispatcher: what a transport needs from a request sink.
//
// The server layer (serve/server.hpp) owns the bounded queue, the ordered
// writer and the sockets; it does not care whether requests land in a
// local TrackingService or are proxied to worker daemons by the shard
// front (serve/shard.hpp). This interface is that seam: one dispatch()
// call maps one parsed request to one response, thread-safely, and the
// few service-level hooks the transports use — drain signalling, the
// live metrics plane, queue-stats injection, the idle sweeper — travel
// with it. TrackingService and ShardFront both implement it, so every
// transport (stdio, AF_UNIX, TCP) serves either unchanged.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hpp"

namespace perftrack::serve {

class ServeMetrics;

/// Bounded-queue counters, injected by the server layer so the `stats`
/// endpoint can report backpressure without the dispatcher owning the
/// queue.
struct QueueStats {
  std::size_t capacity = 0;
  std::size_t in_flight = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
};

class Dispatcher {
public:
  virtual ~Dispatcher() = default;

  /// Handle one request; never throws — every failure becomes a typed
  /// error response. Thread-safe. `raw_line` is the NDJSON line the
  /// request was parsed from ("" for direct callers that built the
  /// Request by hand); proxying dispatchers forward it verbatim.
  virtual Response dispatch(const Request& request,
                            const std::string& raw_line) = 0;

  /// Set by a "shutdown" request; the server drains and exits when it
  /// sees this.
  virtual bool shutdown_requested() const = 0;

  /// The live metrics plane the transports record into.
  virtual ServeMetrics& metrics() = 0;

  /// Installed by the server so `stats` can report queue backpressure.
  virtual void set_queue_stats(std::function<QueueStats()> fn) = 0;

  /// Run the idle-eviction policy now. Returns sessions evicted.
  virtual std::size_t sweep() = 0;
};

}  // namespace perftrack::serve
