#pragma once
// Study registry: named, independently locked tracking sessions.
//
// perftrackd serves many studies at once; each study is one analyst's
// append-only experiment sequence (a TrackingSession) plus the last
// retracked result. The registry gives every study its own shard — an
// RW-locked StudyState — so the service can run concurrent reads of a
// tracked study while appends to it are serialized, and studies never
// contend with each other:
//
//   * regions/trends/coverage take the study's lock shared,
//   * open/append/retrack/evict take it exclusive,
//   * the registry map itself has a second shared_mutex, held only long
//     enough to resolve a name to its shard.
//
// Eviction: a study idle past its TTL (or beyond the resident-session cap)
// drops its heavy state — the TrackingSession with its memoised frames and
// the cached TrackingResult — but keeps the append log: the ordered list
// of trace paths / inline texts / gaps that *define* the study. The next
// request that needs a session replays the log into a fresh one, and the
// per-experiment clustering comes back out of the PR 4 on-disk frame cache
// instead of being recomputed, so a re-opened study warms from cache (the
// "Rebuilds" and frame_cache_hits counters make this visible).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "tracking/session.hpp"

namespace perftrack::serve {

/// One study shard. The mutex guards every member; the registry hands out
/// shared_ptrs so a shard stays valid while a handler works on it even if
/// the study is concurrently closed. AppendEntry (the log element type)
/// lives in journal.hpp — it is also the journal's durable record.
struct StudyState {
  explicit StudyState(tracking::SessionConfig config)
      : config(std::move(config)) {}

  mutable std::shared_mutex mutex;

  const tracking::SessionConfig config;
  std::vector<AppendEntry> log;

  /// Write-ahead journal making `log` durable, or null when the daemon
  /// runs without --state-dir. Appends hit the journal before the session.
  std::unique_ptr<Journal> journal;

  /// Highest client-supplied idempotency seq ever applied (0 = none yet);
  /// appends with seq <= last_seq are acknowledged replays, not re-applied.
  std::uint64_t last_seq = 0;

  /// Live session, or null while evicted. Rebuilt on demand from `log`.
  std::unique_ptr<tracking::TrackingSession> session;

  /// Result of the last retrack and how many log slots it covers; reads
  /// are served from here. Shared_ptr so a response can outlive an evict.
  std::shared_ptr<const tracking::TrackingResult> result;
  std::size_t tracked_slots = 0;

  /// Telemetry clock timestamp of the last request touching this study.
  /// Atomic: readers refresh it while holding the lock only shared.
  std::atomic<std::uint64_t> last_used_ns{0};

  /// Monotonically increasing content version: bumped (under the
  /// exclusive lock) by every append/gap that changes what a read would
  /// render. The render cache (serve/render_cache.hpp) keys responses by
  /// it, so a generation mismatch is the whole invalidation story.
  /// Session eviction does NOT bump it — the rebuilt session is
  /// bit-identical, so cached renders stay valid. Atomic so the cache
  /// lookup can read it without the study lock.
  std::atomic<std::uint64_t> generation{0};

  /// Registry-unique id, assigned once by StudyRegistry::create before
  /// the study becomes visible. Folded into render-cache keys so a
  /// closed-and-reopened study (whose generation restarts at zero) never
  /// collides with its predecessor's cached bytes.
  std::uint64_t instance_id = 0;

  std::uint64_t appends = 0;    ///< experiments + gaps ever appended
  std::uint64_t retracks = 0;   ///< explicit + implicit retrack executions
  std::uint64_t rebuilds = 0;   ///< sessions rebuilt after an eviction
  std::uint64_t evictions = 0;  ///< times the heavy state was dropped

  /// Reads need a result covering every appended slot.
  bool tracked() const { return result != nullptr && tracked_slots == log.size(); }
};

class StudyRegistry {
public:
  /// Create a study; throws ServeError{StudyExists} when the name is taken.
  std::shared_ptr<StudyState> create(const std::string& name,
                                     tracking::SessionConfig config);

  /// Resolve a name; throws ServeError{UnknownStudy} when absent.
  std::shared_ptr<StudyState> get(const std::string& name) const;

  /// Remove a study entirely (log included). Throws UnknownStudy.
  void remove(const std::string& name);

  /// Open study names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// Drop the heavy state of every study idle for more than `idle_ttl_ns`
  /// at time `now_ns`, and — when `max_resident` > 0 — of the least
  /// recently used studies beyond that resident-session cap. Returns the
  /// number of sessions evicted. TTL 0 disables the age rule.
  std::size_t evict_idle(std::uint64_t now_ns, std::uint64_t idle_ttl_ns,
                         std::size_t max_resident);

private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<StudyState>> studies_;
  std::atomic<std::uint64_t> next_instance_{1};
};

/// Drop `study`'s session and cached result, keeping the append log.
/// Caller must hold the study's mutex exclusively. No-op when already
/// evicted (returns false).
bool evict_study(StudyState& study);

/// Ensure `study` has a live session, replaying the append log if it was
/// evicted (frame clustering warms from the on-disk cache). Caller must
/// hold the study's mutex exclusively.
void ensure_session(StudyState& study);

}  // namespace perftrack::serve
