#pragma once
// Wire protocol of the perftrackd tracking service.
//
// Requests and responses are newline-delimited JSON objects ("NDJSON"):
// one complete JSON document per line, no framing beyond the newline. The
// dialect is the same subset obs/json.hpp already reads and writes, so the
// daemon carries no extra parser. A request names a method, usually a
// study, and an optional bag of parameters; the response echoes the
// request's id (verbatim, so callers can correlate pipelined requests) and
// carries either a result object or a typed error:
//
//   -> {"id":1,"method":"append_experiment","study":"wrf",
//       "params":{"path":"wrf_128.ptt"}}
//   <- {"id":1,"ok":true,"result":{"slot":0,"experiments":1}}
//   <- {"id":2,"ok":false,"error":{"code":"unknown-study",
//       "message":"no study named 'wrg' (did you open_study it?)"}}
//
// Error codes are a closed, stable enum (ErrorCode) rather than free text:
// clients branch on the code, humans read the message. In particular
// `overloaded` is the backpressure signal — the request was *rejected
// before any work happened* and can be retried — and `shutting-down`
// marks requests that arrived after a drain began. docs/SERVING.md is the
// protocol reference.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace perftrack::serve {

/// Protocol revision spoken by this build. v2 added the `hello` method,
/// the `proto` field in the `ping` result, and the capability list —
/// all additive: a v1 client never sends `hello` and ignores fields it
/// does not know, so both directions interoperate across versions. The
/// tolerant-reader rule (unknown request fields are skipped, unknown
/// methods answer with the closed error-code enum) is pinned by tests.
inline constexpr std::uint64_t kProtocolVersion = 2;

/// Closed set of protocol error codes. Stable wire strings via
/// error_code_name(); clients dispatch on these, not on messages.
enum class ErrorCode {
  BadRequest,    ///< malformed JSON, missing/ill-typed fields
  UnknownMethod, ///< method name not in the dispatch table
  UnknownStudy,  ///< study was never opened (or was closed)
  StudyExists,   ///< open_study on a name already open
  InvalidConfig, ///< open_study parameters failed SessionConfig::validate
  ParseFailure,  ///< trace ingestion failed (strict mode)
  IoFailure,     ///< trace file unreadable / report unwritable
  TrackingFailed,///< clustering/retrack failed (gap budget, bad sequence)
  ReplayFailed,  ///< evicted study cannot be rebuilt (a logged trace is gone)
  Overloaded,    ///< bounded queue full — rejected before any work; retry
  ShuttingDown,  ///< drain in progress, no new work accepted
  Internal,      ///< anything else (a bug or an unhandled Error)
};

/// Wire string of a code ("bad-request", "overloaded", ...).
std::string_view error_code_name(ErrorCode code);

/// Service-level failure carrying its wire code. Handlers throw these;
/// the dispatcher renders them as error responses.
class ServeError : public Error {
public:
  ServeError(ErrorCode code, const std::string& message)
      : Error(message), code_(code) {}
  ErrorCode code() const { return code_; }

private:
  ErrorCode code_;
};

/// One parsed request line. `id` is kept as raw JSON text (number or
/// string), echoed verbatim in the response; empty means the request had
/// no id and the response carries none.
struct Request {
  std::string id;      ///< raw JSON of the id field ("" = absent)
  std::string method;
  std::string study;   ///< "" when the method takes no study
  obs::JsonValue params;  ///< params object (Null when absent)
};

/// Parse one NDJSON request line. Throws ServeError{BadRequest} on
/// malformed JSON, a non-object document, or a missing/ill-typed method.
Request parse_request(const std::string& line);

/// One response under construction. Handlers fill `result` through the
/// writer; the dispatcher turns caught ServeErrors into error responses.
struct Response {
  std::string id;                  ///< raw JSON id echoed from the request
  bool ok = true;
  ErrorCode code = ErrorCode::Internal;  ///< meaningful when !ok
  std::string message;             ///< error message when !ok
  std::string result_json;         ///< rendered result object when ok

  /// Verbatim passthrough: when non-empty, render_response() returns this
  /// exact line and every other field is ignored. The shard front answers
  /// proxied requests with the worker's bytes unchanged (id echo
  /// included), which is what makes sharded reads byte-identical to a
  /// single daemon.
  std::string raw;
};

/// Render `response` as one NDJSON line (no trailing newline).
std::string render_response(const Response& response);

/// Success response with `result_json` (a complete JSON object, e.g. from
/// a JsonWriter; "{}" for methods with nothing to report).
Response make_result(const Request& request, std::string result_json);

/// Error response for `code`/`message`, echoing the request id.
Response make_error(const Request& request, ErrorCode code,
                    const std::string& message);

}  // namespace perftrack::serve
