#pragma once
// The daemon engine around TrackingService: bounded concurrency, ordered
// responses, transports, and graceful drain.
//
// Request flow:
//
//   reader thread: getline -> parse -> try_submit ----> BoundedExecutor
//                                        |                (ThreadPool)
//                    overloaded error <--+ (queue full)       |
//                                                             v
//   OrderedWriter <---------------- response (seq) -----  handler task
//
// * BoundedExecutor caps the requests in flight; an admission beyond the
//   cap is rejected *on the reader thread* with a typed `overloaded`
//   error before any tracking work happens — backpressure, not buffering.
// * OrderedWriter gives each connection HTTP/1.1-pipelining semantics:
//   handlers run concurrently on the pool, but responses are emitted in
//   request order (a reorder buffer holds completed responses until their
//   predecessors finish), so scripted clients can read answers
//   sequentially without correlating ids.
// * Graceful drain: EOF, a `shutdown` request, SIGTERM or SIGINT stop
//   admission; every admitted request still completes and flushes before
//   the serve loop returns. Requests that arrive during the drain get a
//   typed `shutting-down` error.
//
// Transports: serve_stream() speaks NDJSON over any istream/ostream pair
// (perftrackd --stdio, and the unit tests); serve_unix_socket() listens on
// a local AF_UNIX stream socket and serve_tcp() on a TCP host:port
// (--listen), each with one reader thread per connection and one executor
// (one backpressure budget) shared by all of them. Every transport serves
// a Dispatcher — TrackingService in a plain daemon, ShardFront in a
// --front daemon — and hands it the raw request line next to the parsed
// request so a forwarding dispatcher can pass bytes through verbatim.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

#include "common/thread_pool.hpp"
#include "serve/access_log.hpp"
#include "serve/dispatcher.hpp"
#include "serve/service.hpp"

namespace perftrack::serve {

struct ServerOptions {
  /// Worker threads handling requests (0 = hardware concurrency).
  std::size_t threads = 0;

  /// Max requests admitted but not yet answered; further requests are
  /// rejected with `overloaded`.
  std::size_t queue_capacity = 64;

  /// Period of the idle-study sweeper thread (0 = no sweeper; eviction
  /// then only happens via the `sweep` method).
  std::uint64_t sweep_interval_ms = 0;

  /// Structured NDJSON access log: one line per request with the phase
  /// breakdown (see access_log.hpp). Not owned; null = no access log.
  AccessLog* access_log = nullptr;

  /// Slow-request threshold in nanoseconds: a request slower than this
  /// end-to-end also logs its span tree (to the access log, or stderr
  /// when there is none). 0 dumps every request; the ~0 default disables
  /// the capture.
  std::uint64_t slow_ns = ~0ull;

  /// Reject NDJSON request lines longer than this with a typed
  /// `bad-request` error instead of buffering them without bound (the
  /// remainder of the oversized line is discarded, and the connection
  /// keeps serving). 0 = unlimited. Inline traces ride inside request
  /// lines, so the default leaves real workloads ample headroom.
  std::size_t max_line_bytes = 8u << 20;
};

/// Fixed-capacity admission gate in front of the shared thread pool.
class BoundedExecutor {
public:
  BoundedExecutor(std::size_t threads, std::size_t capacity);

  /// Drains: every admitted task completes before destruction returns.
  ~BoundedExecutor();

  /// Admit `task` unless the capacity is reached; returns whether it was
  /// admitted. Never blocks.
  bool try_submit(std::function<void()> task);

  /// Block until every admitted task has completed.
  void drain();

  QueueStats stats() const;

private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  ThreadPool pool_;  ///< declared last: destructor joins while the
                     ///< counters above are still alive
};

/// Per-connection reorder buffer: responses are written to the sink in
/// allocation order, whatever order the handlers finish in. Thread-safe.
class OrderedWriter {
public:
  /// `sink` receives complete NDJSON lines (newline included) in order;
  /// it is called with the internal mutex held, so it needs no locking of
  /// its own but must not re-enter the writer.
  explicit OrderedWriter(std::function<void(const std::string&)> sink);

  /// Allocate the next sequence slot (call on the reader thread, in
  /// arrival order).
  std::uint64_t allocate();

  /// Deliver the response for `seq`; flushes every contiguous completed
  /// response.
  void write(std::uint64_t seq, std::string line);

private:
  std::function<void(const std::string&)> sink_;
  std::mutex mutex_;
  std::uint64_t allocated_ = 0;
  std::uint64_t emitted_ = 0;
  std::map<std::uint64_t, std::string> pending_;
};

/// Serve NDJSON requests from `in` to `out` until EOF or a `shutdown`
/// request, then drain. Returns the process exit code (0, or 1 on an
/// unrecoverable transport error).
int serve_stream(Dispatcher& dispatcher, std::istream& in,
                 std::ostream& out, const ServerOptions& options);

/// Listen on an AF_UNIX stream socket at `path` until SIGTERM/SIGINT or a
/// `shutdown` request, then drain every connection. A socket file left by
/// a crashed daemon is probed (connect) and unlinked when dead; a live
/// daemon's socket, or a non-socket file, is never removed (returns 1).
/// Returns the process exit code.
int serve_unix_socket(Dispatcher& dispatcher, const std::string& path,
                      const ServerOptions& options);

/// Listen on TCP `host`:`port` (--listen). Same protocol, framing, and
/// line-length bounds as the AF_UNIX transport; `host` must be a numeric
/// IPv4 address ("127.0.0.1", "0.0.0.0"). Port 0 binds an ephemeral port;
/// `on_listening`, when set, receives the actually bound port before the
/// first accept (tests use it to connect). Returns the process exit code.
int serve_tcp(Dispatcher& dispatcher, const std::string& host,
              std::uint16_t port, const ServerOptions& options,
              const std::function<void(std::uint16_t)>& on_listening = {});

}  // namespace perftrack::serve
