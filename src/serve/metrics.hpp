#pragma once
// perftrackd's live metrics: the serve-layer instrumentation over
// obs::MetricsRegistry.
//
// Every request is measured end to end and decomposed into phases:
//
//   parse -> queue_wait -> lock_wait -> handler -> write
//
// and recorded into per-method histograms plus request/error counters.
// Recording is lock-free (see obs/metrics.hpp); per-method handles
// (MethodMetrics) are resolved once — the service binds them into its
// endpoint table at construction, the server memoises them per
// connection — so the hot path is a few relaxed atomics with no string
// hashing at all, cheap enough to leave on in production
// (bench/perf_serve pins the ping-flood overhead at < 1%).
//
// Metric catalogue (docs/OBSERVABILITY.md is the reference):
//
//   perftrackd_requests_total{method=}   counter  requests dispatched
//   perftrackd_errors_total{code=}       counter  error responses by code
//   perftrackd_request_ns{method=}       histogram  end-to-end latency
//                                        (read off the wire -> response
//                                        written), recorded by the server
//   perftrackd_handler_ns{method=}       histogram  handler execution
//                                        alone, recorded by the service
//                                        (fills even without a transport)
//   perftrackd_phase_ns{phase=}          histogram  parse / queue_wait /
//                                        lock_wait / write breakdown
//   perftrackd_queue_depth / _capacity   gauge  backpressure state
//   perftrackd_studies / _resident_sessions  gauge  registry occupancy
//   perftrackd_uptime_seconds            gauge  since service start
//   perftrackd_frame_cache_{hits,misses,stores}  gauge  cache totals
//                                        aggregated over resident sessions
//
// Lock-wait is accumulated into a thread-local request context that
// TrackingService::handle() resets on entry, so the server (and the
// access log) can report how much of a request went to study-lock
// acquisition without threading a context object through every handler.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace perftrack::serve {

class ServeMetrics {
public:
  /// `enabled` false turns every record_* into a no-op (the registry
  /// still exists and samples as all-zero) — the metrics-off baseline
  /// bench/perf_serve compares against.
  explicit ServeMetrics(bool enabled = true);
  ServeMetrics(const ServeMetrics&) = delete;
  ServeMetrics& operator=(const ServeMetrics&) = delete;

  bool enabled() const { return enabled_; }
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

  /// Pre-resolved handles of one method's label slots. Stable for the
  /// registry's lifetime; resolving once and recording through the
  /// handle keeps the per-request hot path free of string hashing (the
  /// service resolves per endpoint at construction, the server memoises
  /// per connection).
  struct MethodMetrics {
    obs::Counter* requests;
    obs::Histogram* request_ns;
    obs::Histogram* handler_ns;
  };

  /// Resolve `method` to its handle. Unknown methods share the "other"
  /// slot and unparseable lines the "invalid" slot; never null.
  const MethodMetrics* method_metrics(const std::string& method) const;

  /// Request dispatched (any outcome), by pre-resolved handle.
  void count_request(const MethodMetrics* slot) {
    if (enabled_) slot->requests->add();
  }
  /// Convenience: resolve-and-count (cold paths only).
  void count_request(const std::string& method) {
    count_request(method_metrics(method));
  }

  /// Error response produced, by wire error code ("bad-request", ...).
  void count_error(std::string_view code);

  /// End-to-end latency (server transport loop: line read -> response
  /// bytes handed to the sink).
  void record_request_ns(const MethodMetrics* slot, std::uint64_t ns) {
    if (enabled_) slot->request_ns->record(ns);
  }
  void record_request_ns(const std::string& method, std::uint64_t ns) {
    record_request_ns(method_metrics(method), ns);
  }

  /// Handler execution alone (TrackingService::handle).
  void record_handler_ns(const MethodMetrics* slot, std::uint64_t ns) {
    if (enabled_) slot->handler_ns->record(ns);
  }
  void record_handler_ns(const std::string& method, std::uint64_t ns) {
    record_handler_ns(method_metrics(method), ns);
  }

  enum class Phase { Parse, QueueWait, LockWait, Write };
  void record_phase_ns(Phase phase, std::uint64_t ns);

  /// Study-lock acquisition wait: recorded into the phase histogram and
  /// accumulated into this thread's request context.
  void record_lock_wait_ns(std::uint64_t ns);

  /// Reset this thread's per-request context (handle() calls this on
  /// entry) / read the lock-wait it accumulated since.
  static void reset_request_context();
  static std::uint64_t context_lock_wait_ns();

  /// Snapshot plus the family help texts, for the exporters.
  obs::MetricsSnapshot snapshot() const { return registry_.snapshot(); }

  /// Per-method latency distributions for the `stats` surface, skipping
  /// methods that never ran. End-to-end when the transport recorded it,
  /// otherwise handler-only (direct service callers have no wire time).
  std::vector<std::pair<std::string, obs::HistogramSnapshot>>
  per_method_latency() const;

private:
  bool enabled_;
  obs::MetricsRegistry registry_;
  std::unordered_map<std::string, MethodMetrics> methods_;
  obs::Histogram* phase_parse_;
  obs::Histogram* phase_queue_wait_;
  obs::Histogram* phase_lock_wait_;
  obs::Histogram* phase_write_;
};

}  // namespace perftrack::serve
