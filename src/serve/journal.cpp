#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/failpoint.hpp"
#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "store/serialize.hpp"

namespace perftrack::serve {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'P', 'T', 'J', 'L'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderSize = 8;       // magic + u32 version
constexpr std::size_t kFrameSize = 12;       // u32 len + u64 checksum
// A journal payload is one log entry (create records add the study name
// and six config scalars); anything bigger than this is a corrupt length
// prefix, not a real record — recovery truncates there without trying to
// read a multi-gigabyte "record" into memory.
constexpr std::uint32_t kMaxPayload = 256u << 20;

enum class RecordType : std::uint8_t {
  Create = 1,  ///< study name + open_study-settable configuration
  Append = 2,  ///< one AppendEntry (kind, label, detail, seq)
  Remove = 3,  ///< close_study tombstone; the file is dead
};

/// The open_study-settable configuration fields, in Create-record order.
/// Everything else (tracking params, cache size cap, ...) comes from the
/// daemon's base configuration at recovery time, same as at open time.
void encode_config(store::BinWriter& w, const tracking::SessionConfig& c) {
  w.f64(c.clustering.dbscan.eps);
  w.u64(static_cast<std::uint64_t>(c.clustering.dbscan.min_pts));
  w.f64(c.clustering.min_cluster_time_fraction);
  w.u8(c.resilience.lenient ? 1 : 0);
  w.f64(c.resilience.max_gap_fraction);
  w.str(c.cache.directory);
}

void decode_config(store::BinReader& r, tracking::SessionConfig& c) {
  c.clustering.dbscan.eps = r.f64();
  c.clustering.dbscan.min_pts = static_cast<std::size_t>(r.u64());
  c.clustering.min_cluster_time_fraction = r.f64();
  c.resilience.lenient = r.u8() != 0;
  c.resilience.max_gap_fraction = r.f64();
  c.cache.directory = r.str();
}

std::string encode_header() {
  std::string out(kMagic, sizeof kMagic);
  store::BinWriter w;
  w.u32(kJournalVersion);
  out += w.bytes();
  return out;
}

/// Frame one payload: u32 length, u64 fnv1a64 checksum, payload bytes.
std::string frame_record(const std::string& payload) {
  store::BinWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(store::fnv1a64(payload));
  std::string out = w.take();
  out += payload;
  return out;
}

std::string create_payload(const std::string& study,
                           const tracking::SessionConfig& session) {
  store::BinWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::Create));
  w.str(study);
  encode_config(w, session);
  return w.take();
}

std::string append_payload(const AppendEntry& entry) {
  store::BinWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::Append));
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.str(entry.label);
  w.str(entry.detail);
  w.u64(entry.seq);
  return w.take();
}

std::string remove_payload() {
  store::BinWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::Remove));
  return w.take();
}

bool write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

char hex_digit(unsigned v) { return "0123456789abcdef"[v & 0xf]; }

}  // namespace

FsyncMode fsync_mode_from_name(const std::string& name) {
  if (name == "always") return FsyncMode::Always;
  if (name == "batch") return FsyncMode::Batch;
  if (name == "off") return FsyncMode::Off;
  throw Error("unknown fsync mode '" + name +
              "' (expected always, batch, or off)");
}

std::string_view fsync_mode_name(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::Always: return "always";
    case FsyncMode::Batch: return "batch";
    case FsyncMode::Off: return "off";
  }
  return "batch";
}

std::string journal_file_name(const std::string& study) {
  std::string out;
  out.reserve(study.size() + 8);
  for (char c : study) {
    const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (plain) {
      out += c;
    } else {
      out += '%';
      out += hex_digit(static_cast<unsigned char>(c) >> 4);
      out += hex_digit(static_cast<unsigned char>(c));
    }
  }
  if (out.empty()) out = "%";  // "" is not a valid study, but never emit ""
  return out + ".journal";
}

// ---------------------------------------------------------------------------
// Journal

Journal::Journal(JournalConfig config, std::string study, std::string path)
    : config_(std::move(config)),
      study_(std::move(study)),
      path_(std::move(path)) {}

Journal::~Journal() {
  if (fd_ < 0) return;
  if (config_.fsync != FsyncMode::Off && unsynced_ > 0) ::fsync(fd_);
  ::close(fd_);
}

std::unique_ptr<Journal> Journal::create(
    const JournalConfig& config, const std::string& study,
    const tracking::SessionConfig& session) {
  std::error_code ec;
  fs::create_directories(config.directory, ec);
  if (ec)
    throw IoError("cannot create state directory " + config.directory +
                  ": " + ec.message());
  const std::string path =
      (fs::path(config.directory) / journal_file_name(study)).string();
  std::unique_ptr<Journal> journal(new Journal(config, study, path));
  journal->open_for_append(/*truncate=*/true);
  const std::string header = encode_header();
  if (!write_all_fd(journal->fd_, header.data(), header.size()))
    throw io_error("cannot write journal header", path);
  journal->good_size_ = header.size();
  journal->write_record_or_heal(frame_record(create_payload(study, session)));
  // The header + create record are the file's identity; make them durable
  // before the study accepts appends (batch mode included — losing the
  // create would orphan every later record).
  if (config.fsync != FsyncMode::Off) {
    journal->fsync_now();
    journal->fsync_directory();
  }
  journal->unsynced_ = 0;
  return journal;
}

std::unique_ptr<Journal> Journal::attach(const JournalConfig& config,
                                         const std::string& study,
                                         std::uint64_t records,
                                         std::uint64_t bytes) {
  const std::string path =
      (fs::path(config.directory) / journal_file_name(study)).string();
  std::unique_ptr<Journal> journal(new Journal(config, study, path));
  journal->open_for_append(/*truncate=*/false);
  journal->good_size_ = bytes;
  journal->records_ = records;
  return journal;
}

void Journal::open_for_append(bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) throw io_error("cannot open journal", path_);
}

void Journal::write_record_or_heal(const std::string& record) {
  if (!write_all_fd(fd_, record.data(), record.size())) {
    IoError error = io_error("cannot write journal record", path_);
    heal_tail();
    throw error;
  }
  good_size_ += record.size();
  ++records_;
  ++unsynced_;
}

void Journal::append(const AppendEntry& entry) {
  if (broken_)
    throw IoError("journal " + path_ +
                  " has a torn tail from an earlier failure; restart the "
                  "daemon to recover it");
  const std::string record = frame_record(append_payload(entry));

  // Crash-injection seams. journal_torn_write simulates dying mid-write:
  // half the record lands and nothing heals, exactly the state a kill -9
  // leaves behind (recovery truncates it). journal_short_write simulates a
  // live failure (ENOSPC): half the record lands, the tail heals, the next
  // append works.
  bool torn = false, short_write = false;
  try {
    PT_FAILPOINT("journal_torn_write");
  } catch (const InjectedFault&) {
    torn = true;
  }
  try {
    PT_FAILPOINT("journal_short_write");
  } catch (const InjectedFault&) {
    short_write = true;
  }
  if (torn || short_write) {
    write_all_fd(fd_, record.data(), record.size() / 2);
    if (torn) {
      broken_ = true;
      throw IoError("injected torn write on " + path_ +
                    " (simulated crash mid-append)");
    }
    heal_tail();
    throw IoError("injected short write on " + path_);
  }
  try {
    PT_FAILPOINT("journal_append_error");
  } catch (const InjectedFault&) {
    throw IoError("injected append error on " + path_);
  }

  if (!write_all_fd(fd_, record.data(), record.size())) {
    IoError error = io_error("cannot append journal record", path_);
    heal_tail();
    throw error;
  }
  good_size_ += record.size();
  ++records_;
  ++unsynced_;
  ++appended_since_compact_;
  const bool sync_due =
      config_.fsync == FsyncMode::Always ||
      (config_.fsync == FsyncMode::Batch &&
       unsynced_ >= std::max<std::size_t>(config_.batch_appends, 1));
  if (!sync_due) return;
  try {
    fsync_now();
  } catch (const IoError&) {
    // The record's bytes are in the file but their durability is unknown,
    // so the caller must not apply it in memory (write-ahead ordering).
    // Cut it back off so disk and memory agree; if even the truncate
    // fails, recovery's seq dedupe covers a client replay of this append.
    good_size_ -= record.size();
    --records_;
    --unsynced_;
    --appended_since_compact_;
    heal_tail();
    throw;
  }
}

void Journal::fsync_now() {
  try {
    PT_FAILPOINT("journal_fsync_error");
  } catch (const InjectedFault&) {
    throw IoError("injected fsync error on " + path_);
  }
  if (::fsync(fd_) != 0) throw io_error("cannot fsync journal", path_);
  unsynced_ = 0;
}

void Journal::fsync_directory() {
  // Directory fsync publishes the create/rename/unlink itself; skipping it
  // risks a journal whose *name* vanishes in a crash even though its bytes
  // were synced. Best effort: not every filesystem allows it.
  int dfd = ::open(config_.directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;
  ::fsync(dfd);
  ::close(dfd);
}

void Journal::heal_tail() {
  // Cut the file back to the last committed record so a partial write
  // cannot shadow future appends. good_size_ only counts whole records,
  // so truncating there is always safe.
  if (::ftruncate(fd_, static_cast<off_t>(good_size_)) != 0) {
    broken_ = true;
    PT_LOG(Warn) << "journal: cannot truncate partial record off " << path_
                 << ": " << std::strerror(errno)
                 << " — journal disabled until restart";
  }
}

void Journal::sync() {
  if (fd_ < 0 || broken_) return;
  if (config_.fsync == FsyncMode::Off || unsynced_ == 0) return;
  fsync_now();
}

void Journal::remove_and_unlink() {
  if (fd_ < 0) return;
  if (!broken_) {
    const std::string record = frame_record(remove_payload());
    if (!write_all_fd(fd_, record.data(), record.size())) {
      IoError error = io_error("cannot write close tombstone", path_);
      heal_tail();
      throw error;
    }
    good_size_ += record.size();
    ++records_;
    // The tombstone must be durable before the name disappears: a crash
    // after unlink but before the data reached disk could resurrect the
    // study from the still-linked blocks on some filesystems.
    if (config_.fsync != FsyncMode::Off) fsync_now();
  }
  if (::unlink(path_.c_str()) != 0) {
    PT_LOG(Warn) << "journal: cannot unlink " << path_ << ": "
                 << std::strerror(errno)
                 << " — the tombstone removes the study on the next boot";
  } else if (config_.fsync != FsyncMode::Off) {
    fsync_directory();
  }
  ::close(fd_);
  fd_ = -1;
}

bool Journal::should_compact() const {
  return !broken_ && config_.compact_threshold > 0 &&
         appended_since_compact_ >= config_.compact_threshold;
}

void Journal::compact(const std::string& study,
                      const tracking::SessionConfig& session,
                      const std::vector<AppendEntry>& live) {
  const std::string tmp_path = path_ + ".tmp";
  int tmp_fd = ::open(tmp_path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) throw io_error("cannot open compaction file", tmp_path);

  std::string snapshot = encode_header();
  snapshot += frame_record(create_payload(study, session));
  for (const AppendEntry& entry : live)
    snapshot += frame_record(append_payload(entry));

  bool ok = write_all_fd(tmp_fd, snapshot.data(), snapshot.size());
  // The snapshot must be on disk before the rename publishes it: a crash
  // right after rename must never leave a shorter journal than before.
  if (ok && config_.fsync != FsyncMode::Off) ok = ::fsync(tmp_fd) == 0;
  ::close(tmp_fd);
  if (!ok) {
    IoError error = io_error("cannot write compacted journal", tmp_path);
    ::unlink(tmp_path.c_str());
    throw error;
  }
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    IoError error = io_error("cannot publish compacted journal", path_);
    ::unlink(tmp_path.c_str());
    throw error;
  }
  if (config_.fsync != FsyncMode::Off) fsync_directory();

  // Swap the fd to the new file; the old one is unlinked by the rename.
  ::close(fd_);
  fd_ = -1;
  open_for_append(/*truncate=*/false);
  good_size_ = snapshot.size();
  records_ = 1 + live.size();
  unsynced_ = 0;
  appended_since_compact_ = 0;
  ++compactions_;
  PT_COUNTER("journal_compactions", 1.0);
  PT_LOG(Debug) << "journal: compacted " << path_ << " to "
                << snapshot.size() << " bytes (" << live.size()
                << " live entries)";
}

// ---------------------------------------------------------------------------
// Recovery

namespace {

struct ParsedJournal {
  bool has_create = false;
  bool removed = false;  ///< last record is a tombstone
  RecoveredStudy study;
  std::uint64_t good_offset = 0;  ///< file offset after the last good record
  std::uint64_t deduped = 0;      ///< duplicate-seq records skipped
  std::string damage;             ///< why the scan stopped early ("" = clean)
};

/// Parse one journal's bytes; never throws. Stops at the first torn or
/// corrupt record, reporting everything before it plus where and why the
/// scan ended.
ParsedJournal parse_journal(const std::string& bytes) {
  ParsedJournal out;
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    out.damage = "missing or foreign header";
    return out;
  }
  {
    store::BinReader header(
        std::string_view(bytes).substr(sizeof kMagic, 4));
    const std::uint32_t version = header.u32();
    if (version != kJournalVersion) {
      out.damage =
          "unsupported journal version " + std::to_string(version);
      return out;
    }
  }
  out.good_offset = kHeaderSize;

  std::size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameSize) {
      out.damage = "torn record frame at offset " + std::to_string(pos);
      break;
    }
    store::BinReader frame(std::string_view(bytes).substr(pos, kFrameSize));
    const std::uint32_t len = frame.u32();
    const std::uint64_t checksum = frame.u64();
    if (len > kMaxPayload || bytes.size() - pos - kFrameSize < len) {
      out.damage = "torn record payload at offset " + std::to_string(pos) +
                   " (" + std::to_string(len) + " bytes framed)";
      break;
    }
    const std::string_view payload =
        std::string_view(bytes).substr(pos + kFrameSize, len);
    if (store::fnv1a64(payload) != checksum) {
      out.damage = "checksum mismatch at offset " + std::to_string(pos);
      break;
    }
    try {
      store::BinReader r(payload);
      const auto type = static_cast<RecordType>(r.u8());
      switch (type) {
        case RecordType::Create: {
          if (out.has_create) throw ParseError("duplicate create record");
          out.study.name = r.str();
          decode_config(r, out.study.config);
          out.has_create = true;
          break;
        }
        case RecordType::Append: {
          if (!out.has_create)
            throw ParseError("append record before create");
          AppendEntry entry;
          const std::uint8_t kind = r.u8();
          if (kind > static_cast<std::uint8_t>(AppendEntry::Kind::Gap))
            throw ParseError("unknown append kind " + std::to_string(kind));
          entry.kind = static_cast<AppendEntry::Kind>(kind);
          entry.label = r.str();
          entry.detail = r.str();
          entry.seq = r.u64();
          // A duplicate seq means a retry raced a crash or a failed fsync:
          // the entry is already in the log, so replaying it again would
          // break the exactly-once contract.
          if (entry.seq != 0 && entry.seq <= out.study.last_seq) {
            ++out.study.records;  // the record itself is valid
            ++out.deduped;
          } else {
            if (entry.seq != 0) out.study.last_seq = entry.seq;
            out.study.entries.push_back(std::move(entry));
            ++out.study.records;
          }
          break;
        }
        case RecordType::Remove: {
          out.removed = true;
          break;
        }
        default:
          throw ParseError("unknown record type " +
                           std::to_string(static_cast<unsigned>(type)));
      }
    } catch (const Error& error) {
      out.damage = std::string(error.what()) + " at offset " +
                   std::to_string(pos);
      break;
    }
    pos += kFrameSize + len;
    out.good_offset = pos;
    if (out.removed) break;  // everything after a tombstone is dead
  }
  return out;
}

void quarantine(const fs::path& path, RecoveryReport& report,
                const std::string& why) {
  const fs::path target = path.string() + ".quarantined";
  std::error_code ec;
  fs::rename(path, target, ec);
  ++report.quarantined;
  PT_COUNTER("journal_quarantined", 1.0);
  PT_LOG(Warn) << "journal: quarantined " << path.string() << " -> "
               << target.filename().string() << ": " << why
               << (ec ? " (rename failed: " + ec.message() + ")" : "");
}

}  // namespace

RecoveryReport recover_state_dir(const JournalConfig& config,
                                 const tracking::SessionConfig& base) {
  RecoveryReport report;
  if (!config.enabled()) return report;
  std::error_code ec;
  if (!fs::is_directory(config.directory, ec)) return report;

  // Deterministic scan order so diagnostics and duplicate-name handling
  // are reproducible.
  std::vector<fs::path> files;
  for (const auto& item : fs::directory_iterator(config.directory, ec)) {
    if (ec) break;
    if (item.is_regular_file() && item.path().extension() == ".journal")
      files.push_back(item.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
        if (!in.good() && !in.eof()) bytes.clear();
      } else {
        quarantine(path, report, "unreadable file");
        continue;
      }
    }

    ParsedJournal parsed = parse_journal(bytes);
    if (!parsed.has_create) {
      quarantine(path, report,
                 parsed.damage.empty() ? "no create record" : parsed.damage);
      continue;
    }
    if (!parsed.damage.empty()) {
      // Torn tail or corrupt record after a valid prefix: keep the prefix,
      // cut the rest so the next boot scans clean.
      PT_LOG(Warn) << "journal: " << path.string() << ": " << parsed.damage
                   << "; truncating " << (bytes.size() - parsed.good_offset)
                   << " bytes (" << parsed.study.entries.size()
                   << " entries survive)";
      fs::resize_file(path, parsed.good_offset, ec);
      if (ec) {
        quarantine(path, report,
                   "cannot truncate damaged tail: " + ec.message());
        continue;
      }
      ++report.truncated;
      PT_COUNTER("journal_truncated", 1.0);
      parsed.study.truncated = true;
    }
    if (parsed.removed) {
      // Crash between tombstone and unlink: finish the close now.
      fs::remove(path, ec);
      ++report.tombstones;
      PT_LOG(Info) << "journal: completing close of study '"
                   << parsed.study.name << "' (tombstoned journal)";
      continue;
    }

    const std::string expected = journal_file_name(parsed.study.name);
    if (path.filename().string() != expected) {
      quarantine(path, report, "file name does not match study '" +
                                   parsed.study.name + "' (expected " +
                                   expected + ")");
      continue;
    }
    const auto duplicate = std::find_if(
        report.studies.begin(), report.studies.end(),
        [&](const RecoveredStudy& s) { return s.name == parsed.study.name; });
    if (duplicate != report.studies.end()) {
      quarantine(path, report,
                 "duplicate study '" + parsed.study.name + "'");
      continue;
    }

    // Overlay the journaled overrides on the daemon's base configuration —
    // the same merge open_study performed originally.
    tracking::SessionConfig merged = base;
    merged.clustering.dbscan.eps = parsed.study.config.clustering.dbscan.eps;
    merged.clustering.dbscan.min_pts =
        parsed.study.config.clustering.dbscan.min_pts;
    merged.clustering.min_cluster_time_fraction =
        parsed.study.config.clustering.min_cluster_time_fraction;
    merged.resilience = parsed.study.config.resilience;
    merged.cache.directory = parsed.study.config.cache.directory;
    parsed.study.config = std::move(merged);

    parsed.study.records += 1;  // the create record
    parsed.study.bytes = parsed.good_offset;
    report.deduped += parsed.deduped;
    ++report.recovered;
    PT_COUNTER("journal_recovered", 1.0);
    PT_LOG(Info) << "journal: recovered study '" << parsed.study.name
                 << "' (" << parsed.study.entries.size() << " entries"
                 << (parsed.study.truncated ? ", tail truncated" : "")
                 << ") from " << path.string();
    report.studies.push_back(std::move(parsed.study));
  }
  return report;
}

}  // namespace perftrack::serve
