#pragma once
// Minimal HTTP scrape endpoint for the perftrackd metrics plane.
//
// Prometheus (and curl) speak HTTP, not the NDJSON protocol, so the
// daemon can open a second, read-only listener dedicated to scraping:
//
//   GET /metrics        -> text/plain; version=0.0.4  Prometheus text
//   GET /metrics.json   -> application/json           compact snapshot
//   GET /health         -> application/json           liveness probe
//
// perftrackd --metrics-socket PATH binds it to an AF_UNIX socket
// (curl --unix-socket PATH http://localhost/metrics);
// --metrics-port N binds 127.0.0.1:N (0 picks an ephemeral port, printed
// on startup). Loopback only — this is an operator surface, not a
// public one.
//
// The server is deliberately tiny: one background thread, one request
// per connection, HTTP/1.0 close-after-response semantics, request
// bodies ignored. Sampling the registry never blocks the request path
// (see obs/metrics.hpp), so a scrape is safe at any load.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace perftrack::serve {

class TrackingService;

class MetricsHttpServer {
public:
  explicit MetricsHttpServer(TrackingService& service);

  /// Stops and joins the serving thread; the socket file (unix mode) is
  /// removed.
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Listen on an AF_UNIX stream socket at `path` (a stale socket file
  /// is replaced). Returns false (with a log line) on failure.
  bool start_unix(const std::string& path);

  /// Listen on 127.0.0.1:`port`; 0 binds an ephemeral port. Returns
  /// false on failure.
  bool start_tcp(std::uint16_t port);

  /// Actual bound TCP port (after start_tcp(0) resolves the ephemeral
  /// port); 0 when not serving TCP.
  std::uint16_t port() const { return port_; }

  /// Stop accepting and join the thread. Idempotent; the destructor
  /// calls it.
  void stop();

private:
  void run();
  void handle_connection(int fd);

  TrackingService& service_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::string socket_path_;  ///< unlinked on stop (unix mode)
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace perftrack::serve
