#include "paraver/pcf.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace perftrack::paraver {

namespace {

std::string caller_label(const trace::SourceLocation& loc) {
  return loc.function + " (" + loc.file + ":" + std::to_string(loc.line) +
         ")";
}

std::string caller_key(const trace::SourceLocation& loc) {
  return loc.file + "\x1f" + std::to_string(loc.line) + "\x1f" +
         loc.function;
}

/// Parse "function (file:line)"; falls back to the whole label as the
/// function name when the "(file:line)" suffix is absent.
trace::SourceLocation parse_caller_label(std::string_view label) {
  trace::SourceLocation loc;
  std::size_t open = label.rfind(" (");
  std::size_t close = label.rfind(')');
  if (open != std::string_view::npos && close == label.size() - 1) {
    std::string_view inside = label.substr(open + 2, close - open - 2);
    std::size_t colon = inside.rfind(':');
    if (colon != std::string_view::npos) {
      std::string_view line_text = inside.substr(colon + 1);
      bool numeric = !line_text.empty();
      for (char c : line_text)
        if (c < '0' || c > '9') numeric = false;
      if (numeric) {
        // from_chars instead of stoul: overflowing line numbers in crafted
        // files must not throw std::out_of_range past the parser.
        std::uint32_t line_value = 0;
        std::from_chars(line_text.data(), line_text.data() + line_text.size(),
                        line_value);
        loc.function = std::string(trim(label.substr(0, open)));
        loc.file = std::string(inside.substr(0, colon));
        loc.line = line_value;
        return loc;
      }
    }
  }
  loc.function = std::string(trim(label));
  loc.file = "<unknown>";
  loc.line = 0;
  return loc;
}

}  // namespace

void PcfConfig::set_caller(std::uint64_t value,
                           const trace::SourceLocation& loc) {
  callers_[value] = loc;
  by_location_[caller_key(loc)] = value;
}

const trace::SourceLocation* PcfConfig::caller(std::uint64_t value) const {
  auto it = callers_.find(value);
  return it == callers_.end() ? nullptr : &it->second;
}

std::uint64_t PcfConfig::intern_caller(const trace::SourceLocation& loc) {
  auto it = by_location_.find(caller_key(loc));
  if (it != by_location_.end()) return it->second;
  std::uint64_t value = callers_.empty() ? 1 : callers_.rbegin()->first + 1;
  set_caller(value, loc);
  return value;
}

void write_pcf(std::ostream& out, const PcfConfig& config) {
  out << "DEFAULT_OPTIONS\n\nLEVEL               TASK\nUNITS               "
         "NANOSEC\n\n";
  if (!config.application.empty())
    out << "# APPLICATION " << config.application << "\n\n";

  out << "EVENT_TYPE\n";
  out << "0    " << kEventInstructions << "    (PAPI_TOT_INS) Instr "
         "completed\n";
  out << "0    " << kEventCycles << "    (PAPI_TOT_CYC) Total cycles\n";
  out << "0    " << kEventL1Misses << "    (PAPI_L1_DCM) L1D cache misses\n";
  out << "0    " << kEventL2Misses << "    (PAPI_L2_DCM) L2D cache misses\n";
  out << "0    " << kEventTlbMisses << "    (PAPI_TLB_DM) Data TLB misses\n";
  out << "\nEVENT_TYPE\n";
  out << "0    " << kEventCaller << "    Caller at level 1\n";
  out << "VALUES\n";
  out << "0      End\n";
  for (const auto& [value, loc] : config.callers())
    out << value << "      " << caller_label(loc) << "\n";
  if (!out) throw IoError("pcf write failed");
}

void save_pcf(const std::string& path, const PcfConfig& config) {
  errno = 0;
  std::ofstream out(path);
  if (!out) throw io_error("cannot open for writing", path);
  write_pcf(out, config);
}

PcfConfig read_pcf(std::istream& in, Diagnostics& diags) {
  PcfConfig config;
  std::string line;
  int line_no = 0;
  bool in_caller_type = false;
  bool in_values = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (starts_with(text, "# APPLICATION ")) {
      config.application = std::string(trim(text.substr(14)));
      continue;
    }
    if (text == "EVENT_TYPE") {
      in_caller_type = false;
      in_values = false;
      continue;
    }
    if (text == "VALUES") {
      in_values = true;
      continue;
    }
    if (text.empty()) {
      in_caller_type = false;
      in_values = false;
      continue;
    }
    if (!in_values) {
      // "gradient  type  label": detect the caller event type.
      std::istringstream fields{std::string(text)};
      std::uint64_t gradient = 0, type = 0;
      if (fields >> gradient >> type && type == kEventCaller)
        in_caller_type = true;
      continue;
    }
    if (in_values && in_caller_type) {
      diags.count_record();
      // "value  label..."
      std::size_t space = text.find_first_of(" \t");
      if (space == std::string_view::npos) {
        diags.error(line_no, "bad-pcf-value",
                    "malformed PCF value line: " + std::string(text));
        continue;
      }
      std::string value_text(text.substr(0, space));
      std::uint64_t value = 0;
      auto [ptr, ec] = std::from_chars(
          value_text.data(), value_text.data() + value_text.size(), value);
      if (ec != std::errc{} || ptr != value_text.data() + value_text.size()) {
        diags.error(line_no, "bad-pcf-value",
                    "bad PCF caller value: " + value_text);
        continue;
      }
      if (value == 0) continue;  // the "End" sentinel
      config.set_caller(value,
                        parse_caller_label(trim(text.substr(space))));
    }
  }
  if (in.bad()) throw io_error("pcf read failed", diags.file());
  return config;
}

PcfConfig read_pcf(std::istream& in) {
  Diagnostics diags;
  return read_pcf(in, diags);
}

PcfConfig load_pcf(const std::string& path, Diagnostics& diags) {
  diags.set_file(path);
  errno = 0;
  std::ifstream in(path);
  if (!in) throw io_error("cannot open for reading", path);
  return read_pcf(in, diags);
}

PcfConfig load_pcf(const std::string& path) {
  Diagnostics diags;
  return load_pcf(path, diags);
}

}  // namespace perftrack::paraver
