#include "paraver/prv.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"

namespace perftrack::paraver {

namespace {

constexpr double kNsPerSecond = 1e9;

std::uint64_t to_ns(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * kNsPerSecond));
}

double to_seconds(std::uint64_t ns) {
  return static_cast<double>(ns) / kNsPerSecond;
}

std::optional<std::uint64_t> try_parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

}  // namespace

namespace detail {

void write_prv_streams(std::ostream& prv, std::ostream& pcf,
                       const trace::Trace& trace) {
  PcfConfig config;
  config.application = trace.application();

  const std::uint32_t tasks = trace.num_tasks();
  const std::uint64_t duration = to_ns(trace.end_time());

  // Header: one node with `tasks` cpus, one application with `tasks`
  // tasks of one thread each, every task on node 1.
  prv << "#Paraver (01/01/2026 at 00:00):" << duration << "_ns:1(" << tasks
      << "):1:" << tasks << "(";
  for (std::uint32_t t = 0; t < tasks; ++t) {
    if (t) prv << ",";
    prv << "1:1";
  }
  prv << ")\n";

  // Records must be emitted in global time order for Paraver proper; we
  // sort (time, task) keys of burst boundaries.
  struct Record {
    std::uint64_t time;
    std::uint32_t task;
    std::string text;
  };
  std::vector<Record> records;
  records.reserve(trace.burst_count() * 2);

  for (const trace::Burst& burst : trace.bursts()) {
    const std::uint64_t begin = to_ns(burst.begin_time);
    const std::uint64_t end = to_ns(burst.end_time());
    const int cpu = static_cast<int>(burst.task) + 1;
    const int task1 = static_cast<int>(burst.task) + 1;

    std::ostringstream state;
    state << "1:" << cpu << ":1:" << task1 << ":1:" << begin << ":" << end
          << ":" << kStateRunning;
    records.push_back({begin, burst.task, state.str()});

    std::ostringstream event;
    event << "2:" << cpu << ":1:" << task1 << ":1:" << end;
    auto add = [&event](std::uint64_t type, std::uint64_t value) {
      event << ":" << type << ":" << value;
    };
    add(kEventInstructions, static_cast<std::uint64_t>(std::llround(
                                burst.counters.get(
                                    trace::Counter::Instructions))));
    add(kEventCycles, static_cast<std::uint64_t>(std::llround(
                          burst.counters.get(trace::Counter::Cycles))));
    add(kEventL1Misses, static_cast<std::uint64_t>(std::llround(
                            burst.counters.get(
                                trace::Counter::L1DMisses))));
    add(kEventL2Misses, static_cast<std::uint64_t>(std::llround(
                            burst.counters.get(trace::Counter::L2Misses))));
    add(kEventTlbMisses, static_cast<std::uint64_t>(std::llround(
                             burst.counters.get(
                                 trace::Counter::TlbMisses))));
    if (burst.callstack != trace::kUnknownCallstack) {
      const trace::SourceLocation& loc =
          trace.callstacks().resolve(burst.callstack);
      add(kEventCaller, config.intern_caller(loc));
    }
    records.push_back({end, burst.task, event.str()});
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.task < b.task;
                   });
  for (const Record& record : records) prv << record.text << "\n";
  if (!prv) throw IoError("prv write failed");

  write_pcf(pcf, config);
}

trace::Trace read_prv_streams(std::istream& prv, std::istream& pcf,
                              Diagnostics& diags) {
  PcfConfig config = read_pcf(pcf, diags);

  std::string line;
  if (!std::getline(prv, line) || !starts_with(trim(line), "#Paraver")) {
    // Without a header there is no task count: fatal in both modes.
    if (diags.is_lenient())
      diags.error(1, "bad-magic", "missing #Paraver header");
    throw ParseError("missing #Paraver header");
  }

  // Header: "#Paraver (...):<duration>:<nodes>(...):<napps>:<ntasks>(...)".
  // We need the task count: the 5th top-level colon field (date contains
  // a colon inside parentheses, so split with nesting awareness).
  std::vector<std::string> fields;
  {
    std::string current;
    int depth = 0;
    for (char c : line) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ':' && depth == 0) {
        fields.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    fields.push_back(current);
  }
  // Header problems are fatal in both modes (without a task count the rest
  // of the file cannot be interpreted); lenient mode still records a
  // structured diagnostic before aborting.
  auto fatal_header = [&](const std::string& message) -> ParseError {
    if (diags.is_lenient()) diags.error(1, "bad-header", message);
    return ParseError(message);
  };
  if (fields.size() < 5) throw fatal_header("truncated #Paraver header");
  std::string task_field = fields[4];
  std::size_t paren = task_field.find('(');
  if (paren == std::string::npos)
    throw fatal_header("malformed task list in #Paraver header");
  auto task_count = try_parse_u64(trim(task_field.substr(0, paren)));
  if (!task_count)
    throw fatal_header("bad task count in #Paraver header");
  auto num_tasks = static_cast<std::uint32_t>(*task_count);
  if (num_tasks == 0) throw fatal_header("header declares zero tasks");

  trace::Trace out("paraver-import", num_tasks);
  if (!config.application.empty()) {
    out = trace::Trace(config.application, num_tasks);
    out.set_label(config.application);
  }

  // Open running-state intervals per task, waiting for their counter event.
  struct Open {
    std::uint64_t begin = 0, end = 0;
    bool active = false;
  };
  std::vector<Open> open(num_tasks);
  int line_no = 1;

  auto flush_burst = [&](std::uint32_t task, const Open& interval,
                         const std::map<std::uint64_t, std::uint64_t>&
                             events) {
    trace::Burst burst;
    burst.task = task;
    burst.begin_time = to_seconds(interval.begin);
    burst.duration = to_seconds(interval.end - interval.begin);
    auto counter = [&](std::uint64_t type, trace::Counter c) {
      auto it = events.find(type);
      if (it != events.end())
        burst.counters.set(c, static_cast<double>(it->second));
    };
    counter(kEventInstructions, trace::Counter::Instructions);
    counter(kEventCycles, trace::Counter::Cycles);
    counter(kEventL1Misses, trace::Counter::L1DMisses);
    counter(kEventL2Misses, trace::Counter::L2Misses);
    counter(kEventTlbMisses, trace::Counter::TlbMisses);
    auto caller_it = events.find(kEventCaller);
    if (caller_it != events.end()) {
      const trace::SourceLocation* loc = config.caller(caller_it->second);
      if (loc == nullptr) {
        // Lenient repair: keep the burst, drop the unresolvable call site.
        diags.error(line_no, "dangling-caller",
                    "caller value " + std::to_string(caller_it->second) +
                        " missing from the .pcf dictionary");
      } else {
        burst.callstack = out.callstacks().intern(*loc);
      }
    }
    try {
      out.add_burst(burst);
    } catch (const PreconditionError& error) {
      diags.error(line_no, "bad-burst", error.what());
    }
  };

  while (std::getline(prv, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    auto fields2 = split(text, ':');
    if (fields2.empty()) continue;
    if (fields2[0] == "3" || fields2[0] == "c") continue;  // comms et al.
    diags.count_record();

    if (fields2[0] == "1") {
      if (fields2.size() != 8) {
        diags.error(line_no, "bad-state-record",
                    "state record needs 8 fields");
        continue;
      }
      auto task_value = try_parse_u64(fields2[3]);
      if (!task_value || *task_value == 0 || *task_value > num_tasks) {
        diags.error(line_no, "bad-state-record",
                    "task out of range: " + fields2[3]);
        continue;
      }
      auto task = static_cast<std::uint32_t>(*task_value - 1);
      auto state = try_parse_u64(fields2[7]);
      auto begin = try_parse_u64(fields2[5]);
      auto end = try_parse_u64(fields2[6]);
      if (!state || !begin || !end) {
        diags.error(line_no, "bad-state-record",
                    "bad number in state record");
        continue;
      }
      if (*state != static_cast<std::uint64_t>(kStateRunning))
        continue;  // only running intervals are bursts
      if (*end < *begin) {
        diags.error(line_no, "bad-state-record",
                    "state interval ends before it begins");
        continue;
      }
      open[task].begin = *begin;
      open[task].end = *end;
      open[task].active = true;
    } else if (fields2[0] == "2") {
      if (fields2.size() < 8 || (fields2.size() - 6) % 2 != 0) {
        diags.error(line_no, "bad-event-record",
                    "event record needs time + (type,value) pairs");
        continue;
      }
      auto task_value = try_parse_u64(fields2[3]);
      if (!task_value || *task_value == 0 || *task_value > num_tasks) {
        diags.error(line_no, "bad-event-record",
                    "task out of range: " + fields2[3]);
        continue;
      }
      auto task = static_cast<std::uint32_t>(*task_value - 1);
      auto time = try_parse_u64(fields2[5]);
      if (!time) {
        diags.error(line_no, "bad-event-record",
                    "bad event time: " + fields2[5]);
        continue;
      }
      std::map<std::uint64_t, std::uint64_t> events;
      bool fields_ok = true;
      for (std::size_t i = 6; i + 1 < fields2.size(); i += 2) {
        auto type = try_parse_u64(fields2[i]);
        auto value = try_parse_u64(fields2[i + 1]);
        if (!type || !value) {
          fields_ok = false;
          break;
        }
        events[*type] = *value;
      }
      if (!fields_ok) {
        diags.error(line_no, "bad-event-record",
                    "bad number in event (type,value) pairs");
        continue;
      }
      // Counter events at the end of an open running interval close the
      // burst (the Extrae convention).
      if (open[task].active && *time == open[task].end &&
          events.count(kEventInstructions)) {
        flush_burst(task, open[task], events);
        open[task].active = false;
      }
    } else {
      diags.error(line_no, "unknown-record",
                  "unknown record kind '" + fields2[0] + "'");
    }
  }
  if (prv.bad()) throw io_error("prv read failed", diags.file());
  diags.finish();
  out.validate();
  return out;
}

trace::Trace read_prv_streams(std::istream& prv, std::istream& pcf) {
  Diagnostics diags;
  return read_prv_streams(prv, pcf, diags);
}

}  // namespace detail

void save_prv(const std::string& base_path, const trace::Trace& trace) {
  PT_FAILPOINT("save_prv");
  errno = 0;
  std::ofstream prv(base_path + ".prv");
  if (!prv) throw io_error("cannot open for writing", base_path + ".prv");
  errno = 0;
  std::ofstream pcf(base_path + ".pcf");
  if (!pcf) throw io_error("cannot open for writing", base_path + ".pcf");
  detail::write_prv_streams(prv, pcf, trace);
}

trace::Trace load_prv(const std::string& base_path, Diagnostics& diags) {
  PT_FAILPOINT("load_prv");
  diags.set_file(base_path + ".prv");
  errno = 0;
  std::ifstream prv(base_path + ".prv");
  if (!prv) throw io_error("cannot open for reading", base_path + ".prv");
  errno = 0;
  std::ifstream pcf(base_path + ".pcf");
  if (!pcf) throw io_error("cannot open for reading", base_path + ".pcf");
  return detail::read_prv_streams(prv, pcf, diags);
}

trace::Trace load_prv(const std::string& base_path) {
  Diagnostics diags;
  return load_prv(base_path, diags);
}

}  // namespace perftrack::paraver
