#pragma once
// Paraver trace (.prv) interoperability.
//
// The paper's tool chain (Extrae -> Paraver/ClusteringSuite) exchanges
// traces in the Paraver text format. This module implements the subset
// needed for burst-level analysis, following the Extrae conventions:
//
//   #Paraver (<date>):<duration>_ns:<nodes>(<cpus>):<napps>:<ntasks>(...)
//   1:cpu:appl:task:thread:begin:end:state          state record
//   2:cpu:appl:task:thread:time:type:value[:t:v]*   event record
//   3:...                                           comm record (skipped)
//
// A CPU burst is a running-state (state 1) interval; at its end time an
// event record carries the hardware-counter deltas (PAPI event types) and
// the level-1 caller (type 30000000, value resolved through the .pcf
// dictionary — see paraver/pcf.hpp). Timestamps are nanoseconds.
//
// write_prv emits a (trace.prv, trace.pcf) pair from a burst trace;
// read_prv reconstructs a burst trace from such a pair. The round trip
// preserves bursts exactly up to 1 ns quantisation.

#include <string>

#include "common/diagnostics.hpp"
#include "paraver/pcf.hpp"
#include "trace/trace.hpp"

namespace perftrack::paraver {

/// State record value for "running" (computing) in the Paraver model.
inline constexpr int kStateRunning = 1;

/// Serialise `trace` as a Paraver .prv next to its .pcf dictionary.
/// `base_path` gets ".prv"/".pcf" appended.
void save_prv(const std::string& base_path, const trace::Trace& trace);

/// Load a (prv, pcf) pair back into a burst trace. `base_path` as above.
/// Malformed records go to `diags`: a strict collector throws ParseError at
/// the first one, a lenient collector skips/repairs under its error budget.
/// Throws IoError on unreadable files in either mode.
trace::Trace load_prv(const std::string& base_path, Diagnostics& diags);

/// Strict-mode convenience overload.
trace::Trace load_prv(const std::string& base_path);

namespace detail {
// Exposed for tests: stream-level implementations.
void write_prv_streams(std::ostream& prv, std::ostream& pcf,
                       const trace::Trace& trace);
trace::Trace read_prv_streams(std::istream& prv, std::istream& pcf,
                              Diagnostics& diags);
trace::Trace read_prv_streams(std::istream& prv, std::istream& pcf);
}  // namespace detail

}  // namespace perftrack::paraver
