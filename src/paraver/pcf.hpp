#pragma once
// Paraver configuration (.pcf) files — the event dictionary.
//
// A Paraver trace (.prv) stores events as (type, value) integer pairs; the
// companion .pcf file maps them to labels. For burst analysis we need two
// things from it: the hardware-counter event types (PAPI codes) and the
// caller table that maps call-site values to source locations. This module
// reads and writes the subset of the PCF grammar those need:
//
//   EVENT_TYPE
//   0    30000000    Caller at level 1
//   VALUES
//   1    solve_em (module_comm_dm.f90:4939)
//   ...
//
// Unknown sections and event types are preserved on read where possible
// and ignored otherwise; writing emits only what perftrack uses.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "common/diagnostics.hpp"
#include "trace/callstack.hpp"

namespace perftrack::paraver {

// Extrae/PAPI event type codes used by the burst convention.
inline constexpr std::uint64_t kEventInstructions = 42000050;  // PAPI_TOT_INS
inline constexpr std::uint64_t kEventCycles = 42000059;        // PAPI_TOT_CYC
inline constexpr std::uint64_t kEventL1Misses = 42000052;      // PAPI_L1_DCM
inline constexpr std::uint64_t kEventL2Misses = 42000054;      // PAPI_L2_DCM
inline constexpr std::uint64_t kEventTlbMisses = 42000072;     // PAPI_TLB_DM
inline constexpr std::uint64_t kEventCaller = 30000000;        // call site

/// The caller dictionary of a PCF: value <-> source location.
class PcfConfig {
public:
  /// Register a caller value; parses "function (file:line)" labels on load.
  void set_caller(std::uint64_t value, const trace::SourceLocation& loc);

  const trace::SourceLocation* caller(std::uint64_t value) const;

  /// Find or create a caller value for a location (values start at 1).
  std::uint64_t intern_caller(const trace::SourceLocation& loc);

  const std::map<std::uint64_t, trace::SourceLocation>& callers() const {
    return callers_;
  }

  /// Free-form application name stored as a comment.
  std::string application;

private:
  std::map<std::uint64_t, trace::SourceLocation> callers_;
  std::map<std::string, std::uint64_t> by_location_;
};

/// Serialise the PCF subset.
void write_pcf(std::ostream& out, const PcfConfig& config);
void save_pcf(const std::string& path, const PcfConfig& config);

/// Parse the PCF subset (caller table + application comment), reporting
/// malformed caller values to `diags` (strict collectors throw ParseError,
/// lenient ones skip the bad value).
PcfConfig read_pcf(std::istream& in, Diagnostics& diags);
PcfConfig read_pcf(std::istream& in);
PcfConfig load_pcf(const std::string& path, Diagnostics& diags);
PcfConfig load_pcf(const std::string& path);

}  // namespace perftrack::paraver
