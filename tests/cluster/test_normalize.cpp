#include "cluster/normalize.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::cluster {
namespace {

TEST(TransformTest, MinMaxToUnitInterval) {
  geom::PointSet points(2, {0.0, 10.0, 4.0, 20.0, 2.0, 15.0});
  Transform t = Transform::fit(points);
  geom::PointSet out = t.apply(points);
  EXPECT_DOUBLE_EQ(out[0][0], 0.0);
  EXPECT_DOUBLE_EQ(out[1][0], 1.0);
  EXPECT_DOUBLE_EQ(out[2][0], 0.5);
  EXPECT_DOUBLE_EQ(out[0][1], 0.0);
  EXPECT_DOUBLE_EQ(out[1][1], 1.0);
  EXPECT_DOUBLE_EQ(out[2][1], 0.5);
}

TEST(TransformTest, ConstantDimensionMapsToHalf) {
  geom::PointSet points(1, {7.0, 7.0, 7.0});
  Transform t = Transform::fit(points);
  geom::PointSet out = t.apply(points);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i][0], 0.5);
}

TEST(TransformTest, LogScaling) {
  geom::PointSet points(1, {10.0, 1000.0});
  Transform t = Transform::fit(points, {true});
  EXPECT_TRUE(t.log_scaled(0));
  geom::PointSet out = t.apply(points);
  EXPECT_DOUBLE_EQ(out[0][0], 0.0);
  EXPECT_DOUBLE_EQ(out[1][0], 1.0);
  // 100 is the geometric midpoint.
  auto mid = t.apply_one(std::vector<double>{100.0});
  EXPECT_NEAR(mid[0], 0.5, 1e-12);
}

TEST(TransformTest, LogScalingSurvivesZeros) {
  geom::PointSet points(1, {0.0, 100.0});
  Transform t = Transform::fit(points, {true});
  geom::PointSet out = t.apply(points);
  EXPECT_DOUBLE_EQ(out[0][0], 0.0);
  EXPECT_DOUBLE_EQ(out[1][0], 1.0);
  EXPECT_TRUE(std::isfinite(out[0][0]));
}

TEST(TransformTest, EmptyFitYieldsIdentityRange) {
  geom::PointSet points(2);
  Transform t = Transform::fit(points);
  auto out = t.apply_one(std::vector<double>{0.5, 0.25});
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
}

TEST(TransformTest, RejectsMismatches) {
  geom::PointSet points(2, {1.0, 2.0});
  EXPECT_THROW(Transform::fit(points, {true}), PreconditionError);
  Transform t = Transform::fit(points);
  geom::PointSet wrong(3);
  EXPECT_THROW(t.apply(wrong), PreconditionError);
  EXPECT_THROW(t.apply_one(std::vector<double>{1.0}), PreconditionError);
}

TEST(TransformTest, ApplyToOtherPointSetUsesFittedRange) {
  geom::PointSet fit_points(1, {0.0, 10.0});
  Transform t = Transform::fit(fit_points);
  auto out = t.apply_one(std::vector<double>{20.0});
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // extrapolates beyond [0,1]
}

}  // namespace
}  // namespace perftrack::cluster
