#include "cluster/frame.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::cluster {
namespace {

using testing::MiniPhase;
using testing::MiniTraceSpec;
using testing::make_mini_trace;

MiniTraceSpec three_phase_spec() {
  MiniTraceSpec spec;
  spec.tasks = 4;
  spec.iterations = 5;
  spec.phases = {
      MiniPhase{8e6, 1.0, {"heavy", "a.c", 10}},
      MiniPhase{1e6, 2.0, {"mid", "a.c", 20}},
      MiniPhase{2e5, 0.5, {"light", "b.c", 30}},
  };
  return spec;
}

ClusteringParams default_params() {
  ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 4;
  return params;
}

TEST(FrameTest, BuildsOneClusterPerPhase) {
  auto trace = make_mini_trace(three_phase_spec());
  Frame frame = build_frame(trace, default_params());
  EXPECT_EQ(frame.object_count(), 3u);
  EXPECT_EQ(frame.label(), "mini");
  EXPECT_EQ(frame.num_tasks(), 4u);
  // All bursts clustered.
  for (auto label : frame.labels()) EXPECT_NE(label, kNoise);
}

TEST(FrameTest, ClustersOrderedByTotalDuration) {
  auto trace = make_mini_trace(three_phase_spec());
  Frame frame = build_frame(trace, default_params());
  // Durations: heavy 8e6/1.0 = 8ms, light 2e5/0.5 = 0.4ms, mid 1e6/2 = 0.5ms
  // per burst -> order: heavy, mid, light.
  ASSERT_EQ(frame.object_count(), 3u);
  EXPECT_GT(frame.object(0).total_duration, frame.object(1).total_duration);
  EXPECT_GT(frame.object(1).total_duration, frame.object(2).total_duration);
  // Cluster 0 is the heavy phase.
  EXPECT_NEAR(frame.object(0).centroid[0], 8e6, 1e-3);
}

TEST(FrameTest, CallstackWeightsSumToOne) {
  auto trace = make_mini_trace(three_phase_spec());
  Frame frame = build_frame(trace, default_params());
  for (const auto& object : frame.objects()) {
    double sum = 0.0;
    for (const auto& [cs, weight] : object.callstack_weight) sum += weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(object.callstack_weight.size(), 1u);  // one phase per cluster
  }
}

TEST(FrameTest, TaskSequencesFollowPhaseOrder) {
  auto trace = make_mini_trace(three_phase_spec());
  Frame frame = build_frame(trace, default_params());
  ASSERT_EQ(frame.task_sequences().size(), 4u);
  // Build the expected per-iteration pattern from the actual labels of the
  // first three projection rows (phase execution order).
  std::vector<align::Symbol> iteration{frame.labels()[0], frame.labels()[1],
                                       frame.labels()[2]};
  for (const auto& seq : frame.task_sequences()) {
    ASSERT_EQ(seq.size(), 15u);  // 3 phases x 5 iterations, no collapses
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_EQ(seq[i], iteration[i % 3]);
  }
}

TEST(FrameTest, CollapseSequenceRuns) {
  MiniTraceSpec spec = three_phase_spec();
  // Duplicate the heavy phase back-to-back: with collapsing, the pair
  // appears once per iteration.
  spec.phases.insert(spec.phases.begin(),
                     MiniPhase{8e6, 1.0, {"heavy", "a.c", 10}});
  auto trace = make_mini_trace(spec);
  ClusteringParams params = default_params();
  params.collapse_sequence_runs = true;
  Frame frame = build_frame(trace, params);
  for (const auto& seq : frame.task_sequences())
    EXPECT_EQ(seq.size(), 15u);  // not 20: the run of two collapses to one

  params.collapse_sequence_runs = false;
  Frame raw = build_frame(trace, params);
  for (const auto& seq : raw.task_sequences()) EXPECT_EQ(seq.size(), 20u);
}

TEST(FrameTest, MinClusterTimeFractionDropsTinyClusters) {
  auto trace = make_mini_trace(three_phase_spec());
  ClusteringParams params = default_params();
  // Cluster time shares: heavy ~90%, mid ~5.6%, light ~4.5%. A 5% floor
  // drops exactly the light cluster.
  params.min_cluster_time_fraction = 0.05;
  Frame frame = build_frame(trace, params);
  EXPECT_EQ(frame.object_count(), 2u);
  // The dropped phase's rows read noise.
  std::size_t noise = 0;
  for (auto label : frame.labels())
    if (label == kNoise) ++noise;
  EXPECT_EQ(noise, 20u);
}

TEST(FrameTest, ObjectRowsMatchLabels) {
  auto trace = make_mini_trace(three_phase_spec());
  Frame frame = build_frame(trace, default_params());
  for (const auto& object : frame.objects())
    for (std::uint32_t row : object.rows)
      EXPECT_EQ(frame.labels()[row], object.id);
}

TEST(FrameTest, ObjectOutOfRangeThrows) {
  auto trace = make_mini_trace(three_phase_spec());
  Frame frame = build_frame(trace, default_params());
  EXPECT_THROW(frame.object(99), PreconditionError);
  EXPECT_THROW(frame.object(-1), PreconditionError);
}

TEST(FrameTest, NullTraceThrows) {
  EXPECT_THROW(build_frame(nullptr, default_params()), PreconditionError);
}

TEST(AssembleFrameTest, LabelSizeMismatchThrows) {
  auto trace = make_mini_trace(three_phase_spec());
  ClusteringParams params = default_params();
  Projection proj = project(*trace, params.projection);
  std::vector<std::int32_t> labels(proj.size() - 1, 0);
  EXPECT_THROW(
      assemble_frame(trace, std::move(proj), std::move(labels), params),
      PreconditionError);
}

TEST(AssembleFrameTest, InjectedLabelsAreRenumberedByDuration) {
  auto trace = make_mini_trace(three_phase_spec());
  ClusteringParams params = default_params();
  Projection proj = project(*trace, params.projection);
  // Label phases as 5 (heavy), 9 (mid), 1 (light) per burst position.
  std::vector<std::int32_t> labels(proj.size());
  const std::int32_t raw_ids[3] = {5, 9, 1};
  for (std::size_t row = 0; row < labels.size(); ++row)
    labels[row] = raw_ids[row % 3];
  Frame frame =
      assemble_frame(trace, std::move(proj), std::move(labels), params);
  ASSERT_EQ(frame.object_count(), 3u);
  // heavy (raw 5) has the largest duration -> id 0.
  EXPECT_EQ(frame.labels()[0], 0);
}

}  // namespace
}  // namespace perftrack::cluster
