#include "cluster/scatter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::cluster {
namespace {

Frame sample_frame() {
  testing::MiniTraceSpec spec;
  spec.tasks = 3;
  spec.iterations = 4;
  spec.phases = {
      {8e6, 1.0, {"heavy", "a.c", 10}},
      {1e6, 2.0, {"mid", "a.c", 20}},
  };
  ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return build_frame(testing::make_mini_trace(spec), params);
}

TEST(ScatterTest, AsciiContainsLabelAndSymbols) {
  Frame frame = sample_frame();
  ScatterOptions options;
  options.width = 40;
  options.height = 10;
  std::string art = ascii_scatter(frame, options);
  EXPECT_NE(art.find("mini"), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
  // Axis footer present.
  EXPECT_NE(art.find("x: ["), std::string::npos);
}

TEST(ScatterTest, RelabelChangesSymbols) {
  Frame frame = sample_frame();
  ScatterOptions options;
  options.width = 40;
  options.height = 10;
  std::vector<std::int32_t> relabel{7, 8};  // display ids 8 and 9
  std::string art = ascii_scatter(frame, options, &relabel);
  // Only inspect the grid area (the axis footer contains digits too).
  std::string grid = art.substr(0, art.find("+-"));
  EXPECT_EQ(grid.find('1'), std::string::npos);
  EXPECT_NE(grid.find('8'), std::string::npos);
  EXPECT_NE(grid.find('9'), std::string::npos);
}

TEST(ScatterTest, LogYAxis) {
  Frame frame = sample_frame();
  ScatterOptions options;
  options.width = 40;
  options.height = 10;
  options.x_axis = 1;
  options.y_axis = 0;
  options.log_y = true;
  std::string art = ascii_scatter(frame, options);
  EXPECT_NE(art.find("(log)"), std::string::npos);
}

TEST(ScatterTest, TooSmallGridThrows) {
  Frame frame = sample_frame();
  ScatterOptions options;
  options.width = 1;
  EXPECT_THROW(ascii_scatter(frame, options), PreconditionError);
}

TEST(ScatterTest, BadAxisThrows) {
  Frame frame = sample_frame();
  ScatterOptions options;
  options.y_axis = 5;
  EXPECT_THROW(ascii_scatter(frame, options), PreconditionError);
}

TEST(ScatterTest, CsvHasOneRowPerClusteredBurst) {
  Frame frame = sample_frame();
  std::string csv = scatter_csv(frame);
  std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1u + frame.projection().size());  // header + rows
  EXPECT_NE(csv.find("Instructions"), std::string::npos);
  EXPECT_NE(csv.find("IPC"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::cluster
