#include "cluster/autotune.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cluster/dbscan.hpp"

namespace perftrack::cluster {
namespace {

geom::PointSet blobs_with_noise(std::size_t blob_count,
                                std::size_t per_blob, double sigma,
                                std::size_t noise, std::uint64_t seed) {
  Rng rng(seed);
  geom::PointSet points(2);
  for (std::size_t c = 0; c < blob_count; ++c) {
    double cx = 0.15 + 0.7 * static_cast<double>(c) /
                            std::max<std::size_t>(1, blob_count - 1);
    double cy = c % 2 == 0 ? 0.25 : 0.75;
    for (std::size_t i = 0; i < per_blob; ++i)
      points.add(std::vector<double>{cx + rng.normal(0.0, sigma),
                                     cy + rng.normal(0.0, sigma)});
  }
  for (std::size_t i = 0; i < noise; ++i)
    points.add(std::vector<double>{rng.uniform(0.0, 1.0),
                                   rng.uniform(0.0, 1.0)});
  return points;
}

TEST(AutotuneTest, Validation) {
  geom::PointSet points(2, {0.0, 0.0, 1.0, 1.0});
  EXPECT_THROW(suggest_dbscan_params(points, 0), PreconditionError);
  EXPECT_THROW(suggest_dbscan_params(points, 2), PreconditionError);
}

TEST(AutotuneTest, CurveIsSortedDescending) {
  geom::PointSet points = blobs_with_noise(3, 60, 0.01, 10, 5);
  AutotuneResult result = suggest_dbscan_params(points, 5);
  for (std::size_t i = 1; i < result.k_distances.size(); ++i)
    EXPECT_LE(result.k_distances[i], result.k_distances[i - 1]);
  EXPECT_EQ(result.k_distances.size(), points.size());
  EXPECT_DOUBLE_EQ(result.eps, result.k_distances[result.knee_index]);
}

class AutotuneRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutotuneRecovery, SuggestedEpsRecoversTheBlobs) {
  const std::size_t blobs = 4;
  geom::PointSet points = blobs_with_noise(blobs, 80, 0.012, 12,
                                           GetParam());
  AutotuneResult tuned = suggest_dbscan_params(points, 5);
  // eps must sit between the intra-cluster scale and the blob separation.
  EXPECT_GT(tuned.eps, 0.005);
  EXPECT_LT(tuned.eps, 0.2);
  DbscanResult clusters =
      dbscan(points, {.eps = tuned.eps, .min_pts = tuned.min_pts});
  EXPECT_EQ(clusters.cluster_count, static_cast<std::int32_t>(blobs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutotuneRecovery,
                         ::testing::Values(3, 11, 29, 47));

TEST(AutotuneTest, DegenerateDuplicatesFallBack) {
  geom::PointSet points(2);
  for (int i = 0; i < 50; ++i) points.add(std::vector<double>{0.5, 0.5});
  AutotuneResult result = suggest_dbscan_params(points, 5);
  EXPECT_GT(result.eps, 0.0);
  DbscanResult clusters =
      dbscan(points, {.eps = result.eps, .min_pts = result.min_pts});
  EXPECT_EQ(clusters.cluster_count, 1);
}

}  // namespace
}  // namespace perftrack::cluster
